"""Page compaction and free-page accounting, on both store flavors."""

from __future__ import annotations

import random

from repro.db.pagestore import PageStore
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.disk import SimDisk
from repro.storage.device import SimBlockDevice
from repro.storage.heapfile import HeapFileStore


def _payload(seed: int, size: int) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(size))


class TestSimBlockDeviceFreeList:
    def test_free_and_reallocate(self):
        device = SimBlockDevice(page_size=512)
        first = device.allocate()
        second = device.allocate()
        assert device.page_count == 2
        device.free(first)
        assert device.page_count == 1
        assert device.high_water_page == 2
        # The freed slot is recycled before the high-water mark grows.
        assert device.allocate() == first
        assert device.high_water_page == 2
        _ = second

    def test_double_free_rejected(self):
        device = SimBlockDevice(page_size=512)
        page = device.allocate()
        device.free(page)
        try:
            device.free(page)
        except ValueError:
            pass
        else:  # pragma: no cover - the assertion documents the contract
            raise AssertionError("double free must raise")

    def test_written_page_ids_tracks_live_images(self):
        device = SimBlockDevice(page_size=512)
        a = device.allocate()
        b = device.allocate()
        device.write_page(a, bytes(512))
        device.write_page(b, bytes(512))
        device.free(a)
        assert device.written_page_ids() == [b]


class TestPageStoreCompaction:
    def test_compact_frees_pages_and_keeps_payloads(self):
        store = PageStore(page_size=1024)
        payloads = {f"r{i}": _payload(i, 400) for i in range(12)}
        for record_id, payload in payloads.items():
            store.place(record_id, payload)
        pages_before = store.page_count
        for i in range(0, 12, 2):
            store.remove(f"r{i}")
        freed, moved = store.compact()
        assert freed > 0
        assert store.page_count == pages_before - freed
        assert store.pages_freed_total == freed
        assert moved > 0
        for i in range(1, 12, 2):
            assert store._payloads[f"r{i}"] == payloads[f"r{i}"]

    def test_compact_is_noop_when_dense(self):
        store = PageStore(page_size=1024)
        for i in range(4):
            store.place(f"r{i}", _payload(i, 900))
        freed, moved = store.compact()
        assert freed == 0
        assert moved == 0

    def test_written_and_reclaimed_counters(self):
        store = PageStore(page_size=1024)
        store.place("a", b"x" * 100)
        store.place("b", b"y" * 50)
        assert store.bytes_written_total == 150
        store.update("a", b"z" * 70)
        assert store.bytes_written_total == 220
        assert store.bytes_reclaimed_total == 100
        store.remove("b")
        assert store.bytes_reclaimed_total == 150
        assert (
            store.bytes_written_total - store.bytes_reclaimed_total
            == store.logical_bytes
        )


class TestHeapFileStoreCompaction:
    def _store(self) -> HeapFileStore:
        clock = SimClock()
        disk = SimDisk(clock, CostModel())
        return HeapFileStore(page_size=1024, disk=disk)

    def test_compact_frees_device_pages(self):
        store = self._store()
        payloads = {f"r{i}": _payload(i, 300) for i in range(16)}
        for record_id, payload in payloads.items():
            store.place(record_id, payload)
        for i in range(0, 16, 2):
            store.remove(f"r{i}")
        physical_before = store.physical_bytes()
        pages_before = store.heap.device.page_count
        freed, moved = store.compact()
        assert freed > 0
        assert moved > 0
        assert store.pages_freed_total == freed
        assert store.heap.device.page_count < pages_before
        assert store.physical_bytes() < physical_before
        for i in range(1, 16, 2):
            assert store.heap.get(f"r{i}") == payloads[f"r{i}"]

    def test_compact_then_insert_reuses_freed_pages(self):
        store = self._store()
        for i in range(16):
            store.place(f"r{i}", _payload(i, 300))
        for i in range(16):
            if i != 3:
                store.remove(f"r{i}")
        store.compact()
        high_water = store.heap.device.high_water_page
        for i in range(4):
            store.place(f"new{i}", _payload(100 + i, 300))
        # New inserts land on recycled pages, not past the high-water mark.
        assert store.heap.device.high_water_page == high_water
        for i in range(4):
            assert store.heap.get(f"new{i}") == _payload(100 + i, 300)

    def test_written_and_reclaimed_counters(self):
        store = self._store()
        store.place("a", b"x" * 100)
        store.update("a", b"y" * 60)
        store.remove("a")
        assert store.bytes_written_total == 160
        assert store.bytes_reclaimed_total == 160
        assert store.logical_bytes == 0
