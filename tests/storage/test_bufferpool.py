"""Buffer pool: caching, eviction, dirty write-back."""

import pytest

from repro.storage.bufferpool import BufferPool
from repro.storage.device import SimBlockDevice


@pytest.fixture()
def device() -> SimBlockDevice:
    return SimBlockDevice(page_size=512)


@pytest.fixture()
def pool(device) -> BufferPool:
    return BufferPool(device, capacity_frames=3)


class TestDevice:
    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            SimBlockDevice(page_size=8)

    def test_read_unwritten_page(self, device):
        device.allocate()
        with pytest.raises(KeyError):
            device.read_page(0)

    def test_write_requires_allocation(self, device):
        with pytest.raises(ValueError):
            device.write_page(5, bytes(512))

    def test_write_size_checked(self, device):
        page_id = device.allocate()
        with pytest.raises(ValueError):
            device.write_page(page_id, b"short")

    def test_roundtrip_charges_disk(self, device):
        page_id = device.allocate()
        device.write_page(page_id, bytes(512))
        image, latency = device.read_page(page_id)
        assert image == bytes(512)
        assert latency > 0
        assert device.disk.reads == 1
        assert device.disk.writes == 1


class TestPool:
    def test_invalid_capacity(self, device):
        with pytest.raises(ValueError):
            BufferPool(device, capacity_frames=0)

    def test_create_is_resident_and_dirty(self, pool):
        page_id, page = pool.create()
        page.insert(b"data")
        pool.mark_dirty(page_id)
        assert len(pool) == 1
        assert pool.flush_all() == 1

    def test_get_hits_cache(self, pool):
        page_id, page = pool.create()
        page.insert(b"cell")
        pool.flush_all()
        assert pool.get(page_id) is page
        assert pool.hits == 1
        assert pool.misses == 0

    def test_eviction_writes_dirty_page_back(self, pool):
        first_id, first = pool.create()
        first.insert(b"persisted")
        pool.mark_dirty(first_id)
        # Fill past capacity: first gets evicted and written back.
        for _ in range(3):
            pool.create()
        assert pool.evictions == 1
        assert first_id not in [pid for pid in pool._frames]
        # Re-fetch from the device: contents survived.
        reloaded = pool.get(first_id)
        assert reloaded.get(0) == b"persisted"
        assert pool.misses == 1

    def test_mark_dirty_requires_residency(self, pool):
        page_id, _ = pool.create()
        for _ in range(3):
            pool.create()  # evicts page_id
        with pytest.raises(KeyError):
            pool.mark_dirty(page_id)

    def test_hit_ratio(self, pool):
        page_id, _ = pool.create()
        pool.get(page_id)
        pool.get(page_id)
        assert pool.hit_ratio == 1.0

    def test_lru_order(self, pool):
        a, _ = pool.create()
        b, _ = pool.create()
        c, _ = pool.create()
        pool.get(a)  # refresh a; b is now LRU
        pool.create()  # evicts b
        resident = list(pool._frames)
        assert b not in resident
        assert a in resident
