"""Heap file + the Database integration of the physical engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.block import ZlibCompressor
from repro.storage.heapfile import HeapFile, HeapFileStore


@pytest.fixture()
def heap() -> HeapFile:
    return HeapFile(page_size=1024, buffer_frames=4)


class TestHeapFile:
    def test_put_get(self, heap):
        heap.put("r1", b"record one")
        assert heap.get("r1") == b"record one"
        assert "r1" in heap
        assert len(heap) == 1

    def test_get_missing(self, heap):
        with pytest.raises(KeyError):
            heap.get("ghost")

    def test_put_replaces(self, heap):
        heap.put("r", b"old")
        heap.put("r", b"new value")
        assert heap.get("r") == b"new value"
        assert len(heap) == 1

    def test_delete(self, heap):
        heap.put("r", b"bye")
        heap.delete("r")
        assert "r" not in heap
        with pytest.raises(KeyError):
            heap.get("r")

    def test_many_records_span_pages(self, heap):
        for index in range(50):
            heap.put(f"r{index}", f"record number {index} ".encode() * 5)
        assert heap.page_count > 1
        for index in range(50):
            assert heap.get(f"r{index}") == f"record number {index} ".encode() * 5

    def test_space_reuse_after_delete(self, heap):
        for index in range(20):
            heap.put(f"r{index}", b"x" * 200)
        pages_before = heap.page_count
        for index in range(20):
            heap.delete(f"r{index}")
        for index in range(20):
            heap.put(f"n{index}", b"y" * 200)
        # Freed cells were reused; page count does not double.
        assert heap.page_count <= pages_before + 1

    def test_overflow_record(self, heap):
        big = bytes(range(256)) * 20  # 5120 B > 1024-byte pages
        heap.put("big", big)
        assert heap.get("big") == big

    def test_overflow_delete_and_replace(self, heap):
        heap.put("big", b"A" * 5000)
        heap.put("big", b"B" * 3000)
        assert heap.get("big") == b"B" * 3000
        heap.delete("big")
        assert "big" not in heap

    def test_growing_update_relocates(self, heap):
        heap.put("grow", b"s")
        heap.put("filler", b"f" * 900)
        heap.put("grow", b"L" * 800)  # no longer fits beside filler
        assert heap.get("grow") == b"L" * 800
        assert heap.get("filler") == b"f" * 900

    def test_survives_buffer_pressure(self, heap):
        # More pages than buffer frames: contents must round-trip through
        # the device.
        for index in range(60):
            heap.put(f"r{index}", f"payload {index} ".encode() * 10)
        heap.flush()
        for index in range(60):
            assert heap.get(f"r{index}") == f"payload {index} ".encode() * 10
        assert heap.pool.evictions > 0


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from("pd"), st.integers(0, 11),
                  st.integers(0, 1500)),
        max_size=50,
    )
)
def test_property_heapfile_matches_dict(ops):
    heap = HeapFile(page_size=512, buffer_frames=3)
    model: dict[str, bytes] = {}
    for kind, handle, size in ops:
        record_id = f"r{handle}"
        if kind == "p":
            data = bytes([32 + handle]) * size
            heap.put(record_id, data)
            model[record_id] = data
        elif record_id in model:
            heap.delete(record_id)
            del model[record_id]
        assert len(heap) == len(model)
        for known, expected in model.items():
            assert heap.get(known) == expected


class TestHeapFileStore:
    def test_pagestore_interface(self):
        store = HeapFileStore(page_size=1024)
        store.place("a", b"x" * 100)
        store.update("a", b"y" * 50)
        assert store.logical_bytes == 50
        store.remove("a")
        assert store.logical_bytes == 0
        store.remove("a")  # idempotent

    def test_physical_bytes_compresses_pages(self):
        store = HeapFileStore(page_size=1024, compressor=ZlibCompressor())
        for index in range(10):
            store.place(f"r{index}", b"compressible text " * 20)
        assert 0 < store.physical_bytes() < 10 * 1024

    def test_database_runs_on_physical_engine(self, revision_chain):
        from repro.db.database import Database
        from repro.sim.clock import SimClock
        from repro.sim.disk import SimDisk

        clock = SimClock()
        disk = SimDisk(clock)
        store = HeapFileStore(page_size=8192, disk=disk)
        db = Database(clock=clock, disk=disk, page_store=store)
        for index, revision in enumerate(revision_chain):
            db.insert("wiki", f"v{index}", revision)
        for index, revision in enumerate(revision_chain):
            content, _ = db.read("wiki", f"v{index}")
            assert content == revision
        db.delete("v0")
        assert db.read("wiki", "v0")[0] is None

    def test_cluster_runs_on_physical_engine(self):
        from repro.core.config import DedupConfig
        from repro.db.node import PrimaryNode
        from repro.sim.clock import SimClock

        clock = SimClock()
        node = PrimaryNode(
            clock=clock,
            config=DedupConfig(chunk_size=64, size_filter_enabled=False),
        )
        # Swap in the physical engine under the same disk.
        node.db.pages = HeapFileStore(page_size=8192, disk=node.db.disk)
        from repro.workloads.wikipedia import WikipediaWorkload

        workload = WikipediaWorkload(seed=91, target_bytes=100_000)
        ops = list(workload.insert_trace())
        for op in ops:
            node.insert(op.database, op.record_id, op.content)
        clock.advance(60)
        node.on_idle()
        for op in ops:
            content, _ = node.read(op.database, op.record_id)
            assert content == op.content
