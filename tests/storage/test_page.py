"""Slotted page layout: inserts, deletes, updates, compaction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.page import PageFullError, SlottedPage


@pytest.fixture()
def page() -> SlottedPage:
    return SlottedPage(page_size=1024)


class TestBasics:
    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            SlottedPage(page_size=32)
        with pytest.raises(ValueError):
            SlottedPage(page_size=1 << 20)

    def test_insert_and_get(self, page):
        slot = page.insert(b"hello")
        assert page.get(slot) == b"hello"
        assert page.live_cells == 1

    def test_multiple_cells(self, page):
        slots = [page.insert(f"cell-{i}".encode()) for i in range(10)]
        for index, slot in enumerate(slots):
            assert page.get(slot) == f"cell-{index}".encode()

    def test_get_bad_slot(self, page):
        with pytest.raises(KeyError):
            page.get(0)
        page.insert(b"x")
        with pytest.raises(KeyError):
            page.get(5)

    def test_empty_cell(self, page):
        slot = page.insert(b"")
        assert page.get(slot) == b""


class TestCapacity:
    def test_page_full(self, page):
        with pytest.raises(PageFullError):
            page.insert(b"z" * 2000)

    def test_fills_to_capacity(self, page):
        inserted = 0
        try:
            while True:
                page.insert(b"y" * 50)
                inserted += 1
        except PageFullError:
            pass
        assert inserted >= (1024 - 6) // 54 - 1

    def test_free_bytes_decrease(self, page):
        before = page.free_bytes
        page.insert(b"x" * 100)
        assert page.free_bytes == before - 104


class TestDelete:
    def test_delete_reclaims_space(self, page):
        slot = page.insert(b"d" * 200)
        free_after_insert = page.free_bytes
        page.delete(slot)
        assert page.free_bytes == free_after_insert + 200
        with pytest.raises(KeyError):
            page.get(slot)

    def test_delete_twice_rejected(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(KeyError):
            page.delete(slot)

    def test_slot_reused_after_delete(self, page):
        slot = page.insert(b"first")
        page.delete(slot)
        assert page.insert(b"second") == slot

    def test_insert_after_fragmentation_compacts(self, page):
        slots = [page.insert(b"f" * 120) for _ in range(8)]
        for slot in slots[::2]:
            page.delete(slot)
        # Contiguous space is small but total free space suffices.
        big = b"G" * 300
        slot = page.insert(big)
        assert page.get(slot) == big
        # Survivors intact after compaction.
        for survivor in slots[1::2]:
            assert page.get(survivor) == b"f" * 120


class TestUpdate:
    def test_shrinking_update_in_place(self, page):
        slot = page.insert(b"long original content")
        assert page.update(slot, b"short")
        assert page.get(slot) == b"short"

    def test_growing_update_within_page(self, page):
        slot = page.insert(b"small")
        assert page.update(slot, b"much larger replacement " * 4)
        assert page.get(slot) == b"much larger replacement " * 4

    def test_update_too_large_returns_false(self, page):
        slot = page.insert(b"x")
        assert not page.update(slot, b"q" * 2000)
        assert page.get(slot) == b"x"  # untouched

    def test_update_dead_slot(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(KeyError):
            page.update(slot, b"y")


class TestSerialization:
    def test_image_roundtrip(self, page):
        slots = {page.insert(f"data-{i}".encode()): f"data-{i}".encode()
                 for i in range(5)}
        restored = SlottedPage(1024, image=page.image())
        for slot, expected in slots.items():
            assert restored.get(slot) == expected

    def test_image_size_mismatch(self):
        with pytest.raises(ValueError):
            SlottedPage(1024, image=b"short")


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from("iud"), st.integers(0, 9),
                  st.integers(0, 180)),
        max_size=60,
    )
)
def test_property_page_matches_dict_model(ops):
    """Random insert/update/delete against a dict reference model."""
    rng = random.Random(0)
    page = SlottedPage(page_size=2048)
    model: dict[int, bytes] = {}  # handle -> data
    slots: dict[int, int] = {}  # handle -> slot

    for kind, handle, size in ops:
        data = bytes([65 + handle]) * size
        if kind == "i" and handle not in model:
            try:
                slots[handle] = page.insert(data)
                model[handle] = data
            except PageFullError:
                pass
        elif kind == "u" and handle in model:
            if page.update(slots[handle], data):
                model[handle] = data
        elif kind == "d" and handle in model:
            page.delete(slots[handle])
            del model[handle]
            del slots[handle]
        for known, expected in model.items():
            assert page.get(slots[known]) == expected
        assert page.live_cells == len(model)
