"""Trad-dedup baseline: exact dedup behaviour and its failure modes."""

from repro.baselines.trad_dedup import TradDedupEngine
from repro.workloads.wikipedia import WikipediaWorkload


class TestBasics:
    def test_identical_records_dedup_fully(self, document):
        engine = TradDedupEngine(chunk_size=64)
        first = engine.ingest(document)
        second = engine.ingest(document)
        assert first == len(document) or first > 0
        # Second copy stores only chunk references.
        assert second < len(document) * 0.4

    def test_unique_data_stores_fully(self, text_gen):
        engine = TradDedupEngine(chunk_size=64)
        content = text_gen.document(5000).encode()
        stored = engine.ingest(content)
        assert stored >= len(content)  # no duplicates to exploit

    def test_stats_accumulate(self, document):
        engine = TradDedupEngine(chunk_size=64)
        engine.ingest_all([document, document])
        assert engine.stats.records == 2
        assert engine.stats.bytes_in == 2 * len(document)
        assert engine.stats.compression_ratio > 1.5
        assert engine.stats.duplicate_chunk_ratio > 0.4


class TestPaperFailureModes:
    def test_large_chunks_miss_dispersed_edits(self, revision_pair):
        # §2.2: 4KB chunks cannot see small dispersed duplicate regions.
        source, target = revision_pair
        coarse = TradDedupEngine(chunk_size=4096)
        coarse.ingest(source)
        stored_coarse = coarse.ingest(target)
        fine = TradDedupEngine(chunk_size=64)
        fine.ingest(source)
        stored_fine = fine.ingest(target)
        assert stored_fine < stored_coarse

    def test_small_chunks_blow_up_index(self):
        workload = WikipediaWorkload(seed=9, target_bytes=200_000)
        contents = [op.content for op in workload.insert_trace()]
        coarse = TradDedupEngine(chunk_size=4096)
        fine = TradDedupEngine(chunk_size=64)
        coarse.ingest_all(contents)
        fine.ingest_all(contents)
        # The trade-off of Fig. 1: finer chunks compress better but the
        # index grows by an order of magnitude.
        assert fine.stats.compression_ratio > coarse.stats.compression_ratio
        assert fine.index_memory_bytes > coarse.index_memory_bytes * 5
