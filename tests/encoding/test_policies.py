"""Encoding policies: write-back plans vs Fig. 6 and Table 2."""

import pytest

from repro.encoding.chain import ReencodeAction
from repro.encoding.policies import (
    BackwardEncodingPolicy,
    HopEncodingPolicy,
    VersionJumpingPolicy,
    make_policy,
)


def simulate(policy, length):
    """Drive a chain to `length` records; return final base pointers and
    the total number of (re)encodings planned."""
    records = [f"R{i}" for i in range(length)]
    bases: dict[str, str | None] = {records[0]: None}
    writebacks = 0
    for position in range(1, length):
        bases[records[position]] = None  # new tail is raw
        for action in policy.plan_extend(records[: position + 1], position):
            bases[action.target_id] = action.base_id
            writebacks += 1
    return bases, writebacks


class TestBackward:
    def test_every_previous_tail_reencoded(self):
        bases, writebacks = simulate(BackwardEncodingPolicy(), 10)
        assert bases["R9"] is None  # tail raw
        for i in range(9):
            assert bases[f"R{i}"] == f"R{i + 1}"
        assert writebacks == 9

    def test_first_record_no_actions(self):
        assert BackwardEncodingPolicy().plan_extend(["R0"], 0) == []


class TestVersionJumping:
    def test_reference_versions_stay_raw(self):
        policy = VersionJumpingPolicy(hop_distance=4)
        bases, _ = simulate(policy, 17)
        # References: last record of each 4-cluster → positions 3, 7, 11, 15.
        for reference in (3, 7, 11, 15):
            assert bases[f"R{reference}"] is None
        # Non-references point at their successor.
        assert bases["R0"] == "R1"
        assert bases["R4"] == "R5"

    def test_raw_record_count(self):
        policy = VersionJumpingPolicy(hop_distance=4)
        # 65 records: 16 references (positions 3,7,...,63) plus the tail.
        bases, _ = simulate(policy, 65)
        raw = sum(1 for base in bases.values() if base is None)
        assert raw == 65 // 4 + 1

    def test_writeback_count_matches_table2(self):
        h = 4
        n = 64
        _, writebacks = simulate(VersionJumpingPolicy(h), n)
        # Table 2: N - N/H (within one boundary record).
        assert abs(writebacks - (n - n // h)) <= 1

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            VersionJumpingPolicy(1)


class TestHopEncoding:
    def test_reproduces_figure_6(self):
        policy = HopEncodingPolicy(hop_distance=4)
        bases, _ = simulate(policy, 17)
        expected = {
            "R0": "R16",
            "R1": "R2", "R2": "R3", "R3": "R4",
            "R4": "R8",
            "R5": "R6", "R6": "R7", "R7": "R8",
            "R8": "R12",
            "R9": "R10", "R10": "R11", "R11": "R12",
            "R12": "R16",
            "R13": "R14", "R14": "R15", "R15": "R16",
            "R16": None,
        }
        assert bases == expected

    def test_single_raw_record(self):
        # Table 2: storage Sb + (N-1)·Sd — exactly one raw record.
        bases, _ = simulate(HopEncodingPolicy(4), 100)
        raw = [record for record, base in bases.items() if base is None]
        assert raw == ["R99"]

    def test_writeback_count_matches_table2_shape(self):
        h = 4
        n = 256
        _, writebacks = simulate(HopEncodingPolicy(h), n)
        # ~N + N/(H-1): more than plain backward, shrinking as H grows.
        assert n - 1 < writebacks < n * 1.5
        _, writebacks_larger_h = simulate(HopEncodingPolicy(16), n)
        assert writebacks_larger_h < writebacks

    def test_decode_cost_bounded(self):
        from repro.encoding.analysis import measured_decode_costs

        h = 4
        n = 257
        bases, _ = simulate(HopEncodingPolicy(h), n)
        costs = measured_decode_costs(bases)
        worst = max(costs.values())
        backward_worst = n - 1
        # Far below plain backward; within a small factor of H + log_H N.
        assert worst < backward_worst / 4
        assert worst <= (h - 1) * 6

    def test_no_duplicate_targets_per_plan(self):
        policy = HopEncodingPolicy(2)
        records = [f"R{i}" for i in range(9)]
        actions = policy.plan_extend(records, 8)
        targets = [action.target_id for action in actions]
        assert len(targets) == len(set(targets))

    def test_hop_levels(self):
        policy = HopEncodingPolicy(4)
        assert policy.hop_levels(3) == 0
        assert policy.hop_levels(5) == 1
        assert policy.hop_levels(17) == 2
        assert policy.hop_levels(65) == 3


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("backward", BackwardEncodingPolicy),
            ("hop", HopEncodingPolicy),
            ("version-jumping", VersionJumpingPolicy),
            ("vjump", VersionJumpingPolicy),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("mystery")
