"""Table 2 cost model and exact decode-cost measurement."""

import pytest

from repro.encoding.analysis import (
    backward_costs,
    hop_costs,
    measured_decode_costs,
    version_jumping_costs,
)


class TestFormulas:
    def test_backward(self):
        costs = backward_costs(100, 1000.0, 50.0)
        assert costs.storage_bytes == 1000 + 99 * 50
        assert costs.worst_case_retrievals == 100
        assert costs.writebacks == 100

    def test_version_jumping(self):
        costs = version_jumping_costs(100, 10, 1000.0, 50.0)
        assert costs.storage_bytes == 10 * 1000 + 90 * 50
        assert costs.worst_case_retrievals == 10
        assert costs.writebacks == 90

    def test_hop_storage_equals_backward(self):
        hop = hop_costs(200, 16, 6000.0, 300.0)
        backward = backward_costs(200, 6000.0, 300.0)
        assert hop.storage_bytes == backward.storage_bytes

    def test_hop_retrievals_close_to_version_jumping(self):
        hop = hop_costs(200, 16, 6000.0, 300.0)
        vjump = version_jumping_costs(200, 16, 6000.0, 300.0)
        assert vjump.worst_case_retrievals < hop.worst_case_retrievals
        assert hop.worst_case_retrievals < vjump.worst_case_retrievals + 5

    def test_hop_writebacks_shrink_with_distance(self):
        small = hop_costs(200, 4, 6000.0, 300.0)
        large = hop_costs(200, 32, 6000.0, 300.0)
        assert large.writebacks < small.writebacks

    def test_version_jumping_storage_penalty(self):
        # The paper's point: VJ pays Sb per cluster; hop does not.
        hop = hop_costs(200, 8, 6000.0, 300.0)
        vjump = version_jumping_costs(200, 8, 6000.0, 300.0)
        assert vjump.storage_bytes > hop.storage_bytes * 2

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_chain_length(self, bad):
        with pytest.raises(ValueError):
            backward_costs(bad, 10.0, 1.0)

    def test_invalid_hop_distance(self):
        with pytest.raises(ValueError):
            hop_costs(10, 1, 10.0, 1.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            backward_costs(10, 0.0, 1.0)


class TestMeasuredDecodeCosts:
    def test_linear_chain(self):
        bases = {"a": "b", "b": "c", "c": None}
        costs = measured_decode_costs(bases)
        assert costs == {"a": 2, "b": 1, "c": 0}

    def test_tree_shape(self):
        bases = {"x": "root", "y": "root", "root": None}
        costs = measured_decode_costs(bases)
        assert costs["x"] == costs["y"] == 1

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            measured_decode_costs({"a": "b", "b": "a"})
