"""Chain registry: growth, forking, positions, GC bookkeeping."""

import pytest

from repro.encoding.chain import ChainRegistry


@pytest.fixture()
def registry() -> ChainRegistry:
    return ChainRegistry()


class TestLinearGrowth:
    def test_start_chain(self, registry):
        chain_id = registry.start_chain("r0")
        assert registry.position_of("r0") == (chain_id, 0)
        assert registry.is_tail("r0")

    def test_extend_from_tail(self, registry):
        registry.start_chain("r0")
        chain_id, position, overlapped = registry.extend("r0", "r1")
        assert position == 1
        assert not overlapped
        assert registry.is_tail("r1")
        assert not registry.is_tail("r0")

    def test_extend_unknown_source_starts_chain(self, registry):
        chain_id, position, overlapped = registry.extend("ghost", "r1")
        assert position == 1
        assert not overlapped
        assert registry.position_of("ghost") == (chain_id, 0)

    def test_records_in_write_order(self, registry):
        registry.start_chain("a")
        registry.extend("a", "b")
        registry.extend("b", "c")
        chain_id, _ = registry.position_of("a")
        assert registry.records_of_chain(chain_id) == ["a", "b", "c"]
        assert registry.chain_length(chain_id) == 3
        assert registry.tail_of_chain(chain_id) == "c"


class TestOverlappedFork:
    def test_fork_from_mid_chain(self, registry):
        registry.start_chain("r0")
        registry.extend("r0", "r1")
        chain_id, position, overlapped = registry.extend("r0", "r2")
        assert overlapped
        assert position == 1
        # Source restarts at position 0 of the fork.
        assert registry.position_of("r0") == (chain_id, 0)
        assert registry.is_tail("r2")
        # The orphaned tail of the old chain stays the old chain's tail.
        assert registry.is_tail("r1")

    def test_fork_keeps_growing(self, registry):
        registry.start_chain("r0")
        registry.extend("r0", "r1")
        registry.extend("r0", "r2")  # fork
        chain_id, position, overlapped = registry.extend("r2", "r3")
        assert not overlapped
        assert position == 2


class TestForget:
    def test_forget_reindexes_positions(self, registry):
        registry.start_chain("a")
        registry.extend("a", "b")
        registry.extend("b", "c")
        registry.forget("b")
        chain_id, _ = registry.position_of("a")
        assert registry.records_of_chain(chain_id) == ["a", "c"]
        assert registry.position_of("c") == (chain_id, 1)

    def test_forget_last_record_drops_chain(self, registry):
        registry.start_chain("solo")
        count = registry.chain_count
        registry.forget("solo")
        assert registry.chain_count == count - 1
        assert "solo" not in registry

    def test_forget_unknown_is_noop(self, registry):
        registry.forget("nothing")
