"""Rolling Rabin hash: vectorized path vs streaming reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.rabin import RabinHasher, rolling_rabin


class TestRabinHasher:
    def test_requires_odd_prime(self):
        with pytest.raises(ValueError):
            RabinHasher(window=8, prime=2)

    def test_requires_positive_window(self):
        with pytest.raises(ValueError):
            RabinHasher(window=0)

    def test_window_slides(self):
        # Hash of the last `window` bytes only: feeding a prefix then the
        # window must equal feeding the window alone.
        window = 4
        a = RabinHasher(window)
        for byte in b"junkjunk" + b"abcd":
            a.update(byte)
        b = RabinHasher(window)
        for byte in b"abcd":
            b.update(byte)
        assert a.value == b.value

    def test_reset(self):
        hasher = RabinHasher(4)
        for byte in b"abcd":
            hasher.update(byte)
        first = hasher.value
        hasher.reset()
        assert hasher.value == 0
        for byte in b"abcd":
            hasher.update(byte)
        assert hasher.value == first


class TestRollingRabin:
    def test_short_input_empty(self):
        assert rolling_rabin(b"abc", window=8).size == 0

    def test_output_length(self):
        hashes = rolling_rabin(b"x" * 100, window=16)
        assert len(hashes) == 85

    def test_matches_streaming_reference(self):
        data = bytes(range(256)) * 3
        window = 48
        vectorized = rolling_rabin(data, window)
        streamer = RabinHasher(window)
        streamed = [streamer.update(byte) for byte in data]
        for position in range(len(vectorized)):
            assert int(vectorized[position]) == streamed[position + window - 1]

    def test_identical_windows_hash_equal(self):
        data = b"ABCDEFGH" + b"zz" + b"ABCDEFGH"
        hashes = rolling_rabin(data, window=8)
        assert hashes[0] == hashes[10]

    def test_dtype_is_uint64(self):
        assert rolling_rabin(b"y" * 32, window=8).dtype == np.uint64

    @settings(max_examples=30)
    @given(st.binary(min_size=16, max_size=400))
    def test_property_vectorized_equals_reference(self, data):
        window = 16
        vectorized = rolling_rabin(data, window)
        streamer = RabinHasher(window)
        streamed = [streamer.update(byte) for byte in data]
        positions = range(0, len(vectorized), max(1, len(vectorized) // 8))
        for position in positions:
            assert int(vectorized[position]) == streamed[position + window - 1]

    def test_content_defined_shift_invariance(self):
        # Inserting a prefix must not change window hashes of later content —
        # the property CDC chunking relies on.
        tail = b"stable content that must hash identically" * 4
        plain = rolling_rabin(tail, window=16)
        shifted = rolling_rabin(b"PREFIX--" + tail, window=16)
        assert int(plain[0]) == int(shifted[8])
