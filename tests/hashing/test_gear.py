"""Gear hash: scalar/vectorized agreement and window semantics."""

import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.gear import (
    GEAR,
    GEAR_NP,
    WINDOW,
    GearHasher,
    gear_hashes,
    gear_table,
)


def random_bytes(n: int, seed: int = 1) -> bytes:
    rng = random.Random(seed)
    return rng.randbytes(n)


class TestGearTable:
    def test_deterministic(self):
        assert gear_table() == gear_table()
        assert gear_table() == GEAR

    def test_shape_and_range(self):
        assert len(GEAR) == 256
        assert all(0 <= v < (1 << 64) for v in GEAR)
        # A degenerate table (repeated entries) would weaken the hash.
        assert len(set(GEAR)) == 256

    def test_seed_changes_table(self):
        assert gear_table(seed=123) != GEAR

    def test_numpy_mirror_matches(self):
        assert GEAR_NP.dtype == np.uint64
        assert GEAR_NP.tolist() == list(GEAR)


class TestGearHasher:
    def test_rejects_short_table(self):
        with pytest.raises(ValueError):
            GearHasher(table=(1, 2, 3))

    def test_reference_recurrence(self):
        hasher = GearHasher()
        value = 0
        for byte in b"hello gear":
            value = ((value << 1) + GEAR[byte]) & ((1 << 64) - 1)
            assert hasher.update(byte) == value

    def test_reset_equals_fresh(self):
        hasher = GearHasher()
        for byte in b"junk":
            hasher.update(byte)
        hasher.reset()
        fresh = GearHasher()
        for byte in b"abc":
            assert hasher.update(byte) == fresh.update(byte)

    def test_window_expiry(self):
        # Two streams differing only in bytes older than WINDOW converge.
        suffix = random_bytes(WINDOW, seed=2)
        a = GearHasher()
        b = GearHasher()
        for byte in b"A" * 10 + suffix:
            last_a = a.update(byte)
        for byte in b"completely different prefix!" + suffix:
            last_b = b.update(byte)
        assert last_a == last_b


class TestVectorizedGear:
    def test_empty(self):
        assert gear_hashes(b"").size == 0

    def test_matches_streamer(self):
        data = random_bytes(1000, seed=3)
        hasher = GearHasher()
        expected = [hasher.update(byte) for byte in data]
        assert gear_hashes(data).tolist() == expected

    def test_dtype(self):
        assert gear_hashes(b"xyz").dtype == np.uint64

    @given(st.binary(min_size=0, max_size=300))
    def test_property_matches_streamer(self, data):
        hasher = GearHasher()
        expected = [hasher.update(byte) for byte in data]
        assert gear_hashes(data).tolist() == expected

    def test_restartable_from_window_warmup(self):
        # Seeding zero and replaying only WINDOW bytes of context matches
        # the stream hash — the property the chunker's skip-ahead needs.
        data = random_bytes(500, seed=4)
        full = gear_hashes(data)
        position = 321
        hasher = GearHasher()
        for byte in data[position - WINDOW + 1 : position + 1]:
            value = hasher.update(byte)
        assert value == int(full[position])
