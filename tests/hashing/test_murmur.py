"""MurmurHash3 x86_32 against published reference vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.murmur import murmur3_32

# Canonical vectors from Austin Appleby's reference implementation and the
# SMHasher verification suite.
REFERENCE_VECTORS = [
    (b"", 0x00000000, 0x00000000),
    (b"", 0x00000001, 0x514E28B7),
    (b"", 0xFFFFFFFF, 0x81F16F39),
    (b"\xff\xff\xff\xff", 0x00000000, 0x76293B50),
    (b"\x21\x43\x65\x87", 0x00000000, 0xF55B516B),
    (b"aaaa", 0x9747B28C, 0x5A97808A),
    (b"abc", 0x00000000, 0xB3DD93FA),
    (b"Hello, world!", 0x9747B28C, 0x24884CBA),
    (
        b"The quick brown fox jumps over the lazy dog",
        0x9747B28C,
        0x2FA826CD,
    ),
]


@pytest.mark.parametrize("data,seed,expected", REFERENCE_VECTORS)
def test_reference_vectors(data, seed, expected):
    assert murmur3_32(data, seed) == expected


def test_default_seed_is_zero():
    assert murmur3_32(b"abc") == murmur3_32(b"abc", 0)


def test_seed_changes_output():
    assert murmur3_32(b"payload", 1) != murmur3_32(b"payload", 2)


@pytest.mark.parametrize("tail", [1, 2, 3])
def test_tail_lengths(tail):
    # Tail handling differs per remainder class; every class must be stable
    # and within 32 bits.
    data = b"0123" * 3 + b"x" * tail
    value = murmur3_32(data)
    assert 0 <= value <= 0xFFFFFFFF
    assert murmur3_32(data) == value


@given(st.binary(max_size=256), st.integers(0, 0xFFFFFFFF))
def test_always_32_bit_and_deterministic(data, seed):
    value = murmur3_32(data, seed)
    assert 0 <= value <= 0xFFFFFFFF
    assert murmur3_32(data, seed) == value


@given(st.binary(min_size=1, max_size=64))
def test_single_bit_flip_changes_hash(data):
    flipped = bytes([data[0] ^ 0x01]) + data[1:]
    assert murmur3_32(data) != murmur3_32(flipped)
