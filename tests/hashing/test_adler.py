"""Rolling Adler-32: vectorized path vs scalar reference vs zlib."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.adler import adler32_block, rolling_adler32


class TestAdlerBlock:
    def test_matches_zlib(self):
        data = b"The quick brown fox"
        assert adler32_block(data) == zlib.adler32(data)

    def test_subrange(self):
        data = b"xxxHELLOyyy"
        assert adler32_block(data, 3, 5) == zlib.adler32(b"HELLO")

    def test_empty_block(self):
        assert adler32_block(b"", 0, 0) == zlib.adler32(b"")


class TestRollingAdler:
    def test_short_input_empty(self):
        assert rolling_adler32(b"abc", 16).size == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            rolling_adler32(b"abcdef", 0)

    def test_every_position_matches_scalar(self):
        data = bytes((i * 7 + 3) % 256 for i in range(200))
        width = 16
        checksums = rolling_adler32(data, width)
        for position in range(len(checksums)):
            assert int(checksums[position]) == adler32_block(data, position, width)

    def test_matches_zlib_at_positions(self):
        data = b"abcdefghijklmnopqrstuvwxyz" * 10
        width = 16
        checksums = rolling_adler32(data, width)
        for position in (0, 7, 100, len(checksums) - 1):
            assert int(checksums[position]) == zlib.adler32(
                data[position : position + width]
            )

    @settings(max_examples=30)
    @given(st.binary(min_size=16, max_size=300), st.integers(4, 16))
    def test_property_matches_scalar(self, data, width):
        if len(data) < width:
            return
        checksums = rolling_adler32(data, width)
        step = max(1, len(checksums) // 6)
        for position in range(0, len(checksums), step):
            assert int(checksums[position]) == adler32_block(data, position, width)

    def test_identical_windows_equal(self):
        data = b"REPEATBLOCKxxxxxxxREPEATBLOCK"
        width = 11
        checksums = rolling_adler32(data, width)
        assert checksums[0] == checksums[18]
