"""Shared fixtures: realistic record pairs and corpora for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator


@pytest.fixture(scope="session")
def text_gen() -> TextGenerator:
    return TextGenerator(seed=99)


@pytest.fixture(scope="session")
def document(text_gen) -> bytes:
    """One ~8 KB synthetic document."""
    return text_gen.document(8000).encode()


@pytest.fixture(scope="session")
def revision_pair(text_gen) -> tuple[bytes, bytes]:
    """A (source, target) pair shaped like consecutive record versions."""
    rng = random.Random(42)
    base = text_gen.document(8000)
    target = revise(rng, text_gen, base, num_edits=5)
    return base.encode(), target.encode()


@pytest.fixture(scope="session")
def revision_chain(text_gen) -> list[bytes]:
    """Twelve consecutive revisions of one document."""
    rng = random.Random(43)
    body = text_gen.document(5000)
    chain = [body.encode()]
    for _ in range(11):
        body = revise(rng, text_gen, body, num_edits=3)
        chain.append(body.encode())
    return chain


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(7)
