"""Cuckoo feature index: lookup/insert semantics, LRU, memory accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.cuckoo import ENTRY_BYTES, CuckooFeatureIndex


@pytest.fixture()
def index() -> CuckooFeatureIndex:
    return CuckooFeatureIndex(num_buckets=64, slots_per_bucket=4, max_candidates=4)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_buckets": 0},
            {"slots_per_bucket": 0},
            {"max_candidates": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CuckooFeatureIndex(**kwargs)


class TestLookupInsert:
    def test_miss_then_hit(self, index):
        assert index.lookup(12345) == []
        index.insert(12345, "rec-a")
        assert index.lookup(12345) == ["rec-a"]

    def test_lookup_and_insert_returns_prior_matches(self, index):
        first = index.lookup_and_insert(777, "rec-a")
        second = index.lookup_and_insert(777, "rec-b")
        assert first == []
        assert second == ["rec-a"]
        assert set(index.lookup(777)) >= {"rec-a", "rec-b"}

    def test_multiple_records_per_feature(self, index):
        for name in ("r1", "r2", "r3"):
            index.insert(42, name)
        assert set(index.lookup(42)) == {"r1", "r2", "r3"}

    def test_distinct_features_do_not_collide(self, index):
        index.insert(1, "rec-a")
        assert index.lookup(2) == [] or "rec-a" not in index.lookup(2)

    def test_max_candidates_caps_results_and_evicts_lru(self, index):
        for position in range(6):
            index.insert(99, f"rec-{position}")
        before = len(index)
        results = index.lookup(99)
        # Capped at max_candidates; hitting the cap evicts the LRU match,
        # so the returned list may be one shorter than the cap.
        assert 3 <= len(results) <= 4
        assert len(index) == before - 1  # the LRU entry was evicted

    def test_eviction_scans_past_the_cap_for_the_true_lru(self, index):
        """Regression: the cap eviction considers the FULL match set.

        Six same-feature entries overflow the first bucket (4 slots)
        into the second, so matches 5 and 6 sit past the
        ``max_candidates=4`` cap in scan order. The first lookup evicts
        the overall LRU (rec-0) and refreshes only the four returned
        matches — rec-5, beyond the cap, stays stale. The second lookup
        must therefore evict rec-5, the true LRU of the whole candidate
        set; an early-stopped scan would wrongly evict rec-1 (the LRU of
        the first four matches it happened to see) and keep the staler
        rec-5 alive.
        """
        for position in range(6):
            index.insert(99, f"rec-{position}")
        first = index.lookup(99)
        assert "rec-0" not in first  # overall LRU evicted at the cap
        second = index.lookup(99)
        survivors = index.record_ids()
        assert "rec-5" not in survivors  # stale-beyond-the-cap entry went
        assert "rec-1" in survivors      # refreshed match survived
        assert "rec-1" in second


class TestEvictionAndMemory:
    def test_memory_counts_entries(self, index):
        index.insert(1, "a")
        index.insert(2, "b")
        assert index.memory_bytes == 2 * ENTRY_BYTES
        assert len(index) == 2

    def test_remove_record(self, index):
        index.insert(5, "gone")
        index.insert(5, "stays")
        removed = index.remove_record("gone")
        assert removed == 1
        assert index.lookup(5) == ["stays"]

    def test_clear(self, index):
        for feature in range(20):
            index.insert(feature, f"r{feature}")
        index.clear()
        assert len(index) == 0
        assert index.memory_bytes == 0
        assert index.lookup(3) == []

    def test_full_buckets_displace_lru(self):
        tiny = CuckooFeatureIndex(num_buckets=2, slots_per_bucket=1, max_candidates=4)
        for feature in range(50):
            tiny.insert(feature, f"r{feature}")
        # Bounded: at most buckets * slots entries survive.
        assert len(tiny) <= 2 * 1

    def test_capacity_is_bounded_under_load(self):
        index = CuckooFeatureIndex(num_buckets=16, slots_per_bucket=2)
        for feature in range(10_000):
            index.insert(feature, f"r{feature}")
        assert len(index) <= 16 * 2
        assert index.memory_bytes <= 16 * 2 * ENTRY_BYTES


class TestChecksumBehaviour:
    def test_lookup_tolerates_checksum_false_positives(self, index):
        # 16-bit checksums may collide; lookups may return extra records but
        # never crash and never lose the true match.
        for feature in range(500):
            index.insert(feature, f"r{feature}")
        index.insert(100_000, "needle")
        assert "needle" in index.lookup(100_000)

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=40, unique=True))
    def test_property_inserted_features_found(self, features):
        index = CuckooFeatureIndex(num_buckets=256, slots_per_bucket=4)
        for feature in features:
            index.insert(feature, f"rec-{feature}")
        found = sum(
            1 for feature in features if f"rec-{feature}" in index.lookup(feature)
        )
        # All found while capacity is ample.
        assert found == len(features)
