"""Bloom filter: geometry sizing, membership, false-positive budget."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bloom import (
    MIN_BITS,
    BloomFilter,
    bloom_geometry,
    feature_digests,
)


class TestGeometry:
    def test_sizes_scale_with_capacity(self):
        small_bits, _ = bloom_geometry(100, 0.01)
        large_bits, _ = bloom_geometry(10_000, 0.01)
        assert large_bits > small_bits

    def test_tighter_fpp_costs_more_bits(self):
        loose_bits, _ = bloom_geometry(1000, 0.1)
        tight_bits, _ = bloom_geometry(1000, 0.001)
        assert tight_bits > loose_bits

    def test_bits_are_byte_aligned_and_floored(self):
        num_bits, num_hashes = bloom_geometry(1, 0.5)
        assert num_bits >= MIN_BITS
        assert num_bits % 8 == 0
        assert num_hashes >= 1

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0, "fpp": 0.01},
        {"capacity": 100, "fpp": 0.0},
        {"capacity": 100, "fpp": 1.0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            bloom_geometry(**kwargs)


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=256, fpp=0.01)
        features = [hash(("f", i)) & 0xFFFFFFFFFFFFFFFF for i in range(256)]
        for feature in features:
            bloom.add(feature)
        assert all(feature in bloom for feature in features)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(capacity=64, fpp=0.01)
        assert not any(feature in bloom for feature in range(1000))

    def test_hashed_path_matches_unhashed(self):
        bloom = BloomFilter(capacity=64, fpp=0.01)
        bloom.add_hashed(*feature_digests(12345))
        assert 12345 in bloom
        assert bloom.contains(12345)

    def test_h2_is_odd(self):
        for feature in range(100):
            _, h2 = feature_digests(feature)
            assert h2 % 2 == 1

    def test_size_bytes_matches_geometry(self):
        bloom = BloomFilter(capacity=2048, fpp=0.01)
        assert bloom.size_bytes == bloom.num_bits // 8

    def test_false_positive_rate_near_budget(self):
        # At design capacity, the observed rate should be within a small
        # multiple of the target (statistical slack for one seed).
        bloom = BloomFilter(capacity=2048, fpp=0.01)
        for feature in range(2048):
            bloom.add(feature)
        probes = range(1_000_000, 1_020_000)
        positives = sum(1 for feature in probes if feature in bloom)
        assert positives / 20_000 < 0.04

    @settings(max_examples=25)
    @given(st.sets(st.integers(0, 2**64 - 1), min_size=1, max_size=64))
    def test_property_added_always_member(self, features):
        bloom = BloomFilter(capacity=64, fpp=0.05)
        for feature in features:
            bloom.add(feature)
        assert all(feature in bloom for feature in features)
