"""Exact SHA-1 chunk index (trad-dedup substrate)."""

import hashlib

from hypothesis import given
from hypothesis import strategies as st

from repro.index.exact import ENTRY_BYTES, ExactChunkIndex


class TestObserve:
    def test_first_observation_unique(self):
        index = ExactChunkIndex()
        assert index.observe(b"chunk") is False

    def test_second_observation_duplicate(self):
        index = ExactChunkIndex()
        index.observe(b"chunk")
        assert index.observe(b"chunk") is True

    def test_different_chunks_unique(self):
        index = ExactChunkIndex()
        index.observe(b"chunk-a")
        assert index.observe(b"chunk-b") is False

    def test_contains(self):
        index = ExactChunkIndex()
        assert not index.contains(b"x")
        index.observe(b"x")
        assert index.contains(b"x")

    def test_digest_is_sha1(self):
        assert ExactChunkIndex.digest(b"data") == hashlib.sha1(b"data").digest()


class TestMemoryAccounting:
    def test_entry_cost(self):
        index = ExactChunkIndex()
        index.observe(b"a")
        index.observe(b"b")
        index.observe(b"a")  # duplicate: no new entry
        assert len(index) == 2
        assert index.memory_bytes == 2 * ENTRY_BYTES

    def test_memory_grows_linearly_with_unique_chunks(self):
        index = ExactChunkIndex()
        for i in range(1000):
            index.observe(i.to_bytes(4, "little"))
        assert index.memory_bytes == 1000 * ENTRY_BYTES


@given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=100))
def test_property_duplicate_detection_matches_set(chunks):
    index = ExactChunkIndex()
    seen = set()
    for chunk in chunks:
        expected = chunk in seen
        assert index.observe(chunk) == expected
        seen.add(chunk)
    assert len(index) == len(seen)
