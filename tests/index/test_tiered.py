"""Tiered feature index: budget, demotion/promotion, invalidation.

The safety-critical property pinned here is *negative accuracy*: a
record removed from both tiers can never be returned by any later
lookup, whatever its features and wherever they resided (hot tier, cold
band, or both). Positive imprecision (band-granular candidates, Bloom
false positives) is allowed by construction — the delta stage verifies
bytes — so the equivalence property is one-sided.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import CuckooFeatureIndex, IndexSpec, TieredFeatureIndex
from repro.index.tiered import HOT_ENTRY_BYTES, build_index


def tiered_spec(**overrides) -> IndexSpec:
    defaults = dict(
        kind="tiered",
        hot_bytes_budget=HOT_ENTRY_BYTES * 32,
        promotion_hits=2,
        cold_bands=8,
        cold_band_records=64,
        cold_band_features=256,
    )
    defaults.update(overrides)
    return IndexSpec(**defaults)


class TestConstruction:
    def test_build_index_dispatches_on_kind(self):
        assert isinstance(build_index(IndexSpec()), CuckooFeatureIndex)
        assert isinstance(build_index(tiered_spec()), TieredFeatureIndex)

    def test_rejects_cuckoo_spec(self):
        with pytest.raises(ValueError):
            TieredFeatureIndex(IndexSpec(kind="cuckoo"))


class TestBudget:
    def test_hot_tier_never_exceeds_budget(self):
        index = TieredFeatureIndex(tiered_spec())
        for position in range(500):
            index.insert(position * 7919, f"r{position}")
            assert index.hot_bytes <= index.hot_bytes_budget
        assert index.demotions > 0

    def test_insert_batch_respects_budget(self):
        index = TieredFeatureIndex(tiered_spec())
        index.insert_batch(
            [position * 104_729 for position in range(400)],
            [f"r{position}" for position in range(400)],
        )
        assert index.hot_bytes <= index.hot_bytes_budget

    def test_unbounded_budget_never_demotes(self):
        index = TieredFeatureIndex(tiered_spec(hot_bytes_budget=None))
        for position in range(300):
            index.lookup_and_insert(position * 7919, f"r{position}")
        assert index.demotions == 0
        assert index.cold_bytes == 0

    def test_memory_is_sum_of_tiers(self):
        index = TieredFeatureIndex(tiered_spec())
        for position in range(300):
            index.insert(position * 7919, f"r{position}")
        assert index.memory_bytes == index.hot_bytes + index.cold_bytes
        assert index.cold_bytes > 0  # bands materialized by demotion

    def test_maintenance_bytes_accumulate_and_drain(self):
        index = TieredFeatureIndex(tiered_spec())
        for position in range(300):
            index.insert(position * 7919, f"r{position}")
        assert index.maintenance_bytes > 0
        drained = index.drain_maintenance_bytes()
        assert drained > 0
        assert index.maintenance_bytes == 0
        assert index.drain_maintenance_bytes() == 0


class TestLookupOutcomes:
    def test_exactly_one_outcome_per_lookup(self):
        index = TieredFeatureIndex(tiered_spec())
        for position in range(300):
            index.lookup_and_insert(position * 7919, f"r{position}")
        for position in range(0, 300, 7):
            index.lookup(position * 7919)
        assert index.lookups == (
            index.hot_hits + index.cold_hits + index.misses
        )

    def test_demoted_feature_served_from_cold_tier(self):
        index = TieredFeatureIndex(tiered_spec())
        for position in range(300):
            index.insert(position * 7919, f"r{position}")
        # Feature 0 was inserted first, so it demoted long ago.
        candidates = index.lookup(0)
        assert index.cold_hits >= 1
        assert candidates  # the band vouches for recent demoted records

    def test_promotion_after_repeated_cold_hits(self):
        index = TieredFeatureIndex(tiered_spec(promotion_hits=2))
        for position in range(300):
            index.insert(position * 7919, f"r{position}")
        feature = 0
        index.lookup(feature)  # first cold hit: counted, no promotion
        assert index.promotions == 0
        index.lookup(feature)  # second cold hit: promotes
        assert index.promotions == 1
        before_hot = index.hot_hits
        index.lookup(feature)
        assert index.hot_hits == before_hot + 1

    def test_cold_false_positives_counted_separately(self):
        index = TieredFeatureIndex(tiered_spec(cold_fpp=0.4))
        for position in range(400):
            index.insert(position * 7919, f"r{position}")
        # Probe features never inserted: any bloom hit is a false
        # positive and must be counted as such, never as a cold hit of a
        # genuinely demoted feature.
        for probe in range(1_000_000, 1_004_000):
            index.lookup(probe)
        assert index.lookups == (
            index.hot_hits + index.cold_hits + index.misses
        )
        assert index.cold_false_positives >= 0
        assert index.cold_false_positives <= index.cold_hits + index.misses


class TestInvalidation:
    def test_remove_record_covers_both_tiers(self):
        index = TieredFeatureIndex(tiered_spec())
        for position in range(300):
            index.insert(position * 7919, f"r{position}")
        victims = [f"r{position}" for position in range(0, 300, 13)]
        for victim in victims:
            index.remove_record(victim)
        ids = index.record_ids()
        assert not ids.intersection(victims)
        for position in range(300):
            returned = index.lookup(position * 7919)
            assert not set(returned).intersection(victims)

    def test_cold_tier_delete_does_not_resurrect(self):
        # A record whose features live only in the cold tier must stay
        # gone after removal — the satellite-4 regression.
        index = TieredFeatureIndex(tiered_spec())
        for position in range(300):
            index.insert(position * 7919, f"r{position}")
        index.remove_record("r0")
        for _ in range(3):  # repeated cold lookups, through promotion
            assert "r0" not in index.lookup(0)
        assert "r0" not in index.record_ids()

    def test_clear_drops_both_tiers(self):
        index = TieredFeatureIndex(tiered_spec())
        for position in range(300):
            index.insert(position * 7919, f"r{position}")
        index.clear()
        assert len(index) == 0
        assert index.memory_bytes == 0
        assert index.lookup(0) == []


class TestEquivalence:
    def test_unbounded_tiered_matches_cuckoo_exactly(self):
        """With no budget the tiered index IS the cuckoo index."""
        spec = tiered_spec(hot_bytes_budget=None)
        tiered = TieredFeatureIndex(spec)
        cuckoo = CuckooFeatureIndex(
            num_buckets=spec.num_buckets,
            slots_per_bucket=spec.slots_per_bucket,
            max_candidates=spec.max_candidates,
        )
        for position in range(400):
            feature = (position % 97) * 7919
            record = f"r{position}"
            assert tiered.lookup_and_insert(feature, record) == \
                cuckoo.lookup_and_insert(feature, record)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 40),        # feature id (small, collisions)
                st.integers(0, 25),        # record id
                st.booleans(),             # True = delete that record
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_property_removed_records_never_resurrect(self, ops):
        """Deleted records never reappear, whatever tier churn occurred."""
        index = TieredFeatureIndex(
            tiered_spec(hot_bytes_budget=HOT_ENTRY_BYTES * 8)
        )
        dead: set[str] = set()
        for feature_id, record_id, is_delete in ops:
            feature = feature_id * 104_729
            record = f"r{record_id}"
            if is_delete:
                index.remove_record(record)
                dead.add(record)
            else:
                index.insert(feature, record)
                dead.discard(record)
            returned = set(index.lookup(feature))
            assert not returned & dead
            assert not index.record_ids() & dead
            assert index.lookups == (
                index.hot_hits + index.cold_hits + index.misses
            )
            assert index.hot_bytes <= index.hot_bytes_budget
