"""Documentation contract: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro


def iter_public_objects():
    """Yield (qualified name, object) for every public module-level item."""
    prefix = repro.__name__ + "."
    for module_info in pkgutil.walk_packages(repro.__path__, prefix):
        if module_info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        module = importlib.import_module(module_info.name)
        yield module_info.name, module
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_info.name:
                continue  # re-export; documented at its home
            yield f"{module_info.name}.{name}", obj


def test_every_public_item_documented():
    missing = [
        name
        for name, obj in iter_public_objects()
        if not (inspect.getdoc(obj) or "").strip()
    ]
    assert not missing, f"undocumented public items: {missing}"


def test_every_public_class_method_documented():
    missing = []
    for name, obj in iter_public_objects():
        if not inspect.isclass(obj):
            continue
        for method_name, method in vars(obj).items():
            if method_name.startswith("_"):
                continue
            if not callable(method) and not isinstance(method, property):
                continue
            target = method.fget if isinstance(method, property) else method
            if not callable(target):
                continue
            if not (inspect.getdoc(target) or "").strip():
                missing.append(f"{name}.{method_name}")
    assert not missing, f"undocumented public methods: {missing}"
