"""Property test: all-inline ≡ hybrid-after-drain, byte for byte.

The admission refactor's load-bearing promise: deferring a record only
moves *when* it dedups, never *what* it dedups to. After every deferred
record has drained (idle slices mid-run plus the unconditional drain at
finalize), a hybrid cluster must hold byte-identical storage contents,
the same dedup ratio, and the same engine accounting as a cluster that
ran the identical trace all-inline — and every record must decode back
to the inserted bytes on both.

Holds for insert+idle traces (the drain paths preserve per-stream FIFO
order, which keeps the per-database candidate and size-filter state in
lockstep). Client reads would perturb source-cache admission timing, so
the traces here are insert-only by construction.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import ClusterSpec, open_cluster
from repro.bench.admission_exp import mixed_trace
from repro.core.config import DedupConfig

MIXES = ("wikipedia,oltp", "enron,oltp", "wikipedia", "messageboards")


def open_mode(mode: str, window: int, queue_bound: int):
    return open_cluster(
        ClusterSpec(
            dedup=DedupConfig(
                chunk_size=64,
                governor_window=window,
                size_filter_interval=20,
            ),
            admission_mode=mode,
            admission_queue_records=queue_bound,
        )
    )


@settings(max_examples=6, deadline=None)
@given(
    mix=st.sampled_from(MIXES),
    seed=st.integers(min_value=0, max_value=50),
    window=st.integers(min_value=4, max_value=40),
    idle_every=st.integers(min_value=8, max_value=200),
    queue_bound=st.sampled_from((3, 64, 4096)),
)
def test_inline_all_equals_hybrid_after_drain(
    mix, seed, window, idle_every, queue_bound
):
    trace = mixed_trace(mix, seed, 60_000, idle_every=idle_every)
    inserted = {
        op.record_id: (op.database, op.content)
        for op in trace
        if op.kind == "insert"
    }

    inline = open_mode("inline", window, queue_bound)
    hybrid = open_mode("hybrid", window, queue_bound)
    inline_run = inline.run(trace)
    hybrid_run = hybrid.run(trace)

    # Nothing may be left queued after finalize (run() finalizes).
    assert hybrid.cluster.primary.deferred_queue_len == 0

    # Byte-identical storage state: same records, same stored form.
    inline_records = inline.cluster.primary.db.records
    hybrid_records = hybrid.cluster.primary.db.records
    assert inline_records.keys() == hybrid_records.keys()
    for record_id, expected in inline_records.items():
        actual = hybrid_records[record_id]
        assert (
            actual.form,
            actual.payload,
            actual.base_id,
            actual.pending_updates,
            actual.deleted,
        ) == (
            expected.form,
            expected.payload,
            expected.base_id,
            expected.pending_updates,
            expected.deleted,
        ), record_id

    assert hybrid_run.stored_bytes == inline_run.stored_bytes
    assert (
        hybrid_run.storage_compression_ratio
        == inline_run.storage_compression_ratio
    )

    # Same engine accounting: every deferred record was deduped (or
    # dropped) for exactly the same reason it would have been inline.
    # Global-scope comparison is order-independent where draining
    # legitimately reorders cross-stream work: saving samples compare as
    # a multiset and stage CPU sums to the last float ulp.
    inline_engine = inline.cluster.primary.engine
    hybrid_engine = hybrid.cluster.primary.engine
    inline_summary = inline_engine.stats.summary()
    hybrid_summary = hybrid_engine.stats.summary()
    inline_cpu = inline_summary.pop("stage_cpu_seconds")
    hybrid_cpu = hybrid_summary.pop("stage_cpu_seconds")
    assert hybrid_summary == inline_summary
    assert hybrid_cpu == pytest.approx(inline_cpu)
    assert sorted(hybrid_engine.stats.saving_samples) == sorted(
        inline_engine.stats.saving_samples
    )
    # Per-database order is preserved exactly, so per-stream stats match
    # including sample order.
    assert hybrid_engine.database_stats == inline_engine.database_stats

    # Every inserted record decodes back to the inserted bytes on both.
    for record_id, (database, content) in inserted.items():
        assert inline.read(database, record_id) == content
        assert hybrid.read(database, record_id) == content

    assert inline.check_invariants(strict=False).ok
    assert hybrid.check_invariants(strict=False).ok
