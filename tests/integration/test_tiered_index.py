"""Tiered index end-to-end: CRUD, failover rebuild, metrics identity.

The tiered index trades exactness for memory on the cold path, so the
cluster-level contract it must NOT weaken is correctness of the *record*
store: updates and deletes invalidate candidates in both tiers, a
promoted or restarted node rebuilds a coherent index from its own data,
and the exported metrics reconcile (every lookup is exactly one of a hot
hit, a cold hit, or a miss).
"""

from __future__ import annotations

import random

import pytest

from repro.api import ClusterSpec, IndexSpec, open_cluster
from repro.obs.export import check_reconciliation, metrics_document
from repro.sim.faults import CrashNode, FaultPlan
from repro.workloads import make_workload
from repro.workloads.base import Operation

SEED = 11

#: Small enough that a dedup-friendly trace overflows the hot tier and
#: exercises demotion, cold hits, and promotion — not just the hot path.
TIERED = IndexSpec(kind="tiered", hot_bytes_budget=2048, promotion_hits=2)

#: Tighter still, for the short hand-built traces whose sketches only
#: yield a few hundred feature entries.
TIERED_TIGHT = IndexSpec(kind="tiered", hot_bytes_budget=448,
                         promotion_hits=2)


def tiered_client(index: IndexSpec = TIERED, **overrides):
    spec = ClusterSpec(index=index, **overrides)
    return open_cluster(spec)


def dedup_friendly_ops(count: int = 24, seed: int = SEED) -> list[Operation]:
    # Large shared base, one localized mutation per record: nearly every
    # chunk recurs, so lookups dominate and the index works hard.
    rng = random.Random(seed)
    base = bytes(rng.randrange(256) for _ in range(16 * 1024))
    ops = []
    for i in range(count):
        mutated = bytearray(base)
        offset = 512 + 16 * i
        mutated[offset : offset + 8] = bytes(
            rng.randrange(256) for _ in range(8)
        )
        ops.append(Operation("insert", "db", f"r{i}", bytes(mutated)))
    return ops


class TestTieredCrud:
    def test_run_reconciles_and_holds_invariants(self):
        client = tiered_client()
        workload = make_workload("wikipedia", seed=SEED, target_bytes=400_000)
        client.run(workload.mixed_trace())
        client.finalize()

        index = client.cluster.primary.engine.index_for("wikipedia")
        assert index.demotions > 0, "budget never bound — test is vacuous"
        assert index.hot_bytes <= index.hot_bytes_budget

        assert check_reconciliation(
            metrics_document(client.cluster.registry)
        ) == []
        report = client.check_invariants()
        assert report.ok, report.summary()

    def test_delete_and_update_invalidate_cold_candidates(self):
        client = tiered_client()
        ops = dedup_friendly_ops()
        for op in ops:
            client.cluster.execute(op)

        # Delete half, update a quarter; finalize flushes the batches.
        for i in range(0, 24, 2):
            client.delete("db", f"r{i}")
        fresh = random.Random(99).randbytes(4 * 1024)
        for i in range(1, 24, 4):
            client.update("db", f"r{i}", fresh)
        client.finalize()

        # The index (both tiers) must not reference any deleted record.
        primary = client.cluster.primary
        live = set(primary.db.records)
        for _, part in primary.engine.index_partitions():
            assert part.record_ids() <= live

        for i in range(0, 24, 2):
            assert client.read("db", f"r{i}") is None
        for i in range(1, 24, 4):
            assert client.read("db", f"r{i}") == fresh

        report = client.check_invariants()
        assert report.ok, report.summary()

    def test_maintenance_cpu_is_charged(self):
        client = tiered_client(TIERED_TIGHT)
        for op in dedup_friendly_ops():
            client.cluster.execute(op)
        client.finalize()
        engine = client.cluster.primary.engine
        index = engine.index_for("db")
        assert index.demotions > 0
        assert engine.index_maintenance_cpu_seconds > 0.0
        # Fully drained into the ledger: nothing left pending.
        assert index.maintenance_bytes == 0


class TestTieredRebuild:
    def test_restart_rebuilds_both_tiers(self):
        client = tiered_client(TIERED_TIGHT)
        for op in dedup_friendly_ops():
            client.cluster.execute(op)
        client.finalize()
        primary = client.cluster.primary
        cpu_before = primary.background_cpu_seconds

        primary.restart()

        index = primary.engine.index_for("db")
        assert index.hot_bytes <= index.hot_bytes_budget
        assert len(index) > 0
        assert index.record_ids() <= set(primary.db.records)
        # Rebuild demotions are background CPU on the node's own ledger.
        assert index.demotions > 0
        assert primary.background_cpu_seconds > cpu_before

        for op in dedup_friendly_ops():
            assert client.read(op.database, op.record_id) == op.content
        assert client.check_invariants().ok

    def test_failover_promotes_with_coherent_tiered_index(self):
        client = tiered_client(TIERED_TIGHT, num_secondaries=2,
                               oplog_batch_bytes=1)
        cluster = client.cluster
        ops = dedup_friendly_ops()
        FaultPlan(
            seed=SEED,
            rules=[CrashNode(node="primary", after_appends=len(ops) // 2,
                             restart=False)],
        ).install(cluster)

        old_primary = cluster.primary
        for op in ops:
            cluster.execute(op)
        assert cluster.failover.failovers >= 1
        assert cluster.primary is not old_primary
        client.finalize()

        for op in ops:
            assert client.read(op.database, op.record_id) == op.content

        index = cluster.primary.engine.index_for("db")
        assert index.hot_bytes <= index.hot_bytes_budget
        assert index.record_ids() <= set(cluster.primary.db.records)
        assert check_reconciliation(
            metrics_document(cluster.registry)
        ) == []
        assert client.check_invariants(strict=False).ok


@pytest.mark.parametrize("shards", [1, 2])
def test_sharded_tiered_round_trip(shards):
    client = tiered_client(shards=shards)
    workload = make_workload("enron", seed=SEED, target_bytes=200_000)
    client.run(workload.insert_trace())
    client.finalize()
    assert check_reconciliation(
        metrics_document(
            client.cluster.registry
            if shards == 1
            else client.cluster.shards[0].registry
        )
    ) == []
    assert client.check_invariants().ok
    assert client.replicas_converged()
