"""Chaos-test support: record the failing FaultPlan as a CI artifact.

Chaos tests register their :class:`~repro.sim.faults.FaultPlan` through
the ``record_fault_plan`` fixture. When such a test fails, the plan's
``repr`` (which reconstructs it exactly — same seed, same rules) and its
event log are written to ``chaos-artifacts/<testname>.txt``; the CI
workflow uploads that directory, so a red chaos run on a random seed is
always reproducible locally.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

ARTIFACT_DIR = Path(os.environ.get("CHAOS_ARTIFACT_DIR", "chaos-artifacts"))


@pytest.fixture
def record_fault_plan(request):
    """Register a FaultPlan so a failure dumps it for reproduction."""

    def _record(plan):
        request.node._fault_plan = plan
        return plan

    return _record


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    plan = getattr(item, "_fault_plan", None)
    if plan is None or report.when != "call" or not report.failed:
        return
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", item.nodeid)
    lines = [
        f"test: {item.nodeid}",
        f"plan: {plan!r}",
        f"injected: {plan.injected}",
        "events:",
        *(f"  {event}" for event in plan.events),
        "",
    ]
    (ARTIFACT_DIR / f"{safe}.txt").write_text("\n".join(lines))
