"""Property: garbage collection is invisible to clients and never costs space.

Hypothesis drives seeded insert/update/delete/drain sequences against two
identical clusters; one of them additionally runs a GC+compaction batch at
arbitrary points chosen by the strategy. After every operation both
clusters' client-visible reads must match a plain dict model exactly, and
at the end the collecting cluster's stored footprint must be no larger
than the never-collecting one — the GC planner's footprint guard makes
that monotone by construction.

Record ids are never reused (tombstoned ids stay reserved), so a handle
that is deleted and re-inserted gets a fresh id with near-identical
content — which is exactly what builds the delta chains onto tombstones
that give the collector something to do.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ClusterSpec, open_cluster
from repro.core.config import DedupConfig
from repro.db.invariants import check_database
from repro.workloads.base import Operation

operation = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.just("update"), st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.just("delete"), st.integers(0, 5), st.just(0)),
    st.tuples(st.just("drain"), st.just(0), st.just(0)),
    st.tuples(st.just("gc"), st.just(0), st.just(0)),
)


def content_for(handle: int, variant: int) -> bytes:
    """Similar content per handle: variants mutate a few shared words."""
    rng = random.Random(handle * 131)
    words = [f"w{rng.randrange(60)}" for _ in range(350)]
    mutator = random.Random(handle * 131 + variant + 1)
    for _ in range(6):
        words[mutator.randrange(len(words))] = f"m{mutator.randrange(60)}"
    return (" ".join(words)).encode()


def _cluster():
    return open_cluster(
        ClusterSpec(dedup=DedupConfig(chunk_size=64))
    ).cluster


@settings(max_examples=25, deadline=None)
@given(st.lists(operation, min_size=1, max_size=25))
def test_gc_preserves_reads_and_never_grows_storage(ops):
    with_gc = _cluster()
    without_gc = _cluster()
    # handle -> (record_id, content) for currently-live records.
    model: dict[int, tuple[str, bytes]] = {}
    insert_seq = 0

    def run_both(op: Operation) -> None:
        with_gc.execute(op)
        without_gc.execute(op)

    for kind, handle, variant in ops:
        if kind == "insert":
            if handle in model:
                continue
            record_id = f"h{handle}-{insert_seq}"
            insert_seq += 1
            content = content_for(handle, variant)
            run_both(Operation(
                kind="insert", database="d",
                record_id=record_id, content=content,
            ))
            model[handle] = (record_id, content)
        elif kind == "update":
            if handle not in model:
                continue
            record_id, _ = model[handle]
            content = content_for(handle, variant) + b" updated"
            run_both(Operation(
                kind="update", database="d",
                record_id=record_id, content=content,
            ))
            model[handle] = (record_id, content)
        elif kind == "delete":
            if handle not in model:
                continue
            record_id, _ = model.pop(handle)
            run_both(Operation(
                kind="delete", database="d", record_id=record_id,
            ))
        elif kind == "drain":
            run_both(Operation(kind="idle", idle_seconds=2.0))
        elif kind == "gc":
            with_gc.primary.collect_garbage()

        # Client-visible state must match the model on both clusters.
        for cluster in (with_gc, without_gc):
            for record_id, expected in model.values():
                content, _ = cluster.read("d", record_id)
                assert content == expected

    with_gc.finalize()
    without_gc.finalize()
    with_gc.primary.collect_garbage()

    for cluster in (with_gc, without_gc):
        for record_id, expected in model.values():
            content, _ = cluster.read("d", record_id)
            assert content == expected
        assert check_database(cluster.primary.db).ok

    assert (
        with_gc.primary.db.stored_bytes
        <= without_gc.primary.db.stored_bytes
    )
