"""End-to-end integration: full cluster runs across workloads and configs."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads import make_workload

WORKLOADS = ("wikipedia", "enron", "stackexchange", "messageboards")


@pytest.mark.parametrize("name", WORKLOADS)
class TestAllWorkloadsConverge:
    def test_insert_trace_replicates_exactly(self, name):
        cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
        workload = make_workload(name, seed=21, target_bytes=150_000)
        result = cluster.run(workload.insert_trace())
        assert cluster.replicas_converged()
        assert result.storage_compression_ratio >= 1.0
        assert result.network_compression_ratio >= 1.0

    def test_mixed_trace_reads_return_correct_content(self, name):
        cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
        workload = make_workload(name, seed=21, target_bytes=100_000)
        contents: dict[str, bytes] = {}
        checked = 0
        for op in workload.mixed_trace():
            cluster.execute(op)
            if op.kind == "insert":
                contents[op.record_id] = op.content
            elif op.kind == "read" and checked < 50:
                content, _ = cluster.primary.read(op.database, op.record_id)
                assert content == contents[op.record_id]
                checked += 1
        assert checked > 0


class TestEncodingSchemesEndToEnd:
    @pytest.mark.parametrize("encoding", ["backward", "hop", "version-jumping", "forward"])
    def test_every_scheme_converges(self, encoding):
        cluster = Cluster(
            ClusterConfig(
                dedup=DedupConfig(chunk_size=64, encoding=encoding, hop_distance=4)
            )
        )
        workload = make_workload("wikipedia", seed=22, target_bytes=150_000)
        cluster.run(workload.insert_trace())
        assert cluster.replicas_converged()

    def test_forward_mode_compresses_network_only(self):
        cluster = Cluster(
            ClusterConfig(dedup=DedupConfig(chunk_size=64, encoding="forward"))
        )
        workload = make_workload("wikipedia", seed=22, target_bytes=150_000)
        result = cluster.run(workload.insert_trace())
        assert result.network_compression_ratio > 2.0
        assert result.storage_compression_ratio == pytest.approx(1.0, rel=0.02)

    def test_hop_reduces_decode_cost_vs_backward(self):
        from itertools import islice

        from repro.workloads.wikipedia import WikipediaWorkload

        results = {}
        for encoding in ("backward", "hop"):
            cluster = Cluster(
                ClusterConfig(
                    dedup=DedupConfig(
                        chunk_size=64, encoding=encoding, hop_distance=4
                    )
                )
            )
            # Single article, 48 revisions → one long chain.
            workload = WikipediaWorkload(
                seed=23, target_bytes=100_000_000, num_articles=1,
                median_article_bytes=3000,
            )
            cluster.run(islice(workload.insert_trace(), 48))
            db = cluster.primary.db
            results[encoding] = max(
                db.decode_cost(record_id) for record_id in db.records
            )
        assert results["hop"] < results["backward"] / 2


class TestCombinedCompression:
    def test_dedup_plus_snappy_beats_either_alone(self):
        workload_args = dict(seed=24, target_bytes=250_000)

        def run(dedup_enabled, block):
            cluster = Cluster(
                ClusterConfig(
                    dedup=DedupConfig(chunk_size=64),
                    dedup_enabled=dedup_enabled,
                    block_compression=block,
                )
            )
            workload = make_workload("wikipedia", **workload_args)
            return cluster.run(workload.insert_trace())

        both = run(True, "snappy")
        dedup_only = run(True, "none")
        snappy_only = run(False, "snappy")
        assert both.physical_compression_ratio > dedup_only.physical_compression_ratio
        assert both.physical_compression_ratio > snappy_only.physical_compression_ratio
