"""Cluster-level chaos: random interleaved CRUD across databases.

Hypothesis generates arbitrary interleavings of inserts (fresh or derived
from a previous record), updates, deletes and reads across two logical
databases, then checks the two invariants everything rests on:

* the primary always serves exactly the client-visible contents, and
* after finalize, the secondary converges to them byte-for-byte.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads.base import Operation
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator

step = st.tuples(
    st.sampled_from(["fresh", "derive", "update", "delete", "read"]),
    st.integers(0, 9),
    st.integers(0, 9),
    st.sampled_from(["alpha", "beta"]),
)


@settings(max_examples=20, deadline=None)
@given(st.lists(step, min_size=5, max_size=35))
def test_random_crud_preserves_contents_and_convergence(steps):
    cluster = Cluster(
        ClusterConfig(
            dedup=DedupConfig(chunk_size=64, size_filter_enabled=False)
        )
    )
    rng = random.Random(1234)
    text_gen = TextGenerator(seed=1234)
    visible: dict[str, bytes] = {}  # record_id -> expected content
    used_ids: set[str] = set()
    sequence = 0

    for kind, a, b, database in steps:
        record_id = f"{database}/r{a}"
        if kind in ("fresh", "derive"):
            if record_id in used_ids:
                continue  # ids are never reused
            if kind == "derive" and visible:
                base = visible[rng.choice(sorted(visible))]
                content = revise(
                    rng, text_gen, base.decode(errors="replace"), num_edits=2
                ).encode()
            else:
                content = text_gen.document(1500 + 100 * b).encode()
            cluster.execute(
                Operation("insert", database, record_id, content)
            )
            visible[record_id] = content
            used_ids.add(record_id)
            sequence += 1
        elif kind == "update" and record_id in visible:
            content = text_gen.document(800).encode()
            cluster.execute(Operation("update", database, record_id, content))
            visible[record_id] = content
        elif kind == "delete" and record_id in visible:
            cluster.execute(Operation("delete", database, record_id))
            del visible[record_id]
        elif kind == "read":
            target = f"{database}/r{b}"
            content, _ = cluster.primary.read(database, target)
            assert content == visible.get(target)

    # Primary state check.
    for record_id, expected in visible.items():
        database = record_id.split("/")[0]
        content, _ = cluster.primary.read(database, record_id)
        assert content == expected

    cluster.finalize()
    assert cluster.replicas_converged()
    for record_id, expected in visible.items():
        database = record_id.split("/")[0]
        content, _ = cluster.secondary.db.read(database, record_id)
        assert content == expected
