"""Cluster-level chaos: random CRUD interleavings under seeded faults.

Hypothesis generates arbitrary interleavings of inserts (fresh or derived
from a previous record), updates, deletes and reads across two logical
databases — and pairs each interleaving with a :class:`FaultPlan` drawn
from the same example: dropped replication batches, transient I/O
errors, sticky page corruption, node crashes, or nothing at all. Every
example ends in a strict :func:`check_cluster` sweep on top of the
byte-level model comparison.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.invariants import check_cluster
from repro.sim.faults import (
    CorruptPageReads,
    CrashNode,
    DropBatches,
    FaultPlan,
    TransientIOErrors,
)
from repro.workloads.base import Operation
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator

step = st.tuples(
    st.sampled_from(["fresh", "derive", "update", "delete", "read"]),
    st.integers(0, 9),
    st.integers(0, 9),
    st.sampled_from(["alpha", "beta"]),
)

FAULT_RULES = {
    "none": [],
    "drop": [DropBatches(probability=0.4)],
    "transient": [TransientIOErrors(probability=0.05)],
    "corrupt": [CorruptPageReads(probability=0.05, sticky=True)],
    "crash": [CrashNode(node="primary", after_appends=10)],
}


@settings(max_examples=20, deadline=None)
@given(
    steps=st.lists(step, min_size=5, max_size=35),
    fault_seed=st.integers(0, 2**16),
    scenario=st.sampled_from(sorted(FAULT_RULES)),
)
def test_random_crud_under_faults_preserves_invariants(
    steps, fault_seed, scenario
):
    cluster = Cluster(
        ClusterConfig(
            dedup=DedupConfig(chunk_size=64, size_filter_enabled=False),
            oplog_batch_bytes=4096,
        )
    )
    plan = FaultPlan(seed=fault_seed, rules=FAULT_RULES[scenario])
    plan.install(cluster)
    rng = random.Random(1234)
    text_gen = TextGenerator(seed=1234)
    visible: dict[str, bytes] = {}  # record_id -> expected content
    used_ids: set[str] = set()

    for kind, a, b, database in steps:
        record_id = f"{database}/r{a}"
        if kind in ("fresh", "derive"):
            if record_id in used_ids:
                continue  # ids are never reused
            if kind == "derive" and visible:
                base = visible[rng.choice(sorted(visible))]
                content = revise(
                    rng, text_gen, base.decode(errors="replace"), num_edits=2
                ).encode()
            else:
                content = text_gen.document(1500 + 100 * b).encode()
            cluster.execute(Operation("insert", database, record_id, content))
            visible[record_id] = content
            used_ids.add(record_id)
        elif kind == "update" and record_id in visible:
            content = text_gen.document(800).encode()
            cluster.execute(Operation("update", database, record_id, content))
            visible[record_id] = content
        elif kind == "delete" and record_id in visible:
            cluster.execute(Operation("delete", database, record_id))
            del visible[record_id]
        elif kind == "read":
            target = f"{database}/r{b}"
            # Reads route through the cluster's repair path, so even a
            # sticky-corrupted record must come back byte-exact.
            content, _ = cluster.read(database, target)
            assert content == visible.get(target)

    # Model comparison with faults still live: reads self-heal.
    for record_id, expected in visible.items():
        database = record_id.split("/")[0]
        content, _ = cluster.read(database, record_id)
        assert content == expected

    # The full invariant sweep drains replication, scrubs corruption,
    # and raises with the failing report (the plan repr reproduces it).
    report = check_cluster(cluster)
    assert report.ok

    # After the sweep, the secondary serves the same bytes directly.
    # (Direct db reads bypass the repair path: suspend injection first.)
    plan.suspend()
    for record_id, expected in visible.items():
        database = record_id.split("/")[0]
        content, _ = cluster.secondary.db.read(database, record_id)
        assert content == expected
