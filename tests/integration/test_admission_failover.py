"""Seeded chaos: primary failover with a non-empty deferred queue.

A hybrid-mode primary holds deferred records in its engine's queue —
records already stored raw and already oplogged raw (defer changes the
stored *form* later, never the write-ahead contract). When the primary
dies with the queue non-empty, the promoted secondary builds a fresh
engine whose queue is empty: the queued records simply stay raw. The
invariants this test pins down:

* **no loss** — every acknowledged insert reads back byte-exact after
  promotion (per-entry oplog shipping closes the async lost-write
  window, so any miss would be the admission layer's fault);
* **no double-dedup** — each record is stored exactly once, the
  admission accounting identity (defer decisions == out-of-line drains
  + queued + discarded) reconciles on the rebuilt collectors, and the
  post-finalize queue is empty.
"""

from __future__ import annotations

from repro.api import ClusterSpec, open_cluster
from repro.core.config import DedupConfig
from repro.obs.export import check_reconciliation, metrics_document
from repro.sim.faults import CrashNode, FaultPlan
from repro.workloads import make_workload

SEED = 7


def test_failover_with_pending_deferred_queue():
    workload = make_workload("wikipedia", seed=SEED, target_bytes=600_000)
    ops = [op for op in workload.insert_trace() if op.kind == "insert"]
    assert len(ops) > 40
    client = open_cluster(
        ClusterSpec(
            dedup=DedupConfig(chunk_size=64, governor_window=8),
            admission_mode="hybrid",
            # Impossible inline bar: after the warm-up window, every
            # record defers — the queue is guaranteed non-empty when
            # the crash lands (no idle ops drain it mid-trace).
            admission_inline_threshold=100.0,
            oplog_batch_bytes=1,
            num_secondaries=2,
        )
    )
    cluster = client.cluster
    crash_after = len(ops) // 2
    FaultPlan(
        seed=SEED,
        rules=[CrashNode(node="primary", after_appends=crash_after,
                         restart=False)],
    ).install(cluster)

    old_primary = cluster.primary
    max_pending_before_crash = 0
    for op in ops:
        cluster.execute(op)
        if cluster.primary is old_primary and cluster.primary.is_available:
            max_pending_before_crash = max(
                max_pending_before_crash, cluster.primary.deferred_queue_len
            )
    # The scenario is only meaningful if the queue really was non-empty
    # on the node that died.
    assert max_pending_before_crash > 0
    assert cluster.failover.failovers >= 1
    assert cluster.primary is not old_primary

    client.finalize()

    # No loss: every acknowledged insert reads back byte-exact.
    for op in ops:
        assert client.read(op.database, op.record_id) == op.content, (
            op.record_id
        )

    # No double-dedup: exactly one stored record per insert, empty
    # post-finalize queue, and the admission identity reconciles on the
    # promoted engine's rebuilt collectors.
    assert set(cluster.primary.db.records.keys()) == {
        op.record_id for op in ops
    }
    assert cluster.primary.deferred_queue_len == 0
    assert check_reconciliation(metrics_document(cluster.registry)) == []

    report = client.check_invariants(strict=False)
    assert report.ok, report.summary()


def test_restarted_primary_queue_dies_with_engine():
    """A supervised restart rebuilds the engine: the queue is empty, the
    once-queued records stay raw, and draining afterwards is a no-op."""
    workload = make_workload("wikipedia", seed=SEED, target_bytes=300_000)
    ops = [op for op in workload.insert_trace() if op.kind == "insert"]
    client = open_cluster(
        ClusterSpec(
            dedup=DedupConfig(chunk_size=64, governor_window=4),
            admission_mode="hybrid",
            admission_inline_threshold=100.0,
        )
    )
    cluster = client.cluster
    for op in ops:
        cluster.execute(op)
    assert cluster.primary.deferred_queue_len > 0

    cluster.primary.restart()
    assert cluster.primary.deferred_queue_len == 0
    assert cluster.primary.drain_deferred_dedup(force=True) == 0

    client.finalize()
    for op in ops:
        assert client.read(op.database, op.record_id) == op.content
    assert client.check_invariants(strict=False).ok
