"""Property: a primary-kill/rejoin run converges to the fault-free run.

With per-entry oplog shipping (``oplog_batch_bytes=1``) every
acknowledged write reaches the replicas before the next client
operation, so the lost-write window is empty by construction: killing
the primary anywhere in the trace, promoting a secondary, and rejoining
the old primary must yield *exactly* the user-visible contents of the
same trace run without faults — and a green invariant sweep. This is
the failover analogue of the paper's recovery claim: crashes cost
compression and latency, never bytes.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ClusterSpec, open_cluster
from repro.core.config import DedupConfig
from repro.sim.faults import CrashNode, FaultPlan
from repro.workloads.base import Operation


def build_trace(seed: int, count: int) -> list[Operation]:
    """Deterministic similar-record inserts with occasional updates."""
    rng = random.Random(seed)
    base = bytes(rng.randrange(256) for _ in range(500))
    ops: list[Operation] = []
    for index in range(count):
        mutated = bytearray(base)
        for _ in range(4):
            mutated[rng.randrange(len(mutated))] = rng.randrange(256)
        record_id = f"e/{index // 3}/{index % 3}"
        ops.append(Operation("insert", "db", record_id, bytes(mutated)))
        if index % 7 == 3:
            ops.append(
                Operation("update", "db", record_id, bytes(mutated[::-1]))
            )
    return ops


def run_trace(trace: list[Operation], fault_rule: CrashNode | None, seed: int):
    client = open_cluster(
        ClusterSpec(
            dedup=DedupConfig(chunk_size=64, size_filter_enabled=False),
            num_secondaries=2,
            oplog_batch_bytes=1,
        )
    )
    if fault_rule is not None:
        FaultPlan(seed=seed, rules=[fault_rule]).install(client.cluster)
    client.run(trace)
    return client


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    trace_len=st.integers(20, 60),
    kill_fraction=st.floats(0.1, 0.9),
)
def test_primary_kill_rejoin_converges_to_fault_free_contents(
    seed, trace_len, kill_fraction
):
    trace = build_trace(seed, trace_len)
    inserts = sum(1 for op in trace if op.kind == "insert")
    crash_seq = max(1, int(inserts * kill_fraction))
    baseline = run_trace(trace, None, seed)
    faulted = run_trace(
        trace,
        CrashNode(node="primary", after_appends=crash_seq, restart=False),
        seed,
    )
    assert faulted.cluster.failover.failovers == 1

    record_ids = sorted({op.record_id for op in trace})
    for record_id in record_ids:
        assert faulted.read("db", record_id) == baseline.read("db", record_id)

    report = faulted.check_invariants(strict=False)
    assert report.ok, report.summary()
    assert faulted.replicas_converged()
