"""Model-based property test: the Database vs a plain dict reference.

Hypothesis drives random CRUD sequences (with write-backs interleaved)
against both the real :class:`Database` — where records end up delta-
encoded, tomb-stoned, appended, spliced — and a trivial dict model. After
every step, client-visible reads must agree exactly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.writeback import WriteBackEntry
from repro.db.database import Database
from repro.db.errors import RecordExists, RecordNotFound
from repro.db.record import RecordForm
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.instructions import serialize

_COMPRESSOR = DeltaCompressor(anchor_interval=16)

# Operations reference records by small integer handles so sequences reuse
# the same records often enough to build chains.
operation = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, 7), st.integers(0, 5)),
    st.tuples(st.just("update"), st.integers(0, 7), st.integers(0, 5)),
    st.tuples(st.just("delete"), st.integers(0, 7), st.just(0)),
    st.tuples(st.just("writeback"), st.integers(0, 7), st.integers(0, 7)),
    st.tuples(st.just("read_all"), st.just(0), st.just(0)),
    st.tuples(st.just("idle"), st.just(0), st.just(0)),
)


def content_for(handle: int, variant: int) -> bytes:
    """Deterministic, chunkable content per (record, variant)."""
    rng = random.Random(handle * 31 + variant)
    words = [f"w{rng.randrange(200)}" for _ in range(300)]
    return (" ".join(words)).encode()


@settings(max_examples=40, deadline=None)
@given(st.lists(operation, min_size=1, max_size=40))
def test_database_matches_dict_model(ops):
    db = Database()
    model: dict[str, bytes] = {}

    for kind, a, b in ops:
        record_id = f"r{a}"
        if kind == "insert":
            content = content_for(a, b)
            try:
                db.insert("test", record_id, content)
                inserted = True
            except RecordExists:
                inserted = False
            if inserted:
                assert record_id not in model
                model[record_id] = content
        elif kind == "update":
            content = content_for(a, b) + b" updated"
            try:
                db.update(record_id, content)
                updated = True
            except RecordNotFound:
                updated = False
            assert updated == (record_id in model)
            if updated:
                model[record_id] = content
        elif kind == "delete":
            try:
                db.delete(record_id)
                deleted = True
            except RecordNotFound:
                deleted = False
            assert deleted == (record_id in model)
            model.pop(record_id, None)
        elif kind == "writeback":
            # Backward-encode record a against record b, like the engine
            # would after a dedup hit.
            base_id = f"r{b}"
            record = db.records.get(record_id)
            base = db.records.get(base_id)
            if (
                record is None or base is None or record_id == base_id
                or record.deleted or base.deleted or record.pending_updates
            ):
                continue
            # Avoid creating cycles: only encode against a record that
            # does not (transitively) decode from this one.
            cursor = base
            reachable = False
            while cursor is not None and cursor.base_id is not None:
                if cursor.base_id == record_id:
                    reachable = True
                    break
                cursor = db.records.get(cursor.base_id)
            if reachable or record.form is RecordForm.DELTA:
                continue
            target_content = model.get(record_id)
            base_content = model.get(base_id)
            if target_content is None or base_content is None:
                continue
            delta = _COMPRESSOR.compress(base_content, target_content)
            db.apply_writeback(
                WriteBackEntry(
                    record_id=record_id,
                    base_id=base_id,
                    payload=serialize(delta),
                    space_saving=1,
                )
            )
        elif kind == "idle":
            db.clock.advance(1.0)

        # Client-visible state must match the model exactly.
        for known_id, expected in model.items():
            record = db.records.get(known_id)
            assert record is not None and not record.deleted
            content, _ = db.read("test", known_id)
            assert content == expected
        for a2 in range(8):
            probe = f"r{a2}"
            if probe not in model:
                content, _ = db.read("test", probe)
                assert content is None
