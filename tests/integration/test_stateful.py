"""Hypothesis stateful machines: long adversarial CRUD interleavings.

RuleBasedStateMachine explores operation sequences the list-based property
tests never reach — interleavings where write-backs, tombstones, pending
updates, compaction and page relocation all overlap.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cache.writeback import WriteBackEntry
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.database import Database
from repro.db.errors import RecordExists, RecordNotFound
from repro.db.invariants import check_cluster
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.instructions import serialize
from repro.sim.faults import CorruptPageReads, FaultPlan, TransientIOErrors
from repro.storage.heapfile import HeapFile
from repro.workloads.base import Operation

_COMPRESSOR = DeltaCompressor(anchor_interval=16)


class DatabaseMachine(RuleBasedStateMachine):
    """Database vs dict model, with write-backs and idle flushes as rules."""

    records = Bundle("records")

    @initialize()
    def setup(self) -> None:
        self.db = Database()
        self.model: dict[str, bytes] = {}
        self.rng = random.Random(0xDB)
        self.counter = 0

    def _content(self, size_hint: int) -> bytes:
        words = [f"tok{self.rng.randrange(150)}" for _ in range(40 + size_hint * 12)]
        return " ".join(words).encode()

    @rule(target=records, size_hint=st.integers(0, 6))
    def insert(self, size_hint):
        record_id = f"r{self.counter}"
        self.counter += 1
        content = self._content(size_hint)
        self.db.insert("db", record_id, content)
        self.model[record_id] = content
        return record_id

    @rule(record_id=records, size_hint=st.integers(0, 4))
    def update(self, record_id, size_hint):
        content = self._content(size_hint) + b" v2"
        try:
            self.db.update(record_id, content)
            self.model[record_id] = content
        except RecordNotFound:
            assert record_id not in self.model

    @rule(record_id=records)
    def delete(self, record_id):
        try:
            self.db.delete(record_id)
            assert record_id in self.model
            del self.model[record_id]
        except RecordNotFound:
            assert record_id not in self.model

    @rule(record_id=records, base_id=records)
    def schedule_writeback(self, record_id, base_id):
        if record_id == base_id:
            return
        target = self.model.get(record_id)
        base = self.model.get(base_id)
        record = self.db.records.get(record_id)
        if target is None or base is None or record is None:
            return
        if record.pending_updates or not record.is_raw:
            return
        # Only backward-in-time bases (newer record), mirroring the engine.
        if int(base_id[1:]) <= int(record_id[1:]):
            return
        delta = _COMPRESSOR.compress(base, target)
        self.db.schedule_writebacks(
            [
                WriteBackEntry(
                    record_id=record_id,
                    base_id=base_id,
                    payload=serialize(delta),
                    space_saving=max(1, len(target) - 10),
                )
            ]
        )

    @rule()
    def idle_flush(self):
        self.db.clock.advance(30.0)
        self.db.flush_writebacks_if_idle(max_flushes=4)

    @rule()
    def read_everything(self):
        for record_id, expected in self.model.items():
            content, _ = self.db.read("db", record_id)
            assert content == expected

    @invariant()
    def deleted_records_invisible(self):
        for record_id in list(self.db.records):
            if record_id not in self.model:
                content, _ = self.db.read("db", record_id)
                assert content is None

    @invariant()
    def live_counts_match(self):
        assert self.db.live_records >= len(self.model) - 0
        # Tombstones may keep extra records around, but never fewer.


class HeapFileMachine(RuleBasedStateMachine):
    """Heap file vs dict model under put/delete/flush and page pressure."""

    handles = Bundle("handles")

    @initialize()
    def setup(self) -> None:
        self.heap = HeapFile(page_size=512, buffer_frames=2)
        self.model: dict[str, bytes] = {}
        self.counter = 0

    @rule(target=handles, size=st.integers(0, 1400), fill=st.integers(33, 126))
    def put_new(self, size, fill):
        handle = f"h{self.counter}"
        self.counter += 1
        data = bytes([fill]) * size
        self.heap.put(handle, data)
        self.model[handle] = data
        return handle

    @rule(handle=handles, size=st.integers(0, 900), fill=st.integers(33, 126))
    def put_existing(self, handle, size, fill):
        if handle not in self.model:
            return
        data = bytes([fill]) * size
        self.heap.put(handle, data)
        self.model[handle] = data

    @rule(handle=handles)
    def delete(self, handle):
        if handle not in self.model:
            return
        self.heap.delete(handle)
        del self.model[handle]

    @rule()
    def flush(self):
        self.heap.flush()

    @invariant()
    def contents_match(self):
        assert len(self.heap) == len(self.model)
        for handle, expected in self.model.items():
            assert self.heap.get(handle) == expected


class ClusterFaultMachine(RuleBasedStateMachine):
    """Cluster vs dict model with fault events interleaved into CRUD.

    The machine keeps a live :class:`FaultPlan` injecting background
    noise (transient I/O errors plus occasional sticky page corruption)
    while rules insert, update, delete and read — and two extra rules
    crash-and-restart either node mid-sequence. Reads go through the
    cluster's repair path, so the model comparison holds even when a
    read lands on a corrupted page. Every example tears down through a
    strict :func:`check_cluster` sweep.
    """

    records = Bundle("records")

    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed) -> None:
        self.cluster = Cluster(
            ClusterConfig(
                dedup=DedupConfig(chunk_size=64, size_filter_enabled=False),
                oplog_batch_bytes=2048,
            )
        )
        self.plan = FaultPlan(
            seed=seed,
            rules=[
                TransientIOErrors(probability=0.02),
                CorruptPageReads(probability=0.01, sticky=True),
            ],
        )
        self.plan.install(self.cluster)
        self.rng = random.Random(seed)
        self.model: dict[str, bytes] = {}
        self.counter = 0

    def _content(self, size_hint: int) -> bytes:
        words = [
            f"tok{self.rng.randrange(150)}" for _ in range(40 + size_hint * 12)
        ]
        return " ".join(words).encode()

    @rule(target=records, size_hint=st.integers(0, 5))
    def insert(self, size_hint):
        record_id = f"c{self.counter}"
        self.counter += 1
        content = self._content(size_hint)
        self.cluster.execute(Operation("insert", "db", record_id, content))
        self.model[record_id] = content
        return record_id

    @rule(record_id=records, size_hint=st.integers(0, 4))
    def update(self, record_id, size_hint):
        if record_id not in self.model:
            return
        content = self._content(size_hint) + b" v2"
        self.cluster.execute(Operation("update", "db", record_id, content))
        self.model[record_id] = content

    @rule(record_id=records)
    def delete(self, record_id):
        if record_id not in self.model:
            return
        self.cluster.execute(Operation("delete", "db", record_id))
        del self.model[record_id]

    @rule(record_id=records)
    def read(self, record_id):
        content, _ = self.cluster.read("db", record_id)
        assert content == self.model.get(record_id)

    @rule()
    def crash_primary(self):
        self.cluster.primary.crash()
        self.cluster.primary.restart()

    @rule()
    def crash_secondary(self):
        self.cluster.secondary.crash()
        self.cluster.secondary.restart()

    @rule()
    def scrub(self):
        self.cluster.scrub()

    @invariant()
    def primary_serves_model(self):
        # Cheap per-step probe: one modelled record read back exactly.
        if not self.model:
            return
        record_id = sorted(self.model)[0]
        content, _ = self.cluster.read("db", record_id)
        assert content == self.model[record_id]

    def teardown(self):
        if not hasattr(self, "cluster"):
            return  # example ended before initialize ran
        report = check_cluster(self.cluster)
        assert report.ok
        # Direct db reads bypass the repair path, so stop injecting
        # before the final byte comparison.
        self.plan.suspend()
        for record_id, expected in self.model.items():
            content, _ = self.cluster.secondary.db.read("db", record_id)
            assert content == expected


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestHeapFileMachine = HeapFileMachine.TestCase
TestHeapFileMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestClusterFaultMachine = ClusterFaultMachine.TestCase
TestClusterFaultMachine.settings = settings(
    max_examples=10, stateful_step_count=15, deadline=None
)
