"""Seeded fault injection: every fault class, every seed, zero data loss.

The chaos matrix drives a mixed CRUD trace through a cluster with a
:class:`~repro.sim.faults.FaultPlan` installed — dropped replication
batches, transient I/O errors, corrupt page reads (transient and sticky)
and node crashes — and ends every run the same way: a strict
:func:`~repro.db.invariants.check_cluster` sweep. Faults may cost
compression or latency; they must never cost bytes.

Seeds come from ``BASE_SEEDS`` plus an optional ``CHAOS_SEED``
environment variable — CI rolls a fresh one per run and uploads the
failing plan's repr as an artifact (see ``conftest.py``).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.invariants import check_cluster
from repro.sim.faults import (
    CorruptPageReads,
    CrashNode,
    DropBatches,
    FaultPlan,
    TransientIOErrors,
)
from repro.workloads.base import Operation

BASE_SEEDS = (101, 202, 303, 404, 505)

#: CI exports CHAOS_SEED=$GITHUB_RUN_ID so every run also rolls a fresh
#: seed; a failure reproduces from the uploaded plan artifact.
SEEDS = BASE_SEEDS + (
    (int(os.environ["CHAOS_SEED"]) % 1_000_000,)
    if os.environ.get("CHAOS_SEED")
    else ()
)

SCENARIOS = {
    "drop": [DropBatches(every=3), DropBatches(probability=0.2)],
    "transient": [TransientIOErrors(probability=0.05)],
    "corrupt": [
        CorruptPageReads(probability=0.04, sticky=True),
        CorruptPageReads(probability=0.04, sticky=False),
    ],
    "crash": [
        CrashNode(node="primary", after_appends=50),
        CrashNode(node="secondary", after_appends=90),
    ],
}


def make_cluster() -> Cluster:
    return Cluster(
        ClusterConfig(
            dedup=DedupConfig(chunk_size=64, size_filter_enabled=False),
            oplog_batch_bytes=4096,
        )
    )


def mixed_trace(seed: int, inserts: int = 110) -> list[Operation]:
    """Similar-record inserts interleaved with reads, updates, deletes."""
    rng = random.Random(seed)
    base = bytes(rng.randrange(256) for _ in range(700))
    ops = []
    live: list[str] = []
    for index in range(inserts):
        content = bytearray(base)
        for _ in range(rng.randrange(1, 24)):
            content[rng.randrange(len(content))] = rng.randrange(256)
        record_id = f"r{index}"
        ops.append(Operation("insert", "chaos", record_id, bytes(content)))
        live.append(record_id)
        if index % 6 == 4:
            ops.append(Operation("read", "chaos", rng.choice(live)))
        if index % 9 == 7:
            ops.append(
                Operation(
                    "update", "chaos", rng.choice(live), bytes(content[::-1])
                )
            )
        if index % 31 == 29 and len(live) > 1:
            victim = live.pop(rng.randrange(len(live)))
            ops.append(Operation("delete", "chaos", victim))
    return ops


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_seeded_faults_preserve_all_invariants(
    scenario, seed, record_fault_plan
):
    cluster = make_cluster()
    plan = record_fault_plan(FaultPlan(seed=seed, rules=SCENARIOS[scenario]))
    plan.install(cluster)
    cluster.run(mixed_trace(seed))
    report = check_cluster(cluster)  # strict: raises on any violation
    assert report.ok
    assert report.nodes_checked == 2
    assert report.oplog_checked or cluster.primary.oplog.truncated_before > 0


@pytest.mark.parametrize("seed", BASE_SEEDS)
def test_all_fault_classes_at_once(seed, record_fault_plan):
    cluster = make_cluster()
    plan = record_fault_plan(
        FaultPlan(
            seed=seed,
            rules=[
                DropBatches(probability=0.25),
                TransientIOErrors(probability=0.03),
                CorruptPageReads(probability=0.02, sticky=True),
                CrashNode(node="secondary", after_appends=60),
            ],
        )
    )
    plan.install(cluster)
    cluster.run(mixed_trace(seed))
    assert check_cluster(cluster).ok


def test_fault_plans_are_deterministic():
    """Same seed + rules ⇒ identical injections, byte-identical cluster."""

    def run(seed):
        cluster = make_cluster()
        plan = FaultPlan(
            seed=seed,
            rules=[
                DropBatches(probability=0.3),
                TransientIOErrors(probability=0.05),
                CorruptPageReads(probability=0.03, sticky=True),
            ],
        )
        plan.install(cluster)
        cluster.run(mixed_trace(7))
        return plan, cluster

    plan_a, cluster_a = run(42)
    plan_b, cluster_b = run(42)
    assert plan_a.events == plan_b.events
    assert repr(plan_a) == repr(plan_b)
    assert cluster_a.network.bytes_delivered == cluster_b.network.bytes_delivered
    for cluster in (cluster_a, cluster_b):
        cluster.fault_plan.suspend()
        cluster.scrub()  # repair any still-quarantined sticky corruption
    contents_a = {
        record_id: cluster_a.read("chaos", record_id)[0]
        for record_id in cluster_a.primary.db.records
    }
    contents_b = {
        record_id: cluster_b.read("chaos", record_id)[0]
        for record_id in cluster_b.primary.db.records
    }
    assert contents_a == contents_b


def test_plan_repr_reproduces_the_run():
    """The CI artifact (repr) evals back into an equivalent plan."""
    plan = FaultPlan(
        seed=99,
        rules=[DropBatches(every=4, limit=3), CrashNode(after_appends=30)],
    )
    rebuilt = eval(  # noqa: S307 - round-tripping our own repr
        repr(plan),
        {
            "FaultPlan": FaultPlan,
            "DropBatches": DropBatches,
            "CrashNode": CrashNode,
        },
    )
    assert rebuilt.seed == plan.seed
    assert rebuilt.rules == plan.rules


def test_dropped_batches_are_resent_not_lost(record_fault_plan):
    cluster = make_cluster()
    plan = record_fault_plan(
        FaultPlan(seed=5, rules=[DropBatches(every=2, limit=6)])
    )
    plan.install(cluster)
    cluster.run(mixed_trace(5))
    assert plan.injected > 0
    assert cluster.link.delivery_failures == plan.injected
    # Every batch eventually landed: the cursor reached the oplog head.
    assert cluster.link.cursor == cluster.primary.oplog.next_seq
    assert check_cluster(cluster).ok


def test_sticky_corruption_is_quarantined_and_repaired(record_fault_plan):
    cluster = make_cluster()
    plan = record_fault_plan(
        FaultPlan(
            seed=11,
            rules=[CorruptPageReads(probability=0.2, sticky=True, limit=8)],
        )
    )
    plan.install(cluster)
    cluster.run(mixed_trace(11))
    plan.suspend()
    corrupted = sum(
        1 for event in plan.events if event.startswith("corrupt")
    )
    assert corrupted > 0
    report = check_cluster(cluster)  # scrubs + repairs before checking
    assert report.ok
    assert (
        not cluster.primary.db.quarantine
        and not cluster.secondary.db.quarantine
    )


def test_transient_corruption_self_heals_without_repair(record_fault_plan):
    cluster = make_cluster()
    plan = record_fault_plan(
        FaultPlan(
            seed=13,
            rules=[CorruptPageReads(probability=0.3, sticky=False, limit=10)],
        )
    )
    plan.install(cluster)
    cluster.run(mixed_trace(13))
    db = cluster.primary.db
    assert plan.injected > 0
    # Checksum verification caught every flip; the re-read healed it.
    total = db.corrupt_reads_detected + cluster.secondary.db.corrupt_reads_detected
    recovered = (
        db.corrupt_reads_recovered + cluster.secondary.db.corrupt_reads_recovered
    )
    assert total == recovered > 0
    assert cluster.repairs == 0
    assert check_cluster(cluster).ok


def test_crash_recovery_restores_contents(record_fault_plan):
    cluster = make_cluster()
    plan = record_fault_plan(
        FaultPlan(seed=17, rules=[CrashNode(node="primary", after_appends=40)])
    )
    plan.install(cluster)
    ops = mixed_trace(17)
    expected = {}
    for op in ops:
        cluster.execute(op)
        if op.kind in ("insert", "update"):
            expected[op.record_id] = op.content
        elif op.kind == "delete":
            expected.pop(op.record_id, None)
    assert cluster.primary.crashes == 1
    plan.suspend()
    for record_id, content in expected.items():
        actual, _ = cluster.read("chaos", record_id)
        assert actual == content
    assert check_cluster(cluster).ok


def test_transient_io_errors_cost_latency_not_data(record_fault_plan):
    cluster = make_cluster()
    plan = record_fault_plan(
        FaultPlan(seed=23, rules=[TransientIOErrors(probability=0.15)])
    )
    plan.install(cluster)
    cluster.run(mixed_trace(23, inserts=60))
    retries = (
        cluster.primary.db.io_retries + cluster.secondary.db.io_retries
    )
    assert retries > 0
    assert check_cluster(cluster).ok
