"""Failure injection: the lossy machinery must never lose *data*.

The write-back cache's premise (§3.3.2) is that dropping any subset of
write-backs is safe — only compression suffers. These tests drop
write-backs randomly at several rates, crash-replay the oplog mid-run, and
check that client-visible contents and replica convergence survive every
time.
"""

import random

import pytest

from repro.cache.writeback import LossyWriteBackCache
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.recovery import replay_oplog
from repro.workloads.wikipedia import WikipediaWorkload


class DroppingWriteBackCache(LossyWriteBackCache):
    """Write-back cache that randomly discards a fraction of entries."""

    def __init__(self, capacity_bytes: int, drop_rate: float, seed: int) -> None:
        super().__init__(capacity_bytes)
        self.drop_rate = drop_rate
        self.rng = random.Random(seed)

    def put(self, entry) -> None:
        if self.rng.random() < self.drop_rate:
            self.discarded += 1
            self.discarded_savings += entry.space_saving
            self._notify_drop(entry)  # release the pending base reference
            return
        super().put(entry)


@pytest.mark.parametrize("drop_rate", [0.25, 0.75, 1.0])
def test_dropping_writebacks_never_corrupts(drop_rate):
    cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
    cluster.primary.db.writeback_cache = DroppingWriteBackCache(
        8 << 20, drop_rate, seed=5
    )
    workload = WikipediaWorkload(seed=81, target_bytes=150_000)
    ops = list(workload.insert_trace())
    for op in ops:
        cluster.execute(op)
    cluster.finalize()
    # Every record still reads back exactly.
    for op in ops:
        content, _ = cluster.primary.read(op.database, op.record_id)
        assert content == op.content
    if drop_rate == 1.0:
        # Nothing was ever re-encoded on the primary.
        assert cluster.primary.db.writebacks_applied == 0


def test_dropped_writebacks_only_cost_compression():
    def run(drop_rate):
        cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
        cluster.primary.db.writeback_cache = DroppingWriteBackCache(
            8 << 20, drop_rate, seed=5
        )
        workload = WikipediaWorkload(seed=81, target_bytes=150_000)
        result = cluster.run(workload.insert_trace())
        return result

    lossless = run(0.0)
    lossy = run(0.9)
    assert lossy.stored_bytes > lossless.stored_bytes
    # The network stream is untouched by storage-side losses.
    assert lossy.network_bytes == lossless.network_bytes


def test_crash_at_any_point_recovers_prefix():
    cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
    workload = WikipediaWorkload(seed=82, target_bytes=120_000)
    ops = list(workload.insert_trace())
    contents = {}
    for op in ops:
        cluster.execute(op)
        contents[op.record_id] = op.content
    entries = cluster.primary.oplog.entries()
    rng = random.Random(9)
    for _ in range(5):
        crash_point = rng.randrange(1, len(entries) + 1)
        recovered, report = replay_oplog(entries[:crash_point])
        assert report.decode_failures == 0
        for entry in entries[:crash_point]:
            content, _ = recovered.read(entry.database, entry.record_id)
            assert content == contents[entry.record_id]


def test_secondary_convergence_despite_primary_losses():
    cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
    cluster.primary.db.writeback_cache = DroppingWriteBackCache(
        8 << 20, drop_rate=0.5, seed=13
    )
    workload = WikipediaWorkload(seed=83, target_bytes=120_000)
    cluster.run(workload.insert_trace())
    # Contents converge even though the two nodes applied different
    # subsets of write-backs (storage forms may differ; data must not).
    assert cluster.replicas_converged()
