"""One insert, observed end-to-end: spans, costs, export, reconciliation.

The acceptance scenario for the observability layer: run a dedup-friendly
workload on a traced cluster and assert that (a) a single insert's span
tree covers sketch → index lookup → source select → encode → oplog ship →
replica apply with nonzero simulated cost attribution, (b) the exported
metrics document validates and reconciles cleanly, and (c) the registry
and the legacy paper-facing counters are the same numbers (no drift).
"""

import random

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.obs.export import (
    check_reconciliation,
    metrics_document,
    validate_metrics_document,
)
from repro.workloads.base import Operation


def _observed_cluster() -> Cluster:
    # oplog_batch_bytes=1 ships every insert immediately, so replication
    # spans nest inside the same root as the encode stages.
    config = ClusterConfig(
        dedup=DedupConfig(chunk_size=64), oplog_batch_bytes=1
    )
    return Cluster(config, trace=True, sample_every_ops=5)


def _dedup_friendly_ops(count: int = 12) -> list[Operation]:
    # Large shared base with one small localized mutation per record:
    # almost every chunk recurs, so inserts take the full dedup path.
    rng = random.Random(7)
    base = bytes(rng.randrange(256) for _ in range(32 * 1024))
    ops = []
    for i in range(count):
        mutated = bytearray(base)
        offset = 1024 + 8 * i
        mutated[offset : offset + 8] = bytes(
            rng.randrange(256) for _ in range(8)
        )
        ops.append(Operation("insert", "db", f"r{i}", bytes(mutated)))
    return ops


class TestEndToEndObservability:
    REQUIRED_SPANS = {
        "stage:sketch",
        "stage:index_lookup",
        "stage:source_select",
        "stage:forward_delta",
        "stage:writeback_plan",
        "replicate",
        "oplog_ship",
        "replica_apply",
    }

    def _run(self):
        cluster = _observed_cluster()
        cluster.run(_dedup_friendly_ops())
        assert cluster.replicas_converged()
        return cluster

    def test_one_insert_traced_through_every_layer(self):
        cluster = self._run()
        covering = [
            root
            for root in cluster.tracer.roots
            if self.REQUIRED_SPANS
            <= {span.name for span in root.walk()}
        ]
        assert covering, "no insert trace covers the full dedup path"
        costs = covering[0].total_costs()
        assert costs.get("cpu_s", 0) > 0
        assert costs.get("disk_s", 0) > 0
        assert costs.get("network_s", 0) > 0
        # The replica's apply work is attributed under its own span.
        apply_span = covering[0].find("replica_apply")
        assert apply_span.total_costs().get("cpu_s", 0) > 0

    def test_exported_document_validates_and_reconciles(self):
        cluster = self._run()
        document = metrics_document(cluster.registry, cluster.sampler)
        assert validate_metrics_document(document) == []
        assert check_reconciliation(document) == []
        assert document["series"]["samples"], "sampler recorded nothing"

    def test_registry_matches_legacy_stats_exactly(self):
        cluster = self._run()
        stats = cluster.primary.engine.stats
        registry = cluster.registry
        assert (
            registry.value("dedup_records_seen_total", "_total")
            == stats.records_seen
        )
        assert (
            registry.value("dedup_records_deduped_total", "_total")
            == stats.records_deduped
        )
        assert registry.value("dedup_bytes_in_total", "_total") == stats.bytes_in
        # Satellite 1: cache accounting is unified — the stats view, the
        # cache's own counters, and the registry agree by construction.
        source_cache = cluster.primary.engine.source_cache
        assert stats.source_cache_hits == source_cache.hits
        assert stats.source_cache_misses == source_cache.misses
        assert (
            registry.total("source_cache_hits_total") == source_cache.hits
        )
        assert (
            registry.total("source_cache_misses_total")
            == source_cache.misses
        )

    def test_node_collectors_export_native_counters(self):
        cluster = self._run()
        registry = cluster.registry
        disk = cluster.primary.db.disk
        assert (
            registry.value("disk_writes_total", "primary")
            == disk.writes
        )
        writeback = cluster.primary.db.writeback_cache
        assert (
            registry.value("writeback_cache_flushed_total", "primary")
            == writeback.flushed
        )
        assert registry.total("network_bytes_sent_total") == (
            cluster.network.bytes_sent
        )
