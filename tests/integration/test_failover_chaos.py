"""Failover chaos: kill nodes mid-workload, demand automatic recovery.

Every scenario drives a similar-record insert trace through a deployment
built with the public API, arms a seeded :class:`CrashNode` rule with
``restart=False`` — the node stays dead until the failover machinery
acts — and requires the run to complete *without manual intervention*,
end in a strict invariant sweep (including the single-primary and
rollback-completeness checks), and leave every replica byte-converged.

Each test writes the failover event log under the chaos artifact
directory; CI uploads those unconditionally, so promotion latencies and
rollback windows from every seeded run are inspectable after the fact.
"""

from __future__ import annotations

import os
import random
import re
from pathlib import Path

import pytest

from repro.api import ClusterSpec, open_cluster
from repro.core.config import DedupConfig
from repro.obs.export import check_metrics_payload, metrics_document
from repro.sim.faults import CrashNode, FaultPlan
from repro.workloads.base import Operation

BASE_SEEDS = (101, 202, 303)

#: CI exports CHAOS_SEED=$GITHUB_RUN_ID so every run also rolls a fresh
#: seed; a failure reproduces from the uploaded plan artifact.
SEEDS = BASE_SEEDS + (
    (int(os.environ["CHAOS_SEED"]) % 1_000_000,)
    if os.environ.get("CHAOS_SEED")
    else ()
)

ARTIFACT_DIR = Path(os.environ.get("CHAOS_ARTIFACT_DIR", "chaos-artifacts"))


def insert_trace(seed: int, count: int = 120) -> list[Operation]:
    """Similar records (a mutated shared base) across many entities."""
    rng = random.Random(seed)
    base = bytes(rng.randrange(256) for _ in range(700))
    ops = []
    for index in range(count):
        mutated = bytearray(base)
        for _ in range(6):
            mutated[rng.randrange(len(mutated))] = rng.randrange(256)
        ops.append(
            Operation(
                "insert", "db", f"e/{index // 4}/{index % 4}", bytes(mutated)
            )
        )
    return ops


def make_client(**overrides):
    defaults = dict(
        dedup=DedupConfig(chunk_size=64, size_filter_enabled=False),
        num_secondaries=2,
        oplog_batch_bytes=4096,
    )
    defaults.update(overrides)
    return open_cluster(ClusterSpec(**defaults))


def dump_event_log(test_name: str, seed: int, *clusters) -> None:
    """Write the failover event log(s) as a CI artifact (always kept)."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", f"failover-events-{test_name}-{seed}")
    lines = []
    for index, cluster in enumerate(clusters):
        if len(clusters) > 1:
            lines.append(f"# shard {index}")
        lines.append(cluster.failover.event_log() or "(no failover events)")
    (ARTIFACT_DIR / f"{safe}.log").write_text("\n".join(lines) + "\n")


@pytest.mark.parametrize("seed", SEEDS)
def test_primary_kill_completes_without_intervention(seed, record_fault_plan):
    client = make_client()
    plan = record_fault_plan(
        FaultPlan(
            seed=seed,
            rules=[CrashNode(node="primary", after_appends=60, restart=False)],
        )
    )
    plan.install(client.cluster)
    run = client.run(insert_trace(seed))
    failover = client.cluster.failover
    dump_event_log("primary-kill", seed, client.cluster)
    assert run.operations == 120
    assert failover.failovers == 1
    assert failover.last_time_to_promote_s is not None
    report = client.check_invariants(strict=False)
    assert report.ok, report.summary()
    # The demoted old primary rejoined as a replica and byte-converged.
    assert "primary" in [s.node_name for s in client.cluster.secondaries]
    assert client.replicas_converged()


@pytest.mark.parametrize("seed", SEEDS)
def test_rejoin_rollback_discards_unreplicated_suffix(seed, record_fault_plan):
    # The default shipping threshold leaves a real unreplicated suffix
    # at the crash: the rejoin must roll it back (lost-write window).
    client = make_client(oplog_batch_bytes=ClusterSpec().oplog_batch_bytes)
    plan = record_fault_plan(
        FaultPlan(
            seed=seed,
            rules=[CrashNode(node="primary", after_appends=60, restart=False)],
        )
    )
    plan.install(client.cluster)
    client.run(insert_trace(seed))
    failover = client.cluster.failover
    dump_event_log("rejoin-rollback", seed, client.cluster)
    assert failover.failovers == 1
    assert failover.rollback_entries > 0
    assert "rejoin" in {event.kind for event in failover.events}
    report = client.check_invariants(strict=False)
    assert report.ok, report.summary()
    assert client.replicas_converged()


@pytest.mark.parametrize("seed", SEEDS)
def test_secondary_kill_supervised_restart(seed, record_fault_plan):
    # Per-entry shipping so the replica's oplog (the crash trigger)
    # advances during the run, not only at finalize.
    client = make_client(oplog_batch_bytes=1)
    plan = record_fault_plan(
        FaultPlan(
            seed=seed,
            rules=[
                CrashNode(node="secondary:1", after_appends=40, restart=False)
            ],
        )
    )
    plan.install(client.cluster)
    client.run(insert_trace(seed))
    failover = client.cluster.failover
    dump_event_log("secondary-kill", seed, client.cluster)
    assert failover.failovers == 0
    assert failover.supervised_restarts >= 1
    report = client.check_invariants(strict=False)
    assert report.ok, report.summary()
    assert client.replicas_converged()


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_cluster_fails_over_per_shard(seed, record_fault_plan):
    client = make_client(shards=2, num_secondaries=2)
    plan = record_fault_plan(
        FaultPlan(
            seed=seed,
            rules=[CrashNode(node="primary", after_appends=25, restart=False)],
        )
    )
    client.cluster.install_fault_plans({0: plan})
    client.run(insert_trace(seed))
    shards = client.cluster.shards
    dump_event_log("sharded-kill", seed, *shards)
    assert shards[0].failover.failovers == 1
    assert shards[1].failover.failovers == 0
    report = client.check_invariants(strict=False)
    assert report.ok, report.summary()
    assert client.replicas_converged()


def test_failover_metrics_export_and_reconcile(record_fault_plan):
    """The new counters land in ``repro.metrics/v1`` and reconcile."""
    client = make_client()
    plan = record_fault_plan(
        FaultPlan(
            seed=7,
            rules=[CrashNode(node="primary", after_appends=60, restart=False)],
        )
    )
    plan.install(client.cluster)
    client.run(insert_trace(7))
    document = metrics_document(client.cluster.registry)
    assert check_metrics_payload(document) == []
    metrics = document["metrics"]
    for name in (
        "failovers_total",
        "rollback_entries_total",
        "resync_bytes_total",
        "oplog_appends_total",
    ):
        assert name in metrics, name
    failovers = metrics["failovers_total"]["values"][0]["value"]
    assert failovers == 1
    rolled_back = metrics["rollback_entries_total"]["values"][0]["value"]
    appends = sum(
        row["value"] for row in metrics["oplog_appends_total"]["values"]
    )
    assert rolled_back > 0
    assert rolled_back <= appends
