"""CRUD against dedup-encoded records, end to end through the cluster."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads.base import Operation
from repro.workloads.wikipedia import WikipediaWorkload


@pytest.fixture()
def loaded_cluster():
    cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
    workload = WikipediaWorkload(seed=31, target_bytes=150_000, num_articles=1)
    ops = list(workload.insert_trace())
    for op in ops:
        cluster.execute(op)
    cluster.finalize()
    return cluster, ops


class TestReadsAfterEncoding:
    def test_every_version_reads_back(self, loaded_cluster):
        cluster, ops = loaded_cluster
        for op in ops:
            content, _ = cluster.primary.read(op.database, op.record_id)
            assert content == op.content

    def test_latest_version_is_raw(self, loaded_cluster):
        cluster, ops = loaded_cluster
        assert cluster.primary.db.decode_cost(ops[-1].record_id) == 0

    def test_old_versions_are_encoded(self, loaded_cluster):
        cluster, ops = loaded_cluster
        assert cluster.primary.db.decode_cost(ops[0].record_id) > 0


class TestUpdateDeleteOnChains:
    def test_update_encoded_record(self, loaded_cluster):
        cluster, ops = loaded_cluster
        victim = ops[3].record_id
        cluster.execute(
            Operation("update", "wikipedia", victim, b"rewritten body " * 20)
        )
        content, _ = cluster.primary.read("wikipedia", victim)
        assert content == b"rewritten body " * 20
        # Neighbours still decode.
        for op in (ops[2], ops[4]):
            content, _ = cluster.primary.read("wikipedia", op.record_id)
            assert content == op.content

    def test_delete_mid_chain_preserves_others(self, loaded_cluster):
        cluster, ops = loaded_cluster
        victim = ops[5].record_id
        cluster.execute(Operation("delete", "wikipedia", victim))
        gone, _ = cluster.primary.read("wikipedia", victim)
        assert gone is None
        for op in ops[:5] + ops[6:8]:
            content, _ = cluster.primary.read("wikipedia", op.record_id)
            assert content == op.content

    def test_delete_every_record(self, loaded_cluster):
        cluster, ops = loaded_cluster
        for op in ops:
            cluster.execute(Operation("delete", "wikipedia", op.record_id))
        for op in ops:
            content, _ = cluster.primary.read("wikipedia", op.record_id)
            assert content is None

    def test_reinsert_after_full_delete_cycle(self, loaded_cluster):
        cluster, ops = loaded_cluster
        for op in ops:
            cluster.execute(Operation("delete", "wikipedia", op.record_id))
        # Repeated reads drive garbage collection splices.
        cluster.execute(Operation("insert", "wikipedia", "fresh", b"new start " * 50))
        content, _ = cluster.primary.read("wikipedia", "fresh")
        assert content == b"new start " * 50
