"""GC chaos: crashes, corrupt reads, and failover mid-garbage-collection.

Each scenario builds a dedup-heavy cluster, deletes still-referenced
records so real tombstone cohorts exist, then injects a seeded fault at
the worst point of the GC batch lifecycle:

* a crash after apply but before post-validation (GC never touches the
  oplog, so replay must land on the exact pre-GC logical state);
* sticky corrupt page reads while the collector re-encodes dependents
  (corrupt cohorts are skipped or rolled back, never half-applied);
* a primary kill mid-workload, with GC and the rebuilt audit trail
  running on the promoted secondary (the check-metrics reconciliation
  identity must survive the failover rebuild);
* a deterministic post-validation failure, proving a bad batch rolls
  back to byte-identical state and a clean retry then succeeds.

Failing fault plans land in ``chaos-artifacts/`` via ``record_fault_plan``.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.api import ClusterSpec, open_cluster
from repro.core.config import DedupConfig
from repro.core.gc import (
    OUTCOME_APPLIED,
    OUTCOME_NOOP,
    OUTCOME_ROLLED_BACK,
)
from repro.db.invariants import check_database
from repro.obs.export import check_reconciliation, metrics_document
from repro.sim.faults import CorruptPageReads, CrashNode, FaultPlan
from repro.workloads.base import Operation

BASE_SEEDS = (101, 202, 303)

SEEDS = BASE_SEEDS + (
    (int(os.environ["CHAOS_SEED"]) % 1_000_000,)
    if os.environ.get("CHAOS_SEED")
    else ()
)


def insert_trace(seed: int, count: int = 96) -> list[Operation]:
    """Similar records (a mutated shared base) across many entities."""
    rng = random.Random(seed)
    base = bytes(rng.randrange(256) for _ in range(700))
    ops = []
    for index in range(count):
        mutated = bytearray(base)
        for _ in range(6):
            mutated[rng.randrange(len(mutated))] = rng.randrange(256)
        ops.append(
            Operation(
                "insert", "db", f"e/{index // 4}/{index % 4}", bytes(mutated)
            )
        )
    return ops


def make_client(**overrides):
    defaults = dict(
        dedup=DedupConfig(chunk_size=64, size_filter_enabled=False),
        oplog_batch_bytes=4096,
    )
    defaults.update(overrides)
    return open_cluster(ClusterSpec(**defaults))


def delete_referenced(client, seed: int, limit: int = 6) -> list[str]:
    """Delete live records other records decode from → real tombstones."""
    primary = client.cluster.primary
    rng = random.Random(seed)
    victims = [
        record_id
        for record_id, record in primary.db.records.items()
        if record.ref_count > 0 and not record.deleted
    ]
    rng.shuffle(victims)
    victims = victims[:limit]
    for record_id in victims:
        client.cluster.execute(Operation("delete", "db", record_id))
    return victims


def expected_contents(trace, deleted) -> dict[str, bytes]:
    model = {op.record_id: op.content for op in trace}
    for record_id in deleted:
        model.pop(record_id, None)
    return model


def assert_reads_match(cluster, model) -> None:
    for record_id, expected in model.items():
        content, _ = cluster.read("db", record_id)
        assert content == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_mid_gc_batch_replays_to_pre_gc_state(seed, record_fault_plan):
    client = make_client()
    trace = insert_trace(seed)
    client.run(trace)
    deleted = delete_referenced(client, seed)
    model = expected_contents(trace, deleted)
    primary = client.cluster.primary
    plan = primary.gc.plan()
    assert plan.reroots, "trace must produce collectable tombstones"

    # Power loss after apply, before post-validation: the batch is
    # half-done in memory, and nothing about it ever reached the oplog.
    def power_loss(db, prepared):
        raise RuntimeError("simulated crash mid-GC batch")

    primary.gc.on_post_validate = power_loss
    with pytest.raises(RuntimeError):
        primary.collect_garbage()

    primary.crash()
    primary.restart()
    assert_reads_match(client.cluster, model)
    assert check_database(primary.db).ok
    audit = primary.engine.audit
    assert len(audit) > 0
    assert all(entry.rebuilt for entry in audit.entries)
    assert check_reconciliation(
        metrics_document(client.cluster.registry)
    ) == []


@pytest.mark.parametrize("seed", SEEDS)
def test_corrupt_page_reads_during_gc_migration(seed, record_fault_plan):
    client = make_client()
    plan = record_fault_plan(
        FaultPlan(
            seed=seed,
            rules=[CorruptPageReads(probability=0.15, sticky=True)],
        )
    )
    plan.install(client.cluster)
    trace = insert_trace(seed)
    client.run(trace)
    deleted = delete_referenced(client, seed)
    model = expected_contents(trace, deleted)

    # Collect while reads are lying: corrupt cohorts are skipped at
    # dry-run (decode fails) or rolled back at post-validation; either
    # way the batch never half-applies.
    primary = client.cluster.primary
    for _ in range(3):
        report = primary.collect_garbage()
        assert report.outcome in (
            OUTCOME_APPLIED, OUTCOME_ROLLED_BACK, OUTCOME_NOOP
        )

    # The cluster read path repairs sticky corruption; after the sweep
    # every surviving record is byte-exact again.
    report = client.check_invariants(strict=False)
    assert report.ok, report.summary()
    plan.suspend()
    assert_reads_match(client.cluster, model)


@pytest.mark.parametrize("seed", SEEDS)
def test_failover_mid_gc_rebuilds_audit_and_reconciles(
    seed, record_fault_plan
):
    client = make_client(num_secondaries=2)
    plan = record_fault_plan(
        FaultPlan(
            seed=seed,
            rules=[CrashNode(node="primary", after_appends=60, restart=False)],
        )
    )
    plan.install(client.cluster)
    trace = insert_trace(seed, count=120)
    client.run(trace)
    assert client.cluster.failover.failovers == 1

    # Inserts in the unreplicated oplog suffix at the crash are legally
    # rolled back by the promotion (the lost-write window); the model is
    # what actually survived the failover — GC must lose nothing more.
    model = {}
    for op in trace:
        content, _ = client.cluster.read("db", op.record_id)
        if content is not None:
            assert content == op.content
            model[op.record_id] = content
    assert len(model) > len(trace) // 2

    # The promoted secondary owns a fresh collector and an audit trail
    # rebuilt from the surviving oplog; GC keeps working after failover.
    primary = client.cluster.primary
    for record_id in delete_referenced(client, seed):
        model.pop(record_id, None)
    primary.collect_garbage()
    audit = primary.engine.audit
    assert len(audit) > 0
    assert any(entry.rebuilt for entry in audit.entries)

    assert_reads_match(client.cluster, model)
    report = client.check_invariants(strict=False)
    assert report.ok, report.summary()
    # The audit counters live on the cluster registry and span engine
    # generations: the savings identity must hold post-failover.
    assert check_reconciliation(
        metrics_document(client.cluster.registry)
    ) == []


@pytest.mark.parametrize("seed", SEEDS)
def test_failed_gc_batch_rolls_back_cleanly(seed, record_fault_plan):
    client = make_client()
    trace = insert_trace(seed)
    client.run(trace)
    deleted = delete_referenced(client, seed)
    model = expected_contents(trace, deleted)
    primary = client.cluster.primary
    gc = primary.gc

    # Corrupt an applied dependent between apply and post-validation:
    # validation must catch it and roll the whole batch back.
    def corrupt_applied(db, prepared):
        victim = prepared[0].dependents[0].record_id
        record = db.records[victim]
        record.payload = b"\xff" + record.payload

    gc.on_post_validate = corrupt_applied
    report = primary.collect_garbage()
    assert report.outcome == OUTCOME_ROLLED_BACK
    assert report.violations
    assert gc.batches[OUTCOME_ROLLED_BACK] == 1
    # Verify through the pure decode path: client reads (and the full
    # invariant sweep) would trigger the inline §4.1 splice and collect
    # the tombstones themselves, leaving nothing for the retry to prove.
    for record_id, expected in model.items():
        assert primary.db.decode_stored_content(record_id) == expected

    # A clean retry of the identical plan applies.
    gc.on_post_validate = None
    report = primary.collect_garbage()
    assert report.outcome == OUTCOME_APPLIED
    assert report.tombstones_removed > 0
    assert_reads_match(client.cluster, model)
    assert check_database(primary.db).ok
    assert check_reconciliation(
        metrics_document(client.cluster.registry)
    ) == []
