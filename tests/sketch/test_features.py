"""Similarity sketch: consistent sampling properties."""

import pytest

from repro.chunking.cdc import ContentDefinedChunker
from repro.sketch.features import FeatureSketch, SketchExtractor


@pytest.fixture()
def extractor() -> SketchExtractor:
    return SketchExtractor(chunker=ContentDefinedChunker(avg_size=64), top_k=8)


class TestSketchExtraction:
    def test_at_most_k_features(self, extractor, document):
        sketch = extractor.sketch(document)
        assert 1 <= len(sketch.features) <= 8

    def test_features_sorted_descending(self, extractor, document):
        features = extractor.sketch(document).features
        assert list(features) == sorted(features, reverse=True)

    def test_deterministic(self, extractor, document):
        assert extractor.sketch(document) == extractor.sketch(document)

    def test_small_record_fewer_chunks_than_k(self, extractor):
        sketch = extractor.sketch(b"tiny record")
        assert 1 <= len(sketch.features) <= 8
        assert sketch.chunk_count >= 1

    def test_invalid_top_k(self):
        with pytest.raises(ValueError):
            SketchExtractor(top_k=0)

    def test_repeated_content_collapses(self, extractor):
        # A record of one repeated block yields few distinct features.
        sketch = extractor.sketch(b"Z" * 4096)
        assert len(set(sketch.features)) == len(sketch.features)


class TestSimilarityDetection:
    def test_revisions_share_features(self, extractor, revision_pair):
        source, target = revision_pair
        assert extractor.sketch(source).shares_feature_with(
            extractor.sketch(target)
        )

    def test_unrelated_records_do_not_share(self, extractor, text_gen):
        a = extractor.sketch(text_gen.document(4000).encode())
        b = extractor.sketch(text_gen.document(4000).encode())
        assert not a.shares_feature_with(b)

    def test_chain_of_revisions_all_similar_to_neighbors(
        self, extractor, revision_chain
    ):
        sketches = [extractor.sketch(revision) for revision in revision_chain]
        for previous, current in zip(sketches, sketches[1:]):
            assert previous.shares_feature_with(current)

    def test_shares_feature_is_symmetric(self, extractor, revision_pair):
        source, target = revision_pair
        a = extractor.sketch(source)
        b = extractor.sketch(target)
        assert a.shares_feature_with(b) == b.shares_feature_with(a)

    def test_empty_sketch_shares_nothing(self):
        empty = FeatureSketch(features=(), chunk_count=0)
        other = FeatureSketch(features=(1, 2), chunk_count=2)
        assert not empty.shares_feature_with(other)


class TestLaneEquivalence:
    """Sketches must not depend on which chunker lane computed them."""

    @pytest.mark.parametrize("impl", ["scalar", "vectorized"])
    def test_lane_matches_auto(self, impl, document):
        auto = SketchExtractor(
            chunker=ContentDefinedChunker(avg_size=64, impl="auto"), top_k=8
        )
        lane = SketchExtractor(
            chunker=ContentDefinedChunker(avg_size=64, impl=impl), top_k=8
        )
        assert lane.sketch(document) == auto.sketch(document)

    def test_sketch_many_matches_sequential(self, text_gen):
        docs = [text_gen.document(2000).encode() for _ in range(6)] + [b""]
        extractor = SketchExtractor(
            chunker=ContentDefinedChunker(avg_size=64), top_k=8
        )
        assert extractor.sketch_many(docs) == [
            extractor.sketch(d) for d in docs
        ]


class TestSeedIsolation:
    def test_different_seeds_different_features(self, document):
        a = SketchExtractor(seed=1).sketch(document)
        b = SketchExtractor(seed=2).sketch(document)
        assert a.features != b.features

    def test_same_seed_same_features(self, document):
        a = SketchExtractor(seed=3).sketch(document)
        b = SketchExtractor(seed=3).sketch(document)
        assert a.features == b.features
