"""Block compressor wrappers and factory."""

import pytest

from repro.compression.block import (
    BlockCompressor,
    NullCompressor,
    ZlibCompressor,
    make_block_compressor,
)
from repro.compression.snappy import SnappyCompressor


class TestNull:
    def test_identity(self):
        compressor = NullCompressor()
        assert compressor.compress(b"data") == b"data"
        assert compressor.decompress(b"data") == b"data"


class TestZlib:
    def test_roundtrip(self, document):
        compressor = ZlibCompressor()
        assert compressor.decompress(compressor.compress(document)) == document

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            ZlibCompressor(level=42)

    def test_compresses_text(self, document):
        assert len(ZlibCompressor().compress(document)) < len(document)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("none", NullCompressor), ("snappy", SnappyCompressor), ("zlib", ZlibCompressor)],
    )
    def test_known(self, name, cls):
        compressor = make_block_compressor(name)
        assert isinstance(compressor, cls)
        assert isinstance(compressor, BlockCompressor)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_block_compressor("lz4")
