"""Snappy block compressor: format edge cases and round trips."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.snappy import (
    SnappyCompressor,
    snappy_compress,
    snappy_decompress,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "blob",
        [
            b"",
            b"a",
            b"abc",
            b"aaaa",
            b"a" * 1000,  # RLE-style overlapping copies
            b"ab" * 5000,
            bytes(range(256)),
            b"x" * 59 + b"y",  # literal length boundary
            b"x" * 61,  # literal length > 60 (extension byte)
            b"q" * 70000,  # literal length needing 3-byte extension
        ],
    )
    def test_known_shapes(self, blob):
        assert snappy_decompress(snappy_compress(blob)) == blob

    def test_text(self, document):
        compressed = snappy_compress(document)
        assert snappy_decompress(compressed) == document
        assert len(compressed) < len(document)

    def test_random_incompressible(self, rng):
        blob = bytes(rng.randrange(256) for _ in range(20_000))
        compressed = snappy_compress(blob)
        assert snappy_decompress(compressed) == blob
        # At most tiny expansion on incompressible data.
        assert len(compressed) < len(blob) * 1.01 + 16

    def test_long_range_match_beyond_2048(self):
        # Forces the 2-byte-offset copy form.
        unique = bytes(random.Random(1).randrange(256) for _ in range(5000))
        blob = unique + b"." * 10 + unique
        assert snappy_decompress(snappy_compress(blob)) == blob

    def test_match_beyond_64k_offset(self):
        # Forces the 4-byte-offset copy form.
        rng = random.Random(2)
        unique = bytes(rng.randrange(256) for _ in range(1000))
        filler = bytes(rng.randrange(256) for _ in range(70_000))
        blob = unique + filler + unique
        assert snappy_decompress(snappy_compress(blob)) == blob

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=4096))
    def test_property_roundtrip(self, blob):
        assert snappy_decompress(snappy_compress(blob)) == blob

    @settings(max_examples=20, deadline=None)
    @given(st.text(max_size=3000))
    def test_property_text_roundtrip(self, text):
        blob = text.encode()
        assert snappy_decompress(snappy_compress(blob)) == blob


class TestCompressionQuality:
    def test_repetitive_data_compresses_hard(self):
        blob = b"the same sentence over and over. " * 300
        assert len(snappy_compress(blob)) < len(blob) * 0.1

    def test_realistic_text_band(self, text_gen):
        # Synthetic corpus text should land in Snappy's usual 1.4-3.5x band.
        blob = text_gen.document(30_000).encode()
        ratio = len(blob) / len(snappy_compress(blob))
        assert 1.2 < ratio < 4.0


class TestMalformedInput:
    def test_truncated_preamble(self):
        with pytest.raises(ValueError):
            snappy_decompress(b"")

    def test_length_mismatch(self):
        good = snappy_compress(b"hello world")
        bad = bytes([good[0] + 1]) + good[1:]
        with pytest.raises(ValueError):
            snappy_decompress(bad)

    def test_copy_before_start_rejected(self):
        # preamble len=4, then a copy-1 with offset beyond output.
        payload = bytes([4, 0x01 | (0 << 2), 0x10])
        with pytest.raises(ValueError):
            snappy_decompress(payload)

    def test_truncated_literal(self):
        payload = bytes([10, (9 << 2)]) + b"abc"
        with pytest.raises(ValueError):
            snappy_decompress(payload)


class TestCompressorInterface:
    def test_name(self):
        assert SnappyCompressor().name == "snappy"

    def test_object_roundtrip(self, document):
        compressor = SnappyCompressor()
        assert compressor.decompress(compressor.compress(document)) == document
