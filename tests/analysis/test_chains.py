"""Chain profiling of live databases."""

import pytest

from repro.analysis.chains import profile_chains
from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.database import Database
from repro.workloads.wikipedia import WikipediaWorkload


class TestProfileChains:
    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            profile_chains(Database())

    def test_all_raw_database(self):
        db = Database()
        db.insert("d", "a", b"one")
        db.insert("d", "b", b"two")
        profile = profile_chains(db)
        assert profile.raw_records == 2
        assert profile.delta_records == 0
        assert profile.worst_decode_cost == 0
        assert profile.raw_fraction == 1.0

    def test_encoded_cluster_profile(self):
        cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
        workload = WikipediaWorkload(seed=15, target_bytes=200_000)
        cluster.run(workload.insert_trace())
        profile = profile_chains(cluster.primary.db)
        assert profile.delta_records > profile.raw_records
        assert profile.worst_decode_cost >= profile.p90_decode_cost
        assert profile.chains == profile.raw_records
        assert profile.raw_fraction < 0.3
        assert "decode mean" in profile.render()

    def test_hop_bounds_decode_vs_backward(self):
        from itertools import islice

        def run(encoding):
            cluster = Cluster(
                ClusterConfig(
                    dedup=DedupConfig(
                        chunk_size=64, encoding=encoding, hop_distance=4
                    )
                )
            )
            workload = WikipediaWorkload(
                seed=15, target_bytes=10**9, num_articles=1,
                median_article_bytes=3000,
            )
            cluster.run(islice(workload.insert_trace(), 40))
            return profile_chains(cluster.primary.db)

        backward = run("backward")
        hop = run("hop")
        assert hop.worst_decode_cost < backward.worst_decode_cost
        assert hop.mean_decode_cost < backward.mean_decode_cost
