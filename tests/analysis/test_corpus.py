"""Corpus profiling."""

import pytest

from repro.analysis.corpus import profile_corpus
from repro.workloads import make_workload
from repro.workloads.oltp import OltpWorkload


class TestProfileCorpus:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            profile_corpus([])

    def test_basic_statistics(self):
        profile = profile_corpus([b"a" * 100, b"b" * 300])
        assert profile.records == 2
        assert profile.total_bytes == 400
        assert profile.mean_record_bytes == 200
        assert profile.max_record_bytes == 300

    def test_identical_records_are_cross_duplicates(self, document):
        profile = profile_corpus([document, document])
        assert profile.cross_record_duplication > 0.45

    def test_repetitive_record_is_intra_duplicate(self):
        profile = profile_corpus([b"Z" * 50_000])
        assert profile.intra_record_duplication > 0.8
        assert profile.cross_record_duplication == 0.0

    def test_wikipedia_has_high_cross_duplication(self):
        workload = make_workload("wikipedia", seed=5, target_bytes=200_000)
        contents = [op.content for op in workload.insert_trace()]
        profile = profile_corpus(contents)
        assert profile.cross_record_duplication > 0.4

    def test_oltp_has_low_cross_duplication(self):
        workload = OltpWorkload(seed=5, target_bytes=100_000)
        contents = [op.content for op in workload.insert_trace()]
        profile = profile_corpus(contents)
        assert profile.cross_record_duplication < 0.35

    def test_render_mentions_key_fields(self, document):
        text = profile_corpus([document]).render()
        assert "records=1" in text
        assert "cross-dup" in text
