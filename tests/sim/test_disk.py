"""Simulated FIFO disk and its queue-length idleness signal."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.disk import SimDisk


@pytest.fixture()
def clock() -> SimClock:
    return SimClock()


@pytest.fixture()
def disk(clock) -> SimDisk:
    return SimDisk(clock, CostModel())


class TestService:
    def test_single_request_latency_is_service_time(self, disk):
        latency = disk.read(1024)
        assert latency == pytest.approx(CostModel().disk_time(1024))

    def test_requests_queue_fifo(self, disk):
        first = disk.read(1024)
        second = disk.read(1024)
        assert second == pytest.approx(2 * first)

    def test_queue_drains_with_time(self, clock, disk):
        disk.write(1024)
        disk.write(1024)
        assert disk.queue_length() == 2
        clock.advance(1.0)
        assert disk.queue_length() == 0
        assert disk.is_idle()

    def test_idleness_threshold(self, clock, disk):
        disk.write(1024)
        assert not disk.is_idle(0)
        assert disk.is_idle(1)

    def test_counters(self, disk):
        disk.read(100)
        disk.write(200)
        disk.write(300)
        assert disk.reads == 1
        assert disk.writes == 2
        assert disk.bytes_read == 100
        assert disk.bytes_written == 500

    def test_invalid_kind(self, disk):
        with pytest.raises(ValueError):
            disk.submit("erase", 10)

    def test_negative_size(self, disk):
        with pytest.raises(ValueError):
            disk.read(-1)

    def test_larger_requests_take_longer(self, disk):
        small = CostModel().disk_time(1024)
        large = CostModel().disk_time(10 * 1024 * 1024)
        assert large > small

    def test_background_pressure_delays_foreground(self, clock, disk):
        # A burst of background writes makes the next foreground read wait —
        # exactly the Fig. 13b mechanism.
        baseline = disk.read(1024)
        clock.advance(10.0)
        for _ in range(10):
            disk.submit("write", 64 * 1024)
        delayed = disk.read(1024)
        assert delayed > baseline * 5
