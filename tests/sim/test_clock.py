"""Simulated clock semantics."""

import pytest

from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_forward_only(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance_to(5.0)  # no-op, never backwards
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0
