"""Cost model sanity."""

import pytest

from repro.sim.costs import CostModel


class TestCostModel:
    def test_disk_time_has_fixed_and_variable_parts(self):
        costs = CostModel()
        empty = costs.disk_time(0)
        assert empty == pytest.approx(costs.disk_seek_s)
        megabyte = costs.disk_time(1 << 20)
        assert megabyte > empty

    def test_network_time_includes_rtt(self):
        costs = CostModel()
        assert costs.network_time(0) == pytest.approx(costs.network_rtt_s)

    def test_rates_ordered_sensibly(self):
        costs = CostModel()
        # Re-encode is the cheapest CPU op ("memory speed"); delta
        # compression the most expensive of the per-byte CPU rates.
        assert costs.cpu_reencode_byte_s < costs.cpu_decode_byte_s
        assert costs.cpu_delta_byte_s > costs.cpu_chunk_byte_s
        # A record-sized disk request (seek-dominated) dwarfs the CPU cost
        # of delta-compressing the same bytes — the premise behind caching
        # source records instead of recomputing less.
        assert costs.disk_time(4096) > 4096 * costs.cpu_delta_byte_s * 10

    def test_frozen(self):
        costs = CostModel()
        with pytest.raises(AttributeError):
            costs.disk_seek_s = 0.0

    def test_custom_calibration(self):
        ssd = CostModel(disk_seek_s=0.0001)
        assert ssd.disk_time(0) == pytest.approx(0.0001)
