"""Simulated network link accounting."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.network import SimNetwork


class TestNetwork:
    def test_transfer_accounts_bytes(self):
        network = SimNetwork(SimClock())
        network.transfer(1000)
        network.transfer(500)
        assert network.bytes_sent == 1500
        assert network.messages == 2

    def test_transfer_time_includes_rtt(self):
        costs = CostModel()
        network = SimNetwork(SimClock(), costs)
        assert network.transfer(0) == pytest.approx(costs.network_rtt_s)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimNetwork(SimClock()).transfer(-5)

    def test_time_proportional_to_size(self):
        network = SimNetwork(SimClock())
        small = network.transfer(1024)
        large = network.transfer(1024 * 1024)
        assert large > small
