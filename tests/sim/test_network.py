"""Simulated network link accounting."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.network import SimNetwork


class TestNetwork:
    def test_transfer_accounts_bytes(self):
        network = SimNetwork(SimClock())
        network.transfer(1000)
        network.transfer(500)
        assert network.bytes_sent == 1500
        assert network.messages == 2

    def test_transfer_time_includes_rtt(self):
        costs = CostModel()
        network = SimNetwork(SimClock(), costs)
        assert network.transfer(0) == pytest.approx(costs.network_rtt_s)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimNetwork(SimClock()).transfer(-5)

    def test_time_proportional_to_size(self):
        network = SimNetwork(SimClock())
        small = network.transfer(1024)
        large = network.transfer(1024 * 1024)
        assert large > small


class TestDeliveryAccounting:
    """Attempted vs delivered bytes must diverge when messages drop.

    Regression: Fig. 11's network numbers read ``bytes_delivered``; a
    dropped-and-resent batch must not inflate them with the failed
    attempt's bytes.
    """

    def test_clean_transfers_count_both(self):
        network = SimNetwork(SimClock())
        network.transfer(1000)
        assert network.bytes_sent == network.bytes_delivered == 1000
        assert network.messages == network.messages_delivered == 1
        assert network.messages_dropped == 0

    def test_dropped_transfer_counts_sent_not_delivered(self):
        from repro.sim.faults import DeliveryFault

        network = SimNetwork(SimClock())

        def drop_first(message_index, nbytes):
            if message_index == 1:
                raise DeliveryFault("dropped")

        network.interceptor = drop_first
        with pytest.raises(DeliveryFault):
            network.transfer(700)
        network.transfer(700)  # the resend
        assert network.bytes_sent == 1400      # sender paid twice
        assert network.bytes_delivered == 700  # receiver saw it once
        assert network.messages == 2
        assert network.messages_delivered == 1
        assert network.messages_dropped == 1

    def test_replication_resends_do_not_inflate_delivered_bytes(self):
        """End to end: a dropping link re-ships batches; the cluster's
        Fig. 11 accounting only counts the copies that landed."""
        from repro.db.cluster import Cluster, ClusterConfig
        from repro.db.invariants import check_cluster
        from repro.sim.faults import DropBatches, FaultPlan
        from repro.workloads.base import Operation

        def run(rules):
            cluster = Cluster(ClusterConfig(oplog_batch_bytes=2048))
            plan = FaultPlan(seed=3, rules=rules)
            plan.install(cluster)
            content = bytes(range(256)) * 4
            result = cluster.run(
                Operation("insert", "db", f"r{index}",
                          content + index.to_bytes(2, "little"))
                for index in range(60)
            )
            assert check_cluster(cluster).ok
            return cluster, result

        clean_cluster, clean = run([])
        # Drop the first five attempts: the first sync exhausts its
        # retries (failed sync), the next sync resends the whole batch.
        faulty_cluster, faulty = run([DropBatches(every=1, limit=5)])
        assert faulty_cluster.link.failed_syncs > 0
        assert faulty_cluster.link.resends > 0
        # Attempts include every dropped shipment; deliveries do not.
        assert (
            faulty_cluster.network.bytes_sent
            > faulty_cluster.network.bytes_delivered
        )
        assert faulty.network_bytes == faulty_cluster.network.bytes_delivered
        # Identical payload stream ⇒ identical delivered-byte accounting.
        assert faulty.network_bytes == clean.network_bytes
