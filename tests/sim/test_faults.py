"""Unit tests for the seeded fault-injection plan."""

from types import SimpleNamespace

import pytest

from repro.db.cluster import Cluster, ClusterConfig
from repro.sim.faults import (
    MAX_EVENTS,
    CorruptPageReads,
    CrashNode,
    DeliveryFault,
    DropBatches,
    FaultPlan,
    TransientIOError,
    TransientIOErrors,
)


class TestRuleValidation:
    def test_drop_batches_needs_a_trigger(self):
        with pytest.raises(ValueError):
            DropBatches()

    def test_drop_batches_every_must_be_positive(self):
        with pytest.raises(ValueError):
            DropBatches(every=0)

    def test_crash_node_rejects_unknown_node(self):
        with pytest.raises(ValueError):
            CrashNode(node="tertiary")

    def test_crash_node_accepts_indexed_replica_addresses(self):
        assert CrashNode(node="secondary:0").node == "secondary:0"
        assert CrashNode(node="secondary:12").node == "secondary:12"

    def test_crash_node_rejects_malformed_replica_addresses(self):
        for bad in ("secondary:", "secondary:x", "secondary:-1", "primary:0"):
            with pytest.raises(ValueError):
                CrashNode(node=bad)

    def test_crash_node_rejects_nonpositive_trigger(self):
        with pytest.raises(ValueError):
            CrashNode(after_appends=0)

    def test_rules_are_frozen(self):
        rule = DropBatches(every=2)
        with pytest.raises(AttributeError):
            rule.every = 3


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def decisions(seed):
            plan = FaultPlan(seed=seed, rules=[DropBatches(probability=0.5)])
            out = []
            for index in range(1, 200):
                try:
                    plan.on_transfer(index, 100)
                    out.append(False)
                except DeliveryFault:
                    out.append(True)
            return out, plan.events

        first = decisions(31)
        second = decisions(31)
        assert first == second
        assert decisions(32) != first

    def test_repr_round_trips_every_rule_type(self):
        plan = FaultPlan(
            seed=12,
            rules=[
                DropBatches(every=3, limit=2),
                TransientIOErrors(probability=0.1, kinds=("read",), node="primary"),
                CorruptPageReads(probability=0.2, sticky=True),
                CrashNode(node="secondary", after_appends=9, restart=False),
                CrashNode(node="secondary:1", after_appends=17, restart=False),
            ],
        )
        rebuilt = eval(  # noqa: S307 - round-tripping our own repr
            repr(plan),
            {
                "FaultPlan": FaultPlan,
                "DropBatches": DropBatches,
                "TransientIOErrors": TransientIOErrors,
                "CorruptPageReads": CorruptPageReads,
                "CrashNode": CrashNode,
            },
        )
        assert rebuilt.seed == plan.seed
        assert rebuilt.rules == plan.rules


class TestDropArithmetic:
    def test_every_nth_drops_exact_messages(self):
        plan = FaultPlan(seed=0, rules=[DropBatches(every=3)])
        dropped = []
        for index in range(1, 13):
            try:
                plan.on_transfer(index, 10)
            except DeliveryFault:
                dropped.append(index)
        assert dropped == [3, 6, 9, 12]

    def test_limit_caps_injections(self):
        plan = FaultPlan(seed=0, rules=[DropBatches(every=1, limit=2)])
        dropped = 0
        for index in range(1, 20):
            try:
                plan.on_transfer(index, 10)
            except DeliveryFault:
                dropped += 1
        assert dropped == 2
        assert plan.injected == 2


class TestSuspendResume:
    def test_suspend_stops_injection_and_reports_prior_state(self):
        plan = FaultPlan(seed=0, rules=[DropBatches(every=1)])
        assert plan.suspend() is True
        assert plan.suspend() is False  # already suspended
        plan.on_transfer(1, 10)  # no raise while suspended
        assert plan.injected == 0
        plan.resume()
        with pytest.raises(DeliveryFault):
            plan.on_transfer(2, 10)


class TestEventLogCap:
    def test_events_bounded_but_injected_keeps_counting(self):
        plan = FaultPlan(seed=0, rules=[DropBatches(every=1)])
        for index in range(1, MAX_EVENTS + 100):
            with pytest.raises(DeliveryFault):
                plan.on_transfer(index, 1)
        assert plan.injected == MAX_EVENTS + 99
        assert len(plan.events) == MAX_EVENTS


class TestPageReadHook:
    def _fake(self, payload=b"x" * 64):
        db = SimpleNamespace(node_role="primary")
        record = SimpleNamespace(record_id="r0", payload=payload)
        return db, record

    def test_transient_corruption_leaves_storage_intact(self):
        plan = FaultPlan(
            seed=1, rules=[CorruptPageReads(probability=1.0, sticky=False)]
        )
        db, record = self._fake()
        stored = record.payload
        returned = plan.on_page_read(db, record, stored)
        assert returned != stored
        assert record.payload == stored  # storage untouched

    def test_sticky_corruption_rewrites_storage(self):
        plan = FaultPlan(
            seed=1, rules=[CorruptPageReads(probability=1.0, sticky=True)]
        )
        db, record = self._fake()
        original = record.payload
        returned = plan.on_page_read(db, record, original)
        assert returned != original
        assert record.payload == returned  # flip persisted

    def test_node_filter_skips_other_roles(self):
        plan = FaultPlan(
            seed=1,
            rules=[CorruptPageReads(probability=1.0, node="secondary")],
        )
        db, record = self._fake()
        assert plan.on_page_read(db, record, record.payload) == record.payload
        assert plan.injected == 0

    def test_empty_payload_passes_through(self):
        plan = FaultPlan(seed=1, rules=[CorruptPageReads(probability=1.0)])
        db, record = self._fake(payload=b"")
        assert plan.on_page_read(db, record, b"") == b""


class TestDiskHook:
    def test_kind_and_limit_filters(self):
        plan = FaultPlan(
            seed=2,
            rules=[
                TransientIOErrors(probability=1.0, kinds=("write",), limit=2)
            ],
        )
        db = SimpleNamespace(node_role="primary")
        interceptor = plan._disk_interceptor(db)
        interceptor("read", 100)  # wrong kind: no raise
        with pytest.raises(TransientIOError):
            interceptor("write", 100)
        with pytest.raises(TransientIOError):
            interceptor("write", 100)
        interceptor("write", 100)  # budget spent
        assert plan.injected == 2


class TestInstallUninstall:
    def test_install_wires_and_uninstall_unwires(self):
        cluster = Cluster(ClusterConfig())
        plan = FaultPlan(seed=3, rules=[DropBatches(every=2)])
        plan.install(cluster)
        assert cluster.fault_plan is plan
        assert cluster.network.interceptor == plan.on_transfer
        for node in (cluster.primary, cluster.secondary):
            assert node.db.fault_injector is plan
            assert node.db.disk.interceptor is not None
        plan.uninstall(cluster)
        assert cluster.fault_plan is None
        assert cluster.network.interceptor is None
        for node in (cluster.primary, cluster.secondary):
            assert node.db.fault_injector is None
            assert node.db.disk.interceptor is None

    def test_uninstall_is_a_noop_for_foreign_plans(self):
        cluster = Cluster(ClusterConfig())
        installed = FaultPlan(seed=4, rules=[DropBatches(every=2)])
        other = FaultPlan(seed=5, rules=[DropBatches(every=3)])
        installed.install(cluster)
        other.uninstall(cluster)
        assert cluster.fault_plan is installed
        assert cluster.network.interceptor == installed.on_transfer


class TestCrashHook:
    def test_crash_fires_once_at_threshold(self):
        from repro.workloads.base import Operation

        cluster = Cluster(ClusterConfig())
        plan = FaultPlan(
            seed=6, rules=[CrashNode(node="primary", after_appends=3)]
        )
        plan.install(cluster)
        for index in range(8):
            cluster.execute(
                Operation("insert", "db", f"r{index}", b"payload %d" % index)
            )
        assert cluster.primary.crashes == 1
        assert any(event.startswith("crash") for event in plan.events)

    def test_indexed_address_crashes_that_replica_only(self):
        from repro.workloads.base import Operation

        cluster = Cluster(
            config=ClusterConfig(num_secondaries=3, oplog_batch_bytes=1)
        )
        plan = FaultPlan(
            seed=6, rules=[CrashNode(node="secondary:1", after_appends=2)]
        )
        plan.install(cluster)
        for index in range(6):
            cluster.execute(
                Operation("insert", "db", f"r{index}", b"payload %d" % index)
            )
        assert [node.crashes for node in cluster.secondaries] == [0, 1, 0]

    def test_out_of_range_address_stays_pending(self):
        from repro.workloads.base import Operation

        cluster = Cluster(config=ClusterConfig(oplog_batch_bytes=1))
        plan = FaultPlan(
            seed=6, rules=[CrashNode(node="secondary:5", after_appends=1)]
        )
        plan.install(cluster)
        cluster.execute(Operation("insert", "db", "r0", b"payload"))
        assert cluster.secondaries[0].crashes == 0
        assert not plan.events
