"""OLTP negative-control workload."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads.oltp import OltpWorkload


class TestGenerator:
    def test_meets_target(self):
        workload = OltpWorkload(seed=3, target_bytes=100_000)
        total = sum(len(op.content) for op in workload.insert_trace())
        assert total >= 100_000

    def test_records_are_small(self):
        workload = OltpWorkload(seed=3, target_bytes=50_000)
        sizes = [len(op.content) for op in workload.insert_trace()]
        assert max(sizes) < 1024

    def test_deterministic(self):
        a = [op.content for op in OltpWorkload(seed=3, target_bytes=50_000).insert_trace()]
        b = [op.content for op in OltpWorkload(seed=3, target_bytes=50_000).insert_trace()]
        assert a == b

    def test_invalid_update_fraction(self):
        with pytest.raises(ValueError):
            OltpWorkload(update_fraction=1.0)

    def test_mixed_trace_well_formed(self):
        workload = OltpWorkload(seed=3, target_bytes=60_000)
        live = set()
        kinds = set()
        for op in workload.mixed_trace():
            kinds.add(op.kind)
            if op.kind == "insert":
                live.add(op.record_id)
            else:
                assert op.record_id in live
        assert kinds == {"insert", "read", "update"}


class TestNegativeControl:
    def test_dedup_finds_little(self):
        config = ClusterConfig(
            dedup=DedupConfig(chunk_size=64, governor_window=10**9)
        )
        cluster = Cluster(config)
        workload = OltpWorkload(seed=3, target_bytes=120_000)
        result = cluster.run(workload.insert_trace())
        assert result.storage_compression_ratio < 1.3

    def test_governor_disables_oltp_database(self):
        config = ClusterConfig(
            dedup=DedupConfig(chunk_size=64, governor_window=150)
        )
        cluster = Cluster(config)
        workload = OltpWorkload(seed=3, target_bytes=120_000)
        cluster.run(workload.insert_trace())
        engine = cluster.primary.engine
        assert not engine.governor.is_enabled("oltp")
        assert engine.stats.records_bypassed > 0
        # The index partition was dropped with it.
        assert engine.index_memory_bytes == 0

    def test_mixed_trace_replicates(self):
        config = ClusterConfig(dedup=DedupConfig(chunk_size=64))
        cluster = Cluster(config)
        workload = OltpWorkload(seed=4, target_bytes=80_000)
        cluster.run(workload.mixed_trace())
        assert cluster.replicas_converged()
