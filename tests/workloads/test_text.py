"""Synthetic text generator: determinism and entropy band."""

from repro.compression.snappy import snappy_compress
from repro.workloads.text import TextGenerator


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = TextGenerator(seed=5).document(2000)
        b = TextGenerator(seed=5).document(2000)
        assert a == b

    def test_different_seed_different_output(self):
        assert TextGenerator(seed=5).document(500) != TextGenerator(seed=6).document(500)


class TestStructure:
    def test_document_length_near_target(self):
        doc = TextGenerator(seed=1).document(5000)
        assert 5000 <= len(doc) < 8000

    def test_sentence_ends_with_punctuation(self):
        sentence = TextGenerator(seed=2).sentence()
        assert sentence[-1] in ".!?"
        assert sentence[0].isupper()

    def test_paragraphs_separated(self):
        doc = TextGenerator(seed=3).document(3000)
        assert "\n\n" in doc

    def test_identifier_unique_looking(self):
        gen = TextGenerator(seed=4)
        assert gen.identifier("u") != gen.identifier("u")

    def test_lognormal_size_clamped(self):
        gen = TextGenerator(seed=5)
        for _ in range(200):
            size = gen.lognormal_size(1000, minimum=100, maximum=5000)
            assert 100 <= size <= 5000


class TestEntropy:
    def test_block_compression_band(self):
        # The whole point of the generator: Snappy-class ratio like real
        # text (paper band 1.6-2.3x; we accept a slightly wider envelope).
        blob = TextGenerator(seed=7).document(40_000).encode()
        ratio = len(blob) / len(snappy_compress(blob))
        assert 1.3 < ratio < 3.0
