"""Edit and quote models."""

import random

from repro.workloads.edits import quote, revise
from repro.workloads.text import TextGenerator


class TestRevise:
    def test_revision_differs_but_overlaps(self, text_gen):
        rng = random.Random(1)
        base = text_gen.document(4000)
        revised = revise(rng, text_gen, base, num_edits=3)
        assert revised != base
        # Most of the document survives: long common substring exists.
        probe = base[1000:1200]
        assert probe in revised or base[2000:2200] in revised

    def test_single_edit_changes_little(self, text_gen):
        rng = random.Random(2)
        base = text_gen.document(4000)
        revised = revise(rng, text_gen, base, num_edits=1)
        assert abs(len(revised) - len(base)) < 600

    def test_deterministic_given_rng_state(self, text_gen):
        base = TextGenerator(seed=10).document(2000)
        a = revise(random.Random(3), TextGenerator(seed=11), base, num_edits=2)
        b = revise(random.Random(3), TextGenerator(seed=11), base, num_edits=2)
        assert a == b

    def test_short_body_still_works(self, text_gen):
        rng = random.Random(4)
        revised = revise(rng, text_gen, "tiny", num_edits=2)
        assert len(revised) > 4


class TestQuote:
    def test_prefixes_every_line(self):
        assert quote("line one\nline two") == "> line one\n> line two"

    def test_nested_quote_deepens(self):
        once = quote("msg")
        twice = quote(once)
        assert twice == "> > msg"

    def test_depth_limit_drops_old_layers(self):
        body = "core"
        for _ in range(10):
            body = quote(body, depth_limit=3)
            for line in body.splitlines():
                depth = 0
                probe = line
                while probe.startswith("> "):
                    probe = probe[2:]
                    depth += 1
                assert depth <= 3
        # Everything beyond the limit was eventually truncated away.
        assert body == ""

    def test_empty_body(self):
        assert quote("") == ""
