"""Trace persistence round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.base import Operation
from repro.workloads.trace_io import (
    dump_trace,
    load_trace,
    load_trace_file,
    save_trace,
)
from repro.workloads.wikipedia import WikipediaWorkload


class TestRoundTrip:
    def test_workload_trace_roundtrip(self):
        workload = WikipediaWorkload(seed=66, target_bytes=60_000)
        ops = list(workload.insert_trace())
        restored = list(load_trace(dump_trace(ops)))
        assert restored == ops

    def test_mixed_op_kinds(self):
        ops = [
            Operation("insert", "db", "r1", b"payload"),
            Operation("read", "db", "r1"),
            Operation("update", "db", "r1", b"new"),
            Operation("idle", idle_seconds=2.5),
            Operation("delete", "db", "r1"),
        ]
        restored = list(load_trace(dump_trace(ops)))
        assert restored == ops

    def test_file_roundtrip(self, tmp_path):
        ops = [Operation("insert", "db", "r", b"x" * 100)]
        path = tmp_path / "ops.trace"
        size = save_trace(ops, path)
        assert path.stat().st_size == size
        assert list(load_trace_file(path)) == ops

    def test_replaying_trace_reproduces_run(self, tmp_path):
        from repro.core.config import DedupConfig
        from repro.db.cluster import Cluster, ClusterConfig

        workload = WikipediaWorkload(seed=67, target_bytes=80_000)
        path = tmp_path / "wiki.trace"
        save_trace(workload.insert_trace(), path)

        def run(trace):
            cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
            return cluster.run(trace)

        live = run(WikipediaWorkload(seed=67, target_bytes=80_000).insert_trace())
        replayed = run(load_trace_file(path))
        assert replayed.stored_bytes == live.stored_bytes
        assert replayed.network_bytes == live.network_bytes


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            list(load_trace(b"NOPE\x01"))

    def test_bad_version(self):
        with pytest.raises(ValueError):
            list(load_trace(b"DBTR\x07"))

    def test_unknown_kind_rejected_on_dump(self):
        with pytest.raises(ValueError):
            dump_trace([Operation("merge", "db", "r")])

    def test_truncated_payload(self):
        blob = dump_trace([Operation("insert", "db", "r", b"0123456789")])
        with pytest.raises(ValueError):
            list(load_trace(blob[:-4]))


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.text(max_size=8), st.binary(max_size=40)),
            st.tuples(st.just("read"), st.text(max_size=8), st.none()),
            st.tuples(st.just("delete"), st.text(max_size=8), st.none()),
        ),
        max_size=25,
    )
)
def test_property_roundtrip(raw_ops):
    ops = [
        Operation(kind, "db", record_id, content)
        for kind, record_id, content in raw_ops
    ]
    assert list(load_trace(dump_trace(ops))) == ops
