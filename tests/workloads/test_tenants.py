"""Open-loop multi-tenant harness: arrivals, composition, the driver."""

import itertools

import pytest

from repro.api import ClusterSpec, open_cluster
from repro.core.config import DedupConfig
from repro.workloads.tenants import (
    ArrivalProcess,
    OpenLoopDriver,
    TenantSpec,
    compose_tenants,
    derive_seed,
    parse_tenants,
    tenant_operations,
)


def _take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestParseTenants:
    def test_workload_and_rate(self):
        specs = parse_tenants("wikipedia,oltp:120")
        assert [spec.name for spec in specs] == ["wikipedia", "oltp"]
        assert specs[1].rate_ops_s == 120.0

    def test_duplicate_workloads_get_suffixes(self):
        specs = parse_tenants("oltp,oltp")
        assert [spec.name for spec in specs] == ["oltp", "oltp2"]

    def test_target_bytes_override(self):
        specs = parse_tenants("oltp", target_bytes=50_000)
        assert specs[0].target_bytes == 50_000

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_tenants(" , ")


class TestDeriveSeed:
    def test_deterministic_and_name_sensitive(self):
        assert derive_seed(7, "arrivals/a") == derive_seed(7, "arrivals/a")
        assert derive_seed(7, "arrivals/a") != derive_seed(7, "arrivals/b")
        assert derive_seed(7, "arrivals/a") != derive_seed(8, "arrivals/a")


class TestArrivalProcess:
    SPEC = TenantSpec(name="t", workload="oltp", rate_ops_s=100.0)

    def test_deterministic(self):
        first = _take(ArrivalProcess(self.SPEC, 7).times(), 200)
        second = _take(ArrivalProcess(self.SPEC, 7).times(), 200)
        assert first == second

    def test_strictly_increasing(self):
        times = _take(ArrivalProcess(self.SPEC, 7).times(), 500)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_rate_scale_compresses_time(self):
        base = _take(ArrivalProcess(self.SPEC, 7).times(), 300)
        fast = _take(ArrivalProcess(self.SPEC, 7, rate_scale=2.0).times(), 300)
        assert fast[-1] < base[-1]

    def test_mean_rate_near_nominal(self):
        times = _take(ArrivalProcess(self.SPEC, 7).times(), 2000)
        mean_rate = len(times) / times[-1]
        # Diurnal modulation averages out; bursts push the mean up a bit.
        assert 0.7 * 100.0 < mean_rate < 2.0 * 100.0


class TestTenantOperations:
    def test_ops_rewritten_to_tenant_namespace(self):
        spec = TenantSpec(name="acme", workload="oltp", target_bytes=20_000)
        ops = _take(tenant_operations(spec, 7), 50)
        assert ops
        for op in ops:
            assert op.kind != "idle"
            assert op.database == "acme"
            assert op.record_id.startswith("acme/")


class TestComposeTenants:
    SPECS = [
        TenantSpec(name="a", workload="oltp", rate_ops_s=80.0,
                   target_bytes=20_000),
        TenantSpec(name="b", workload="oltp", rate_ops_s=40.0,
                   target_bytes=20_000),
    ]

    def test_sorted_by_arrival_time(self):
        schedule = compose_tenants(self.SPECS, 7)
        times = [item.at_s for item in schedule]
        assert times == sorted(times)
        assert {item.tenant for item in schedule} == {"a", "b"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            compose_tenants([self.SPECS[0], self.SPECS[0]], 7)

    def test_deterministic(self):
        first = compose_tenants(self.SPECS, 7)
        second = compose_tenants(self.SPECS, 7)
        assert [item.sort_key for item in first] == [
            item.sort_key for item in second
        ]


def _run_driver(cpu_scale):
    specs = [
        TenantSpec(name="wikipedia", workload="wikipedia",
                   rate_ops_s=150.0, target_bytes=30_000),
    ]
    schedule = compose_tenants(specs, 7)
    client = open_cluster(
        ClusterSpec(dedup=DedupConfig(chunk_size=64))
    )
    driver = OpenLoopDriver(client.cluster, cpu_scale=cpu_scale)
    count = driver.run(schedule)
    assert count == len(schedule)
    return driver


class TestOpenLoopDriver:
    def test_sojourn_at_least_service(self):
        driver = _run_driver(cpu_scale=0.0)
        sojourn = driver.registry.get("op_sojourn_seconds")
        service = driver.registry.get("op_service_seconds")
        for key, child in sojourn._children.items():
            assert child.sum >= service._children[key].sum - 1e-9

    def test_arrivals_counted(self):
        driver = _run_driver(cpu_scale=0.0)
        assert driver.registry.total("openloop_arrivals_total") > 0

    def test_zero_scale_never_stalls(self):
        driver = _run_driver(cpu_scale=0.0)
        assert driver.registry.total(
            "openloop_cpu_stall_seconds_total"
        ) == 0.0

    def test_contention_scale_creates_stalls(self):
        contended = _run_driver(cpu_scale=50_000.0)
        stall = contended.registry.total("openloop_cpu_stall_seconds_total")
        assert stall > 0.0
        free = _run_driver(cpu_scale=0.0)
        assert contended.cluster.clock.now > free.cluster.clock.now

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            OpenLoopDriver(object(), cpu_scale=-1.0)

    def test_quantile_helper(self):
        driver = _run_driver(cpu_scale=0.0)
        p50 = driver.quantile("op_sojourn_seconds", "insert", "wikipedia", 0.5)
        assert p50 is not None and p50 > 0.0
        assert driver.quantile(
            "op_sojourn_seconds", "insert", "nobody", 0.5
        ) is None
