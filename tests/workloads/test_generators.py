"""The four dataset generators: structure, determinism, trace ratios."""

import pytest

from repro.workloads import ALL_WORKLOADS, make_workload
from repro.workloads.enron import EnronWorkload
from repro.workloads.messageboards import MessageBoardsWorkload
from repro.workloads.stackexchange import StackExchangeWorkload
from repro.workloads.wikipedia import WikipediaWorkload

TARGET = 150_000


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
class TestCommonContract:
    def test_insert_trace_meets_target(self, workload_cls):
        workload = workload_cls(seed=5, target_bytes=TARGET)
        total = sum(len(op.content) for op in workload.insert_trace())
        assert total >= TARGET

    def test_deterministic(self, workload_cls):
        a = [op.record_id for op in workload_cls(seed=5, target_bytes=TARGET).insert_trace()]
        b = [op.record_id for op in workload_cls(seed=5, target_bytes=TARGET).insert_trace()]
        assert a == b

    def test_seed_changes_content(self, workload_cls):
        a = next(iter(workload_cls(seed=5, target_bytes=TARGET).insert_trace()))
        b = next(iter(workload_cls(seed=6, target_bytes=TARGET).insert_trace()))
        assert a.content != b.content

    def test_record_ids_unique(self, workload_cls):
        ids = [op.record_id for op in workload_cls(seed=5, target_bytes=TARGET).insert_trace()]
        assert len(ids) == len(set(ids))

    def test_mixed_trace_contains_reads_of_inserted_records(self, workload_cls):
        workload = workload_cls(seed=5, target_bytes=TARGET)
        inserted = set()
        reads = 0
        for op in workload.mixed_trace():
            if op.kind == "insert":
                inserted.add(op.record_id)
            elif op.kind == "read":
                reads += 1
                assert op.record_id in inserted
        assert reads > 0

    def test_target_too_small_rejected(self, workload_cls):
        with pytest.raises(ValueError):
            workload_cls(seed=5, target_bytes=100)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("wikipedia", WikipediaWorkload),
            ("enron", EnronWorkload),
            ("stackexchange", StackExchangeWorkload),
            ("messageboards", MessageBoardsWorkload),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_workload(name, target_bytes=TARGET), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_workload("tpcc")


class TestWikipediaStructure:
    def test_revisions_sequential_per_article(self):
        workload = WikipediaWorkload(seed=5, target_bytes=TARGET)
        seen: dict[str, int] = {}
        for op in workload.insert_trace():
            _, article, revision = op.record_id.split("/")
            expected = seen.get(article, -1) + 1
            assert int(revision) == expected
            seen[article] = expected

    def test_consecutive_revisions_similar(self):
        workload = WikipediaWorkload(seed=5, target_bytes=TARGET, num_articles=1)
        ops = list(workload.insert_trace())
        previous, current = ops[-2].content, ops[-1].content
        # Consecutive revisions share a long common span.
        assert previous[500:700] in current or previous[1500:1700] in current

    def test_bursty_trace_has_idle_gaps(self):
        workload = WikipediaWorkload(seed=5, target_bytes=TARGET)
        kinds = [op.kind for op in workload.bursty_insert_trace(inserts_per_burst=5)]
        assert "idle" in kinds


class TestEnronStructure:
    def test_replies_quote_previous(self):
        workload = EnronWorkload(seed=5, target_bytes=TARGET)
        ops = list(workload.insert_trace())
        quoted = sum(
            1 for op in ops
            if b"\n> " in op.content or b"Forwarded message" in op.content
        )
        assert quoted > len(ops) * 0.3

    def test_mixed_trace_one_to_one(self):
        workload = EnronWorkload(seed=5, target_bytes=TARGET)
        kinds = [op.kind for op in workload.mixed_trace()]
        assert kinds.count("read") == kinds.count("insert")


class TestForumStructure:
    def test_stackexchange_read_heavy(self):
        workload = StackExchangeWorkload(seed=5, target_bytes=TARGET)
        kinds = [op.kind for op in workload.mixed_trace()]
        assert kinds.count("read") > kinds.count("insert") * 5

    def test_messageboards_posts_quote(self):
        workload = MessageBoardsWorkload(seed=5, target_bytes=TARGET)
        ops = list(workload.insert_trace())
        quoted = sum(1 for op in ops if b"\n> " in op.content or op.content.count(b"> ") > 2)
        assert quoted > len(ops) * 0.15

    def test_messageboards_thread_reads_walk_thread(self):
        workload = MessageBoardsWorkload(seed=5, target_bytes=TARGET)
        inserted = set()
        for op in workload.mixed_trace():
            if op.kind == "insert":
                inserted.add(op.record_id)
            else:
                assert op.record_id in inserted
