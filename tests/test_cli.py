"""CLI: argument handling and command output."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "wikipedia"
        assert args.encoding == "hop"
        assert not args.no_dedup


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("wikipedia", "enron", "stackexchange", "messageboards"):
            assert name in out

    def test_run_prints_summary(self, capsys):
        assert main([
            "run", "--workload", "enron", "--target-bytes", "120000",
        ]) == 0
        out = capsys.readouterr().out
        assert "replicas converged: True" in out
        assert "stored (dedup)" in out

    def test_run_baseline_mode(self, capsys):
        assert main([
            "run", "--workload", "enron", "--target-bytes", "120000",
            "--no-dedup", "--block-compression", "zlib",
        ]) == 0
        out = capsys.readouterr().out
        assert "(1.00x)" in out  # dedup ratio is 1.0 without the engine

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "version-jumping" in out
        assert "hop" in out

    def test_experiment_fig15(self, capsys):
        assert main(["experiment", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "xDelta" in out

    def test_trace_record_and_replay(self, capsys, tmp_path):
        path = str(tmp_path / "t.trace")
        assert main([
            "trace-record", path, "--workload", "enron",
            "--target-bytes", "60000",
        ]) == 0
        assert main(["trace-replay", path]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out

    def test_workloads_includes_extras(self, capsys):
        main(["workloads"])
        assert "oltp" in capsys.readouterr().out

    def test_run_check_invariants(self, capsys):
        assert main([
            "run", "--workload", "enron", "--target-bytes", "120000",
            "--check-invariants",
        ]) == 0
        out = capsys.readouterr().out
        assert "cluster invariants OK" in out

    def test_trace_replay_check_invariants(self, capsys, tmp_path):
        path = str(tmp_path / "t.trace")
        assert main([
            "trace-record", path, "--workload", "enron",
            "--target-bytes", "60000", "--trace", "mixed",
        ]) == 0
        assert main(["trace-replay", path, "--check-invariants"]) == 0
        out = capsys.readouterr().out
        assert "cluster invariants OK" in out

    def test_check_invariants_reports_violations(self, capsys, monkeypatch):
        from repro.db.cluster import Cluster

        original = Cluster.run

        def sabotage(self, trace):
            result = original(self, trace)
            # Lose a replicated record behind the checker's back.
            victim = next(iter(self.secondary.db.records))
            del self.secondary.db.records[victim]
            return result

        monkeypatch.setattr(Cluster, "run", sabotage)
        assert main([
            "run", "--workload", "enron", "--target-bytes", "60000",
            "--check-invariants",
        ]) == 1
        out = capsys.readouterr().out
        assert "cluster invariants FAILED" in out
        assert "convergence" in out
