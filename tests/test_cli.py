"""CLI: argument handling and command output."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "wikipedia"
        assert args.encoding == "hop"
        assert not args.no_dedup
        assert args.metrics_out is None
        assert args.trace_out is None
        assert args.sample_every is None

    @pytest.mark.parametrize("command", [
        ["run"],
        ["trace-replay", "some.trace"],
        ["experiment", "fig11"],
    ])
    def test_observability_flags_round_trip(self, command):
        args = build_parser().parse_args(command + [
            "--metrics-out", "m.json",
            "--trace-out", "t.json",
            "--sample-every", "10s",
        ])
        assert args.metrics_out == "m.json"
        assert args.trace_out == "t.json"
        assert args.sample_every == "10s"

    def test_check_metrics_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check-metrics"])
        args = build_parser().parse_args(["check-metrics", "m.json"])
        assert args.path == "m.json"


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("wikipedia", "enron", "stackexchange", "messageboards"):
            assert name in out

    def test_run_prints_summary(self, capsys):
        assert main([
            "run", "--workload", "enron", "--target-bytes", "120000",
        ]) == 0
        out = capsys.readouterr().out
        assert "replicas converged: True" in out
        assert "stored (dedup)" in out

    def test_run_baseline_mode(self, capsys):
        assert main([
            "run", "--workload", "enron", "--target-bytes", "120000",
            "--no-dedup", "--block-compression", "zlib",
        ]) == 0
        out = capsys.readouterr().out
        assert "(1.00x)" in out  # dedup ratio is 1.0 without the engine

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "version-jumping" in out
        assert "hop" in out

    def test_experiment_fig15(self, capsys):
        assert main(["experiment", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "xDelta" in out

    def test_trace_record_and_replay(self, capsys, tmp_path):
        path = str(tmp_path / "t.trace")
        assert main([
            "trace-record", path, "--workload", "enron",
            "--target-bytes", "60000",
        ]) == 0
        assert main(["trace-replay", path]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out

    def test_workloads_includes_extras(self, capsys):
        main(["workloads"])
        assert "oltp" in capsys.readouterr().out

    def test_run_check_invariants(self, capsys):
        assert main([
            "run", "--workload", "enron", "--target-bytes", "120000",
            "--check-invariants",
        ]) == 0
        out = capsys.readouterr().out
        assert "cluster invariants OK" in out

    def test_trace_replay_check_invariants(self, capsys, tmp_path):
        path = str(tmp_path / "t.trace")
        assert main([
            "trace-record", path, "--workload", "enron",
            "--target-bytes", "60000", "--trace", "mixed",
        ]) == 0
        assert main(["trace-replay", path, "--check-invariants"]) == 0
        out = capsys.readouterr().out
        assert "cluster invariants OK" in out

    def test_run_exports_observability_documents(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        assert main([
            "run", "--workload", "enron", "--target-bytes", "120000",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
            "--sample-every", "50ops",
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote metrics to" in out
        assert "source cache:" in out
        assert "write-back cache:" in out
        metrics = json.loads(metrics_path.read_text())
        assert metrics["schema"] == "repro.metrics/v1"
        assert metrics["series"]["samples"]
        trace = json.loads(trace_path.read_text())
        assert trace["schema"] == "repro.trace/v1"
        assert trace["roots"]

    def test_check_metrics_accepts_exported_run(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "run", "--workload", "enron", "--target-bytes", "60000",
            "--metrics-out", str(metrics_path),
        ]) == 0
        assert main(["check-metrics", str(metrics_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_metrics_rejects_bad_documents(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "bogus/v9"}')
        assert main(["check-metrics", str(bad)]) == 1
        assert "PROBLEM" in capsys.readouterr().out
        assert main(["check-metrics", str(tmp_path / "missing.json")]) == 1

    def test_experiment_exports_metrics_bundle(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "bundle.json"
        assert main([
            "experiment", "fig13b",
            "--metrics-out", str(metrics_path),
        ]) == 0
        bundle = json.loads(metrics_path.read_text())
        assert bundle["schema"] == "repro.metrics-set/v1"
        assert bundle["runs"]
        assert all(run["meta"]["label"] for run in bundle["runs"])
        assert main(["check-metrics", str(metrics_path)]) == 0

    def test_check_invariants_reports_violations(self, capsys, monkeypatch):
        from repro.db.cluster import Cluster

        original = Cluster.run

        def sabotage(self, trace):
            result = original(self, trace)
            # Lose a replicated record behind the checker's back.
            victim = next(iter(self.secondary.db.records))
            del self.secondary.db.records[victim]
            return result

        monkeypatch.setattr(Cluster, "run", sabotage)
        assert main([
            "run", "--workload", "enron", "--target-bytes", "60000",
            "--check-invariants",
        ]) == 1
        out = capsys.readouterr().out
        assert "cluster invariants FAILED" in out
        assert "convergence" in out


class TestShardedCommands:
    def test_run_with_shards_prints_per_shard_summary(self, capsys):
        assert main([
            "run", "--workload", "wikipedia", "--target-bytes", "120000",
            "--shards", "4", "--batch-size", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "shards:             4 (placement: hash)" in out
        assert "replicas converged: True" in out
        assert "cross-shard misses:" in out
        assert "shard 3:" in out

    def test_run_sharded_invariant_sweep(self, capsys):
        assert main([
            "run", "--workload", "wikipedia", "--target-bytes", "80000",
            "--shards", "2", "--placement", "prefix", "--check-invariants",
        ]) == 0
        out = capsys.readouterr().out
        assert "cluster invariants OK" in out

    def test_run_sharded_metrics_export_validates(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "run", "--workload", "wikipedia", "--target-bytes", "80000",
            "--shards", "2", "--metrics-out", str(metrics_path),
        ]) == 0
        assert main(["check-metrics", str(metrics_path)]) == 0
        import json

        document = json.loads(metrics_path.read_text())
        assert "shard" in document["metrics"]["dedup_records_seen_total"]["labels"]

    def test_shard_scaling_experiment(self, capsys):
        assert main([
            "experiment", "shard-scaling", "--target-bytes", "80000",
            "--shard-counts", "1,2", "--check-invariants",
        ]) == 0
        out = capsys.readouterr().out
        assert "dedup ratio vs shard count" in out
        assert "prefix" in out
