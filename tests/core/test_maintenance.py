"""Background compaction: reclaiming overlapped-encoding orphans."""

import random

import pytest

from repro.core.config import DedupConfig
from repro.core.maintenance import BackgroundCompactor
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.record import RecordForm
from repro.workloads.base import Operation
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator


def forked_cluster():
    """Build a chain with a deliberate fork, orphaning the old tail.

    v0 → v1 → v2 (normal chain), then 'fork' derives from v0 directly and
    we force the engine's selection by planting v0 as the only candidate
    the fork resembles strongly... simpler: we drive the databases through
    the cluster and then check for raw orphans generically.
    """
    cluster = Cluster(
        ClusterConfig(
            dedup=DedupConfig(chunk_size=64, size_filter_enabled=False)
        )
    )
    rng = random.Random(5)
    text_gen = TextGenerator(seed=5)
    body = text_gen.document(4000)
    contents = {}
    previous = body
    for version in range(6):
        record_id = f"v{version}"
        cluster.execute(
            Operation("insert", "db", record_id, previous.encode())
        )
        contents[record_id] = previous.encode()
        previous = revise(rng, text_gen, previous, num_edits=2)
    # A divergent branch derived from the very first version: its edits
    # make it most similar to v0, forking the chain and orphaning v5's
    # lineage or v0's old successor depending on selection.
    branch = revise(rng, text_gen, contents["v0"].decode(), num_edits=1)
    cluster.execute(Operation("insert", "db", "branch", branch.encode()))
    contents["branch"] = branch.encode()
    cluster.finalize()
    return cluster, contents


class TestCompaction:
    def test_compactor_reduces_raw_records(self):
        cluster, contents = forked_cluster()
        db = cluster.primary.db
        raw_before = sum(
            1 for record in db.records.values()
            if record.form is RecordForm.RAW
        )
        report = cluster.primary.compact_storage()
        cluster.primary.db.drain_writebacks()
        raw_after = sum(
            1 for record in db.records.values()
            if record.form is RecordForm.RAW
        )
        assert raw_after <= raw_before
        if report.compacted:
            assert raw_after < raw_before
            assert db.logical_raw_bytes / db.stored_bytes >= 1.0

    def test_contents_intact_after_compaction(self):
        cluster, contents = forked_cluster()
        cluster.primary.compact_storage()
        cluster.primary.db.drain_writebacks()
        for record_id, expected in contents.items():
            content, _ = cluster.primary.read("db", record_id)
            assert content == expected

    def test_no_decode_cycles_after_compaction(self):
        cluster, contents = forked_cluster()
        cluster.primary.compact_storage()
        cluster.primary.db.drain_writebacks()
        for record_id in contents:
            # decode_cost raises CorruptChain on cycles.
            assert cluster.primary.db.decode_cost(record_id) >= 0

    def test_hot_tail_never_compacted(self):
        # The newest record overall can have no strictly newer base, so
        # compaction must leave it raw.
        cluster, contents = forked_cluster()
        cluster.primary.compact_storage()
        cluster.primary.db.drain_writebacks()
        newest = max(
            cluster.primary.db.records,
            key=lambda rid: cluster.primary.engine._insert_seq.get(rid, -1),
        )
        assert cluster.primary.db.records[newest].form is RecordForm.RAW

    def test_bases_point_forward_in_time(self):
        cluster, contents = forked_cluster()
        cluster.primary.compact_storage()
        cluster.primary.db.drain_writebacks()
        sequence = cluster.primary.engine._insert_seq
        for record in cluster.primary.db.records.values():
            if record.base_id is not None:
                assert sequence.get(record.base_id, -1) > sequence.get(
                    record.record_id, -1
                )

    def test_compaction_on_dedup_disabled_node(self):
        cluster = Cluster(ClusterConfig(dedup_enabled=False))
        cluster.execute(Operation("insert", "db", "r", b"data " * 50))
        assert cluster.primary.compact_storage() is None

    def test_idempotent_when_nothing_to_do(self):
        cluster, _ = forked_cluster()
        cluster.primary.compact_storage()
        cluster.primary.db.drain_writebacks()
        second = cluster.primary.compact_storage()
        # Second pass finds nothing new to compact.
        assert second.compacted == 0


class TestMutualOrphanSafety:
    def test_two_similar_orphans_do_not_cycle(self):
        """Two raw records most similar to each other must not end up
        encoding against one another."""
        cluster = Cluster(
            ClusterConfig(
                dedup=DedupConfig(
                    chunk_size=64, size_filter_enabled=False,
                    min_savings_ratio=0.99,
                )
            )
        )
        text_gen = TextGenerator(seed=8)
        rng = random.Random(8)
        base = text_gen.document(3000)
        twin = revise(rng, text_gen, base, num_edits=1)
        # Insert as unique (engine may or may not link them; force raw by
        # clearing the write-back cache afterwards).
        cluster.execute(Operation("insert", "db", "a", base.encode()))
        cluster.execute(Operation("insert", "db", "b", twin.encode()))
        db = cluster.primary.db
        db.writeback_cache.drain()
        # Both raw now (any queued delta was drained without applying).
        report = cluster.primary.compact_storage()
        db.drain_writebacks()
        for record_id, expected in (("a", base.encode()), ("b", twin.encode())):
            content, _ = cluster.primary.read("db", record_id)
            assert content == expected
            db.decode_cost(record_id)  # raises on cycles
