"""DedupConfig validation."""

import pytest

from repro.core.config import DedupConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = DedupConfig()
        assert config.top_k == 8
        assert config.anchor_interval == 64
        assert config.hop_distance == 16
        assert config.cache_reward == 2
        assert config.encoding == "hop"
        assert config.source_cache_bytes == 32 * 1024 * 1024
        assert config.writeback_cache_bytes == 8 * 1024 * 1024
        assert config.governor_threshold == pytest.approx(1.1)
        assert config.size_filter_percentile == pytest.approx(40.0)


class TestValidation:
    def test_chunk_size_power_of_two(self):
        with pytest.raises(ValueError):
            DedupConfig(chunk_size=1000)

    def test_chunk_size_minimum(self):
        with pytest.raises(ValueError):
            DedupConfig(chunk_size=4)

    def test_top_k_positive(self):
        with pytest.raises(ValueError):
            DedupConfig(top_k=0)

    def test_encoding_names(self):
        for name in ("hop", "backward", "version-jumping", "forward"):
            assert DedupConfig(encoding=name).encoding == name
        with pytest.raises(ValueError):
            DedupConfig(encoding="zigzag")

    def test_min_savings_ratio_bounds(self):
        with pytest.raises(ValueError):
            DedupConfig(min_savings_ratio=0.0)
        with pytest.raises(ValueError):
            DedupConfig(min_savings_ratio=1.5)

    def test_hop_distance_minimum(self):
        with pytest.raises(ValueError):
            DedupConfig(hop_distance=1)

    def test_size_filter_percentile_bounds(self):
        with pytest.raises(ValueError):
            DedupConfig(size_filter_percentile=100.0)
