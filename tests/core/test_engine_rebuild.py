"""Engine state rebuild after restart (snapshot/replay recovery path)."""

import pytest

from repro.core.config import DedupConfig
from repro.core.engine import DedupEngine
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.snapshot import dump_database, load_database
from repro.workloads.wikipedia import WikipediaWorkload


@pytest.fixture()
def restored_node():
    """A database restored from snapshot, plus the original trace."""
    cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
    workload = WikipediaWorkload(seed=77, target_bytes=120_000, num_articles=2)
    ops = list(workload.insert_trace())
    for op in ops:
        cluster.execute(op)
    cluster.finalize()
    restored = load_database(dump_database(cluster.primary.db))
    # Continue the revision stream past the restart point.
    more = WikipediaWorkload(seed=77, target_bytes=240_000, num_articles=2)
    future_ops = list(more.insert_trace())[len(ops):]
    return restored, ops, future_ops


class TestRebuild:
    def test_rebuild_counts_live_records(self, restored_node):
        restored, ops, _ = restored_node
        engine = DedupEngine(DedupConfig(chunk_size=64, size_filter_enabled=False))
        indexed = engine.rebuild_from(restored)
        assert indexed == len(ops)
        assert engine.index_memory_bytes > 0

    def test_new_inserts_dedup_against_restored_corpus(self, restored_node):
        restored, ops, future_ops = restored_node
        if not future_ops:
            pytest.skip("trace continuation produced no extra revisions")
        engine = DedupEngine(DedupConfig(chunk_size=64, size_filter_enabled=False))
        engine.rebuild_from(restored, order=[op.record_id for op in ops])
        hits = 0
        for op in future_ops[:6]:
            result = engine.encode(
                op.database, op.record_id, op.content, provider=restored
            )
            restored.insert(op.database, op.record_id, op.content)
            hits += int(result.deduped)
        # Revisions of existing articles must find their restored parents.
        assert hits >= 1

    def test_without_rebuild_no_dedup(self, restored_node):
        restored, _, future_ops = restored_node
        if not future_ops:
            pytest.skip("trace continuation produced no extra revisions")
        engine = DedupEngine(DedupConfig(chunk_size=64, size_filter_enabled=False))
        op = future_ops[0]
        result = engine.encode(op.database, op.record_id, op.content,
                               provider=restored)
        assert not result.deduped

    def test_rebuild_skips_tombstones(self, restored_node):
        restored, ops, _ = restored_node
        victim = ops[0].record_id
        restored.records[victim].deleted = True
        engine = DedupEngine(DedupConfig(chunk_size=64, size_filter_enabled=False))
        indexed = engine.rebuild_from(restored)
        assert indexed == len(ops) - 1
