"""WritebackPlanner: chain plumbing, hop-base caching, fetch fallbacks."""

import pytest

from repro.core.config import DedupConfig
from repro.core.planner import CpuMeter, WritebackPlanner
from repro.delta.decode import apply_delta
from repro.delta.instructions import deserialize
from repro.sim.costs import CostModel


class DictProvider:
    def __init__(self) -> None:
        self.data: dict[str, bytes] = {}
        self.fetches: list[str] = []

    def fetch_content(self, record_id: str):
        self.fetches.append(record_id)
        return self.data.get(record_id)

    def stored_size(self, record_id: str) -> int:
        return len(self.data.get(record_id, b""))


def build_chain(planner, provider, contents, ids=None):
    """Feed a revision chain through the planner; returns all writebacks."""
    ids = ids or [f"v{i}" for i in range(len(contents))]
    provider.data[ids[0]] = contents[0]
    planner.source_cache.admit(ids[0], contents[0])
    all_writebacks = []
    for index in range(1, len(contents)):
        source_id, record_id = ids[index - 1], ids[index]
        source = planner.fetch(source_id, provider)
        forward = planner.compressor.compress(source, contents[index])
        writebacks, overlapped = planner.plan(
            record_id, source_id, contents[index], source, forward,
            provider, CpuMeter(CostModel()),
        )
        provider.data[record_id] = contents[index]
        all_writebacks.extend(writebacks)
    return all_writebacks


class TestBackwardPlanning:
    def test_writeback_payloads_decode(self, revision_chain):
        planner = WritebackPlanner(DedupConfig(encoding="backward"))
        provider = DictProvider()
        writebacks = build_chain(planner, provider, revision_chain[:5])
        assert len(writebacks) == 4
        for entry in writebacks:
            base = provider.data[entry.base_id]
            target_index = int(entry.record_id[1:])
            decoded = apply_delta(base, deserialize(entry.payload))
            assert decoded == revision_chain[target_index]

    def test_forward_mode_plans_nothing(self, revision_chain):
        planner = WritebackPlanner(DedupConfig(encoding="forward"))
        provider = DictProvider()
        assert build_chain(planner, provider, revision_chain[:4]) == []


class TestHopPlanning:
    def test_hop_reencodes_previous_hop_base(self, revision_chain):
        planner = WritebackPlanner(
            DedupConfig(encoding="hop", hop_distance=4)
        )
        provider = DictProvider()
        writebacks = build_chain(planner, provider, revision_chain[:9])
        targets = [(entry.record_id, entry.base_id) for entry in writebacks]
        # Position 4 arrival re-encodes v0 against v4; position 8 arrival
        # re-encodes v4 against v8.
        assert ("v0", "v4") in targets
        assert ("v4", "v8") in targets

    def test_hop_bases_stay_cached_for_their_reencode(self, revision_chain):
        planner = WritebackPlanner(
            DedupConfig(encoding="hop", hop_distance=4)
        )
        provider = DictProvider()
        build_chain(planner, provider, revision_chain[:9])
        # The hop re-encodes of v0 and v4 must have been served from the
        # cache, never from the provider.
        assert "v0" not in provider.fetches
        assert "v4" not in provider.fetches


class TestOverlappedPlanning:
    def test_fork_reencodes_only_source(self, revision_chain):
        planner = WritebackPlanner(DedupConfig(encoding="backward"))
        provider = DictProvider()
        build_chain(planner, provider, revision_chain[:3])  # v0 v1 v2
        # New record picks v0 (mid-chain) as source → overlapped.
        source = planner.fetch("v0", provider)
        forward = planner.compressor.compress(source, revision_chain[4])
        writebacks, overlapped = planner.plan(
            "fork", "v0", revision_chain[4], source, forward,
            provider, CpuMeter(CostModel()),
        )
        assert overlapped
        assert [entry.record_id for entry in writebacks] == ["v0"]
        assert writebacks[0].base_id == "fork"


class TestFetch:
    def test_fetch_miss_returns_none(self):
        planner = WritebackPlanner(DedupConfig())
        assert planner.fetch("ghost", DictProvider()) is None

    def test_fetch_admits_to_cache(self):
        planner = WritebackPlanner(DedupConfig())
        provider = DictProvider()
        provider.data["r"] = b"content"
        assert planner.fetch("r", provider) == b"content"
        assert "r" in planner.source_cache
        # Second fetch hits the cache.
        planner.fetch("r", provider)
        assert provider.fetches == ["r"]

    def test_negative_saving_writebacks_skipped(self):
        # A "source" whose stored form is already tiny: the delta would
        # grow it, so no write-back is planned.
        planner = WritebackPlanner(DedupConfig(encoding="backward"))
        provider = DictProvider()
        provider.data["small"] = b"xy"
        planner.source_cache.admit("small", b"xy")
        forward = planner.compressor.compress(b"xy", b"xy plus more data")
        writebacks, _ = planner.plan(
            "new", "small", b"xy plus more data", b"xy", forward,
            provider, CpuMeter(CostModel()),
        )
        assert writebacks == []
