"""DedupEngine: the full §3.1 workflow against an in-memory provider."""

import random

import pytest

from repro.core.config import DedupConfig
from repro.core.engine import DedupEngine
from repro.delta.decode import apply_delta
from repro.delta.instructions import deserialize
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator


class DictProvider:
    """Minimal RecordProvider backed by a dict."""

    def __init__(self) -> None:
        self.data: dict[str, bytes] = {}
        self.fetches = 0

    def fetch_content(self, record_id: str):
        self.fetches += 1
        return self.data.get(record_id)

    def stored_size(self, record_id: str) -> int:
        return len(self.data.get(record_id, b""))


@pytest.fixture()
def provider() -> DictProvider:
    return DictProvider()


def make_engine(**overrides) -> DedupEngine:
    defaults = dict(chunk_size=64, governor_window=100_000,
                    size_filter_enabled=False)
    defaults.update(overrides)
    return DedupEngine(DedupConfig(**defaults))


def insert(engine, provider, record_id, content, database="db"):
    result = engine.encode(database, record_id, content, provider)
    provider.data[record_id] = content
    return result


class TestUniquePath:
    def test_first_record_is_unique(self, provider, document):
        engine = make_engine()
        result = insert(engine, provider, "r0", document)
        assert not result.deduped
        assert result.oplog_size == len(document)
        assert result.forward_payload is None
        assert engine.stats.records_unique == 1

    def test_unrelated_records_stay_unique(self, provider, text_gen):
        engine = make_engine()
        for index in range(5):
            content = text_gen.document(2000).encode()
            result = insert(engine, provider, f"r{index}", content)
            assert not result.deduped


class TestDedupPath:
    def test_revision_dedups_against_parent(self, provider, revision_pair):
        source, target = revision_pair
        engine = make_engine()
        insert(engine, provider, "v0", source)
        result = insert(engine, provider, "v1", target)
        assert result.deduped
        assert result.source_id == "v0"
        assert result.oplog_size < len(target) * 0.5

    def test_forward_payload_decodes(self, provider, revision_pair):
        source, target = revision_pair
        engine = make_engine()
        insert(engine, provider, "v0", source)
        result = insert(engine, provider, "v1", target)
        forward = deserialize(result.forward_payload)
        assert apply_delta(source, forward) == target

    def test_writeback_reencodes_source(self, provider, revision_pair):
        source, target = revision_pair
        engine = make_engine(encoding="backward")
        insert(engine, provider, "v0", source)
        result = insert(engine, provider, "v1", target)
        assert len(result.writebacks) == 1
        entry = result.writebacks[0]
        assert entry.record_id == "v0"
        assert entry.base_id == "v1"
        backward = deserialize(entry.payload)
        assert apply_delta(target, backward) == source
        assert entry.space_saving > 0

    def test_chain_of_revisions(self, provider, revision_chain):
        engine = make_engine(encoding="backward")
        deduped = 0
        for index, revision in enumerate(revision_chain):
            result = insert(engine, provider, f"v{index}", revision)
            deduped += int(result.deduped)
        assert deduped >= len(revision_chain) - 2
        assert engine.stats.network_compression_ratio > 3

    def test_forward_mode_produces_no_writebacks(self, provider, revision_pair):
        source, target = revision_pair
        engine = make_engine(encoding="forward")
        insert(engine, provider, "v0", source)
        result = insert(engine, provider, "v1", target)
        assert result.deduped
        assert result.writebacks == ()
        assert result.ideal_stored_delta == len(target)


class TestGovernorIntegration:
    def test_governor_disables_and_drops_index(self, provider, rng):
        engine = make_engine(governor_window=10)
        for index in range(10):
            content = bytes(rng.randrange(256) for _ in range(1000))
            insert(engine, provider, f"r{index}", content, database="noisy")
        assert not engine.governor.is_enabled("noisy")
        assert "noisy" not in engine._indexes
        # Subsequent records bypass.
        result = insert(engine, provider, "r-after", b"x" * 1000, database="noisy")
        assert not result.deduped
        assert engine.stats.records_bypassed == 1

    def test_other_databases_unaffected(self, provider, rng, revision_pair):
        engine = make_engine(governor_window=10)
        for index in range(10):
            content = bytes(rng.randrange(256) for _ in range(500))
            insert(engine, provider, f"n{index}", content, database="noisy")
        source, target = revision_pair
        insert(engine, provider, "v0", source, database="wiki")
        result = insert(engine, provider, "v1", target, database="wiki")
        assert result.deduped


class TestSizeFilterIntegration:
    def test_small_records_bypass_after_learning(self, provider, text_gen):
        engine = make_engine(
            size_filter_enabled=True, size_filter_interval=10
        )
        for index in range(10):
            content = text_gen.document(5000).encode()[:4000]
            insert(engine, provider, f"big{index}", content)
        result = insert(engine, provider, "tiny", b"small")
        assert not result.deduped
        assert engine.stats.records_filtered == 1
        assert engine.size_filter.threshold("db") > len(b"small")


class TestCacheBehaviour:
    def test_source_fetch_prefers_cache(self, provider, revision_pair):
        source, target = revision_pair
        engine = make_engine()
        insert(engine, provider, "v0", source)
        fetches_before = provider.fetches
        insert(engine, provider, "v1", target)
        # v0 was cached on its unique insert; no provider fetch needed.
        assert provider.fetches == fetches_before
        assert engine.stats.source_cache_hits == 1

    def test_cache_miss_falls_back_to_provider(self, provider, revision_pair):
        source, target = revision_pair
        engine = make_engine(source_cache_bytes=1)
        insert(engine, provider, "v0", source)
        result = insert(engine, provider, "v1", target)
        assert result.deduped
        assert not result.source_was_cached
        assert provider.fetches > 0


class TestWeakDeltaRejection:
    def test_barely_similar_records_stay_unique(self, provider, rng):
        # Construct records sharing one chunk but little else.
        shared = bytes(rng.randrange(256) for _ in range(128))
        a = shared + bytes(rng.randrange(256) for _ in range(4000))
        b = bytes(rng.randrange(256) for _ in range(4000)) + shared
        engine = make_engine(min_savings_ratio=0.5)
        insert(engine, provider, "a", a)
        result = insert(engine, provider, "b", b)
        # Either no candidate matched or the delta was too weak; both must
        # leave the record unique.
        assert not result.deduped
