"""Property test: ``encode_batch()`` ≡ sequential ``encode()``.

The staged pipeline promises byte-identical behaviour between per-record
and batched execution — same :class:`EncodeResult` sequence, same global
and per-database statistics — across every workload generator, any batch
partitioning, and configurations that exercise the governor and size
filter mid-stream. Hypothesis searches that space.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import DedupConfig
from repro.core.engine import DedupEngine
from repro.workloads import ALL_WORKLOADS, make_workload

WORKLOAD_NAMES = [cls.name for cls in ALL_WORKLOADS]


class DictProvider:
    """Minimal RecordProvider backed by a dict."""

    def __init__(self) -> None:
        self.data: dict[str, bytes] = {}

    def fetch_content(self, record_id: str):
        return self.data.get(record_id)

    def stored_size(self, record_id: str) -> int:
        return len(self.data.get(record_id, b""))


def insert_ops(workload_name: str, seed: int, target_bytes: int):
    """The workload's insert operations, in trace order."""
    workload = make_workload(workload_name, seed=seed, target_bytes=target_bytes)
    return [op for op in workload.insert_trace() if op.kind == "insert"]


def make_engine() -> DedupEngine:
    # Small governor window and filter interval so both mechanisms
    # actually trip inside the tiny corpora hypothesis can afford.
    return DedupEngine(
        DedupConfig(
            chunk_size=64,
            governor_window=30,
            size_filter_interval=20,
            saving_sample_cap=50,
        )
    )


@settings(max_examples=12, deadline=None)
@given(
    workload_name=st.sampled_from(WORKLOAD_NAMES),
    seed=st.integers(min_value=0, max_value=50),
    batch_size=st.integers(min_value=1, max_value=96),
)
def test_encode_batch_equals_sequential_encode(workload_name, seed, batch_size):
    ops = insert_ops(workload_name, seed, target_bytes=60_000)

    sequential_engine = make_engine()
    sequential_provider = DictProvider()
    sequential_results = []
    for op in ops:
        sequential_results.append(
            sequential_engine.encode(
                op.database, op.record_id, op.content, sequential_provider
            )
        )
        sequential_provider.data[op.record_id] = op.content

    batch_engine = make_engine()
    batch_provider = DictProvider()
    batch_results = []
    for start in range(0, len(ops), batch_size):
        chunk = ops[start : start + batch_size]
        for op in chunk:
            batch_provider.data[op.record_id] = op.content
        batch_results.extend(
            batch_engine.encode_batch(
                [(op.database, op.record_id, op.content) for op in chunk],
                batch_provider,
            )
        )

    assert batch_results == sequential_results
    assert batch_engine.stats == sequential_engine.stats
    assert batch_engine.database_stats == sequential_engine.database_stats
    # The shared bookkeeping the next insert would read must match too.
    assert batch_engine._insert_seq == sequential_engine._insert_seq
    assert (
        batch_engine.governor.disabled_databases
        == sequential_engine.governor.disabled_databases
    )


def test_single_item_batch_equals_encode(document):
    """Degenerate batch of one behaves exactly like one encode call."""
    one = make_engine()
    many = make_engine()
    provider_one, provider_many = DictProvider(), DictProvider()
    provider_many.data["r0"] = document
    sequential = one.encode("db", "r0", document, provider_one)
    (batched,) = many.encode_batch([("db", "r0", document)], provider_many)
    assert batched == sequential
    assert one.stats == many.stats
