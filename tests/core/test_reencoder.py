"""Secondary re-encoder: primary/secondary determinism (§4.1)."""

import pytest

from repro.core.config import DedupConfig
from repro.core.engine import DedupEngine
from repro.core.reencoder import SecondaryReencoder


class DictProvider:
    def __init__(self) -> None:
        self.data: dict[str, bytes] = {}

    def fetch_content(self, record_id: str):
        return self.data.get(record_id)

    def stored_size(self, record_id: str) -> int:
        return len(self.data.get(record_id, b""))


@pytest.fixture()
def config() -> DedupConfig:
    return DedupConfig(chunk_size=64, size_filter_enabled=False)


def replicate(config, revisions):
    """Run a revision stream through primary engine + secondary reencoder.

    Returns (primary writeback payload map, secondary writeback payload map,
    secondary reconstructed contents)."""
    engine = DedupEngine(config)
    reencoder = SecondaryReencoder(config)
    primary = DictProvider()
    secondary = DictProvider()
    primary_wb: dict[str, bytes] = {}
    secondary_wb: dict[str, bytes] = {}
    contents: dict[str, bytes] = {}

    for index, content in enumerate(revisions):
        record_id = f"v{index}"
        result = engine.encode("db", record_id, content, primary)
        primary.data[record_id] = content
        if result.deduped:
            outcome = reencoder.apply_encoded(
                record_id, result.source_id, result.forward_payload, secondary
            )
            assert outcome is not None
            secondary.data[record_id] = outcome.content
            contents[record_id] = outcome.content
            for entry in result.writebacks:
                primary_wb[entry.record_id] = entry.payload
            for entry in outcome.writebacks:
                secondary_wb[entry.record_id] = entry.payload
        else:
            reencoder.apply_raw(record_id, content)
            secondary.data[record_id] = content
            contents[record_id] = content
    return primary_wb, secondary_wb, contents


class TestDeterminism:
    def test_secondary_reconstructs_contents(self, config, revision_chain):
        _, _, contents = replicate(config, revision_chain)
        for index, content in enumerate(revision_chain):
            assert contents[f"v{index}"] == content

    def test_writebacks_byte_identical(self, config, revision_chain):
        primary_wb, secondary_wb, _ = replicate(config, revision_chain)
        assert primary_wb.keys() == secondary_wb.keys()
        for record_id in primary_wb:
            assert primary_wb[record_id] == secondary_wb[record_id]

    def test_hop_encoding_writebacks_identical(self, revision_chain):
        config = DedupConfig(
            chunk_size=64, size_filter_enabled=False, encoding="hop",
            hop_distance=4,
        )
        primary_wb, secondary_wb, _ = replicate(config, revision_chain)
        assert primary_wb == secondary_wb


class TestFallback:
    def test_missing_base_returns_none(self, config):
        reencoder = SecondaryReencoder(config)
        outcome = reencoder.apply_encoded("v1", "missing-base", b"", DictProvider())
        assert outcome is None
        assert reencoder.decode_failures == 1

    def test_apply_raw_caches_record(self, config, document):
        reencoder = SecondaryReencoder(config)
        outcome = reencoder.apply_raw("r0", document)
        assert outcome.content == document
        assert "r0" in reencoder.planner.source_cache
