"""Cache-aware source selection (§3.1.3)."""

import pytest

from repro.cache.source_cache import SourceRecordCache
from repro.core.selector import SourceSelector


@pytest.fixture()
def cache() -> SourceRecordCache:
    return SourceRecordCache(1024)


@pytest.fixture()
def selector(cache) -> SourceSelector:
    return SourceSelector(cache, reward=2)


class TestSelection:
    def test_no_candidates(self, selector):
        assert selector.select([[], [], []]) is None

    def test_single_candidate(self, selector):
        selected = selector.select([["r1"]])
        assert selected.record_id == "r1"
        assert selected.feature_matches == 1
        assert not selected.was_cached

    def test_most_feature_matches_wins(self, selector):
        selected = selector.select([["a", "b"], ["a"], ["a", "c"]])
        assert selected.record_id == "a"
        assert selected.feature_matches == 3

    def test_negative_reward_rejected(self, cache):
        with pytest.raises(ValueError):
            SourceSelector(cache, reward=-1)


class TestCacheAwareness:
    def test_reward_tips_close_race(self, cache, selector):
        cache.admit("cached", b"x")
        # uncached has 3 matches, cached has 2; reward 2 makes cached win.
        selected = selector.select([["uncached", "cached"], ["uncached", "cached"],
                                    ["uncached"]])
        assert selected.record_id == "cached"
        assert selected.was_cached
        assert selected.score == 4

    def test_reward_cannot_overcome_large_gap(self, cache, selector):
        cache.admit("cached", b"x")
        candidates = [["best"]] * 6 + [["cached"]]
        selected = selector.select(candidates)
        assert selected.record_id == "best"

    def test_zero_reward_ignores_cache(self, cache):
        cache.admit("cached", b"x")
        selector = SourceSelector(cache, reward=0)
        selected = selector.select([["other", "cached"], ["other"]])
        assert selected.record_id == "other"

    def test_cached_wins_exact_tie(self, cache):
        cache.admit("cached", b"x")
        selector = SourceSelector(cache, reward=0)
        selected = selector.select([["plain", "cached"]])
        assert selected.record_id == "cached"


class TestRecencyTieBreak:
    def test_newest_wins_tie_with_recency_callback(self, selector):
        sequence = {"old": 1, "new": 9}
        selected = selector.select(
            [["old", "new"], ["old", "new"]],
            recency_of=lambda rid: sequence.get(rid, -1),
        )
        assert selected.record_id == "new"

    def test_without_callback_uses_list_order(self, selector):
        selected = selector.select([["first", "second"]])
        assert selected.record_id == "second"
