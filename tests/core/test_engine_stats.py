"""Per-database engine statistics and the operator summary."""

import random

import pytest

from repro.core.config import DedupConfig
from repro.core.engine import DedupEngine


class DictProvider:
    def __init__(self) -> None:
        self.data: dict[str, bytes] = {}

    def fetch_content(self, record_id: str):
        return self.data.get(record_id)

    def stored_size(self, record_id: str) -> int:
        return len(self.data.get(record_id, b""))


@pytest.fixture()
def engine() -> DedupEngine:
    return DedupEngine(
        DedupConfig(chunk_size=64, size_filter_enabled=False,
                    governor_window=100)
    )


def insert(engine, provider, database, record_id, content):
    result = engine.encode(database, record_id, content, provider)
    provider.data[record_id] = content
    return result


class TestPerDatabaseStats:
    def test_databases_tracked_separately(self, engine, revision_pair):
        provider = DictProvider()
        source, target = revision_pair
        insert(engine, provider, "wiki", "w0", source)
        insert(engine, provider, "wiki", "w1", target)
        insert(engine, provider, "mail", "m0", b"unique message " * 30)

        wiki = engine.stats_for("wiki")
        mail = engine.stats_for("mail")
        assert wiki.records_seen == 2
        assert wiki.records_deduped == 1
        assert mail.records_seen == 1
        assert mail.records_deduped == 0

    def test_global_is_sum_of_databases(self, engine, revision_chain):
        provider = DictProvider()
        for index, revision in enumerate(revision_chain[:6]):
            database = "a" if index % 2 == 0 else "b"
            insert(engine, provider, database, f"r{index}", revision)
        total = engine.stats_for("a").records_seen + engine.stats_for("b").records_seen
        assert total == engine.stats.records_seen

    def test_per_db_stats_skip_saving_samples(self, engine):
        provider = DictProvider()
        insert(engine, provider, "db", "r", b"content " * 50)
        assert engine.stats_for("db").saving_samples == []
        assert len(engine.stats.saving_samples) == 1

    def test_bypassed_counted_per_database(self, rng):
        engine = DedupEngine(
            DedupConfig(chunk_size=64, size_filter_enabled=False,
                        governor_window=10)
        )
        provider = DictProvider()
        for index in range(12):
            blob = bytes(rng.randrange(256) for _ in range(500))
            insert(engine, provider, "noisy", f"n{index}", blob)
        assert engine.stats_for("noisy").records_bypassed >= 1


class TestDescribe:
    def test_describe_lists_databases(self, engine, revision_pair):
        provider = DictProvider()
        source, target = revision_pair
        insert(engine, provider, "wiki", "w0", source)
        insert(engine, provider, "wiki", "w1", target)
        text = engine.describe()
        assert "wiki" in text
        assert "governor" in text

    def test_describe_shows_disabled_governor(self, rng):
        engine = DedupEngine(
            DedupConfig(chunk_size=64, size_filter_enabled=False,
                        governor_window=10)
        )
        provider = DictProvider()
        for index in range(10):
            blob = bytes(rng.randrange(256) for _ in range(500))
            insert(engine, provider, "noisy", f"n{index}", blob)
        assert "OFF" in engine.describe()
