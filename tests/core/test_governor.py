"""Automatic dedup governor (§3.4.1)."""

import pytest

from repro.core.governor import DedupGovernor


class TestGovernor:
    def test_enabled_by_default(self):
        governor = DedupGovernor()
        assert governor.is_enabled("anything")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DedupGovernor(threshold=0.5)
        with pytest.raises(ValueError):
            DedupGovernor(window=0)

    def test_disables_low_ratio_database(self):
        governor = DedupGovernor(threshold=1.1, window=10)
        for _ in range(10):
            governor.observe("flat", bytes_in=100, bytes_out=100)
        assert not governor.is_enabled("flat")
        assert "flat" in governor.disabled_databases

    def test_keeps_compressing_database(self):
        governor = DedupGovernor(threshold=1.1, window=10)
        for _ in range(25):
            assert governor.observe("good", bytes_in=100, bytes_out=10)
        assert governor.is_enabled("good")

    def test_window_resets_after_healthy_evaluation(self):
        governor = DedupGovernor(threshold=1.1, window=5)
        for _ in range(5):
            governor.observe("db", 100, 10)
        # New window starts clean.
        assert governor.window_ratio("db") == 1.0

    def test_never_reenabled(self):
        governor = DedupGovernor(threshold=1.1, window=5)
        for _ in range(5):
            governor.observe("db", 100, 100)
        assert not governor.is_enabled("db")
        # Later great ratios change nothing (§3.4.1).
        for _ in range(20):
            assert not governor.observe("db", 100, 1)
        assert not governor.is_enabled("db")

    def test_databases_isolated(self):
        governor = DedupGovernor(threshold=1.1, window=5)
        for _ in range(5):
            governor.observe("bad", 100, 100)
            governor.observe("good", 100, 10)
        assert not governor.is_enabled("bad")
        assert governor.is_enabled("good")

    def test_threshold_boundary(self):
        governor = DedupGovernor(threshold=1.1, window=4)
        # Exactly 1.1 stays enabled (disable requires ratio < threshold).
        for _ in range(4):
            governor.observe("edge", 110, 100)
        assert governor.is_enabled("edge")

    def test_window_ratio_reporting(self):
        governor = DedupGovernor(window=100)
        governor.observe("db", 200, 50)
        assert governor.window_ratio("db") == pytest.approx(4.0)
        assert governor.window_ratio("unknown") == 1.0
