"""Unit tests for the rollback-safe garbage collector.

Chains are built by hand (insert raw, then convert to deltas) so every
test controls exactly which record is a base, a dependent, or a
tombstone — the GC's planner must find precisely the cohorts these
fixtures construct and nothing else.
"""

from __future__ import annotations

import random

import pytest

from repro.core.gc import (
    OUTCOME_APPLIED,
    OUTCOME_NOOP,
    OUTCOME_ROLLED_BACK,
    GarbageCollector,
)
from repro.db.database import Database
from repro.db.invariants import check_database
from repro.db.record import RecordForm
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.instructions import serialize


def _content(seed: int, size: int = 4000) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(size))


def _make_delta(db: Database, record_id: str, base_id: str) -> None:
    """Convert a stored raw record into a delta against ``base_id``."""
    compressor = DeltaCompressor()
    record = db.records[record_id]
    base_content = db.decode_stored_content(base_id)
    content = db.decode_stored_content(record_id)
    record.payload = serialize(compressor.compress(base_content, content))
    record.form = RecordForm.DELTA
    record.base_id = base_id
    db.records[base_id].ref_count += 1
    db.pages.update(record_id, db._disk_image(record))
    db._note_checksum(record)


def _chain(db: Database, contents: dict[str, bytes], edges: list[tuple[str, str]]):
    """Insert ``contents`` raw, then delta-link every (child, base) edge."""
    for record_id, content in contents.items():
        db.insert("d", record_id, content)
    for child, base in edges:
        _make_delta(db, child, base)


class TestPlan:
    def test_clean_store_plans_nothing(self):
        db = Database()
        db.insert("d", "a", _content(1))
        plan = GarbageCollector(db).plan()
        assert plan.empty
        assert plan.estimated_reclaim_bytes == 0

    def test_tombstone_with_dependent_is_planned(self):
        db = Database()
        base = _content(1)
        _chain(db, {"a": base, "b": base[:3000] + b"x" + base[3000:]},
               [("b", "a")])
        db.delete("a")
        plan = GarbageCollector(db).plan()
        assert len(plan.reroots) == 1
        action = plan.reroots[0]
        assert action.tombstone_id == "a"
        assert action.dependent_ids == ("b",)
        assert action.grandbase_id is None  # raw tombstone -> promotion
        assert plan.reclaimable_bytes == db.records["a"].stored_size

    def test_middle_tombstone_reroots_onto_grandbase(self):
        db = Database()
        base = _content(1)
        _chain(
            db,
            {
                "a": base,
                "b": base[:2000] + b"y" + base[2000:],
                "c": base[:1000] + b"z" + base[1000:],
            },
            [("b", "a"), ("c", "b")],
        )
        db.delete("b")
        plan = GarbageCollector(db).plan()
        assert len(plan.reroots) == 1
        assert plan.reroots[0].grandbase_id == "a"

    def test_pending_writeback_base_is_skipped(self):
        db = Database()
        base = _content(1)
        _chain(db, {"a": base, "b": base + b"!"}, [("b", "a")])
        db.delete("a")

        class _FakeEntry:
            base_id = "a"

        db.writeback_cache.pending_entries = lambda: [_FakeEntry()]
        plan = GarbageCollector(db).plan()
        assert not plan.reroots

    def test_quarantined_dependent_is_skipped(self):
        db = Database()
        base = _content(1)
        _chain(db, {"a": base, "b": base + b"!"}, [("b", "a")])
        db.delete("a")
        db.quarantine.add("b")
        plan = GarbageCollector(db).plan()
        assert not plan.reroots

    def test_planning_charges_scan_cpu(self):
        db = Database()
        db.insert("d", "a", _content(1))
        gc = GarbageCollector(db)
        gc.plan()
        assert gc.cpu_seconds > 0


class TestRun:
    def test_reroot_keeps_bytes_and_removes_tombstone(self):
        db = Database()
        base = _content(1)
        contents = {
            "a": base,
            "b": base[:2000] + b"y" + base[2000:],
            "c": base[:1000] + b"z" + base[1000:],
        }
        _chain(db, contents, [("b", "a"), ("c", "b")])
        db.delete("b")
        before = db.stored_bytes
        report = GarbageCollector(db).run()
        assert report.outcome == OUTCOME_APPLIED
        assert report.tombstones_removed == 1
        assert "b" not in db.records
        assert db.records["c"].base_id == "a"
        assert db.decode_stored_content("c") == contents["c"]
        assert db.stored_bytes <= before
        assert check_database(db).ok

    def test_raw_tombstone_promotes_largest_dependent(self):
        db = Database()
        base = _content(1)
        contents = {
            "a": base,
            "b": base[:500] + b"bb" + base[500:],  # larger content
            "c": base[:500],                       # smaller content
        }
        _chain(db, contents, [("b", "a"), ("c", "a")])
        db.delete("a")
        report = GarbageCollector(db).run()
        assert report.outcome == OUTCOME_APPLIED
        assert report.promotions == 1
        assert "a" not in db.records
        assert db.records["b"].form is RecordForm.RAW
        assert db.records["c"].base_id == "b"
        for record_id, content in (("b", contents["b"]), ("c", contents["c"])):
            assert db.decode_stored_content(record_id) == content
        assert check_database(db).ok

    def test_noop_on_clean_store(self):
        db = Database()
        db.insert("d", "a", _content(1))
        gc = GarbageCollector(db)
        report = gc.run()
        assert report.outcome == OUTCOME_NOOP
        assert gc.batches[OUTCOME_NOOP] == 1

    def test_batch_budget_defers_remaining_cohorts(self):
        db = Database()
        contents = {}
        edges = []
        for index in range(4):
            base = _content(index)
            contents[f"t{index}"] = base
            contents[f"d{index}"] = base[:700] + b"*" + base[700:]
            edges.append((f"d{index}", f"t{index}"))
        _chain(db, contents, edges)
        for index in range(4):
            db.delete(f"t{index}")
        gc = GarbageCollector(db)
        # Four independent one-dependent cohorts; a budget of 2 admits
        # exactly two and leaves the rest for the next idle slice.
        report = gc.run(max_records=2)
        assert report.reroots_applied == 2
        assert report.tombstones_removed == 2
        report = gc.run()
        assert report.reroots_applied == 2
        assert sum(1 for r in db.records.values() if r.deleted) == 0
        for index in range(4):
            assert db.decode_stored_content(f"d{index}") == contents[f"d{index}"]

    def test_footprint_guard_skips_growing_cohorts(self):
        # A raw tombstone whose dependents were stored as very small
        # deltas: promotion would materialize a full raw copy and grow
        # the store, so the cohort must be left alone.
        db = Database()
        base = _content(1)
        contents = {"a": base}
        edges = []
        for index in range(4):
            rid = f"dep{index}"
            contents[rid] = base[: 100 * index] + b"#" + base[100 * index:]
            edges.append((rid, "a"))
        _chain(db, contents, edges)
        db.delete("a")
        before = db.stored_bytes
        report = GarbageCollector(db).run()
        assert report.reroots_applied == 0
        assert "a" in db.records  # tombstone deferred, not reaped
        assert db.stored_bytes == before

    def test_run_never_touches_oplog_state(self):
        # GC is invisible to the WAL: replay after GC must equal replay
        # before GC (the crash-safety argument rests on this).
        db = Database()
        base = _content(1)
        _chain(db, {"a": base, "b": base + b"!"}, [("b", "a")])
        db.delete("a")
        logical_before = {
            rid: db.decode_stored_content(rid)
            for rid, rec in db.records.items()
            if not rec.deleted
        }
        GarbageCollector(db).run()
        logical_after = {
            rid: db.decode_stored_content(rid)
            for rid, rec in db.records.items()
            if not rec.deleted
        }
        assert logical_before == logical_after


class TestRollback:
    def _poisoned_db(self):
        db = Database()
        base = _content(7)
        contents = {"a": base, "b": base[:1500] + b"mid" + base[1500:]}
        _chain(db, contents, [("b", "a")])
        db.delete("a")
        return db, contents

    def test_failed_post_validation_rolls_back(self):
        db, contents = self._poisoned_db()
        gc = GarbageCollector(db)

        def corrupt(db_, prepared):
            record = db_.records["b"]
            record.payload = b"garbage" + record.payload

        gc.on_post_validate = corrupt
        report = gc.run()
        assert report.outcome == OUTCOME_ROLLED_BACK
        assert report.violations
        assert gc.batches[OUTCOME_ROLLED_BACK] == 1
        # Pre-batch state restored exactly: tombstone back, chain intact.
        assert "a" in db.records and db.records["a"].deleted
        assert db.records["b"].base_id == "a"
        assert db.decode_stored_content("b") == contents["b"]
        assert check_database(db).ok

    def test_cumulative_counters_only_advance_on_success(self):
        db, _ = self._poisoned_db()
        gc = GarbageCollector(db)
        gc.on_post_validate = lambda db_, prepared: db_.records[
            "b"
        ].__setattr__("payload", b"junk")
        gc.run()
        assert gc.reclaimed_bytes == 0
        assert gc.tombstones_removed == 0

    def test_clean_retry_after_rollback_succeeds(self):
        db, contents = self._poisoned_db()
        gc = GarbageCollector(db)
        gc.on_post_validate = lambda db_, prepared: db_.records[
            "b"
        ].__setattr__("payload", b"junk")
        assert gc.run().outcome == OUTCOME_ROLLED_BACK
        gc.on_post_validate = None
        report = gc.run()
        assert report.outcome == OUTCOME_APPLIED
        assert "a" not in db.records
        assert db.decode_stored_content("b") == contents["b"]
        assert check_database(db).ok


class TestAccountingIdentity:
    """Satellite regression: tombstone bytes must hit the reclaimed
    counter, and written - reclaimed == live footprint at all times."""

    @pytest.mark.parametrize("physical", [False, True])
    def test_written_minus_reclaimed_equals_stored(self, physical):
        db = _store(physical)
        contents = {f"r{i}": _content(i, 2000 + 100 * i) for i in range(8)}
        for record_id, content in contents.items():
            db.insert("d", record_id, content)
        assert db.stored_bytes_total - db.reclaimed_bytes_total == db.stored_bytes

        db.update("r1", _content(99, 1500))
        assert db.stored_bytes_total - db.reclaimed_bytes_total == db.stored_bytes

        reclaimed_before = db.reclaimed_bytes_total
        for record_id in ("r2", "r4", "r6"):
            db.delete(record_id)
        # The drift this fixes: deletes must surface in the counter.
        assert db.reclaimed_bytes_total > reclaimed_before
        assert db.stored_bytes_total - db.reclaimed_bytes_total == db.stored_bytes
        assert db.reclaimed_bytes_total <= db.stored_bytes_total

    @pytest.mark.parametrize("physical", [False, True])
    def test_identity_survives_gc(self, physical):
        db = _store(physical)
        base = _content(3)
        _chain(db, {"a": base, "b": base[:900] + b"@" + base[900:]},
               [("b", "a")])
        db.delete("a")
        GarbageCollector(db).run()
        assert db.stored_bytes_total - db.reclaimed_bytes_total == db.stored_bytes
        assert db.reclaimed_bytes_total <= db.stored_bytes_total


def _store(physical: bool) -> Database:
    if not physical:
        return Database()
    from repro.sim.clock import SimClock
    from repro.sim.costs import CostModel
    from repro.sim.disk import SimDisk
    from repro.storage.heapfile import HeapFileStore

    clock = SimClock()
    disk = SimDisk(clock, CostModel())
    return Database(
        clock=clock,
        disk=disk,
        page_store=HeapFileStore(page_size=4096, disk=disk),
    )
