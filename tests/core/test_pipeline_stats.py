"""Stage accounting, drop-reason bookkeeping, and stats memory bounds.

Covers the pipeline instrumentation contract: every early-exit path
increments exactly one drop-reason counter at the stage that dropped the
record, per-stage in/out counters reconcile with ``records_seen``, the
saving-sample reservoir respects its cap, and the engine's insert-order
bookkeeping is pruned on delete and partition teardown.
"""

from __future__ import annotations

import pytest

from repro.core.config import DedupConfig
from repro.core.engine import DedupEngine
from repro.core.stats import DedupStats
from repro.workloads import make_workload
from repro.workloads.text import TextGenerator


class DictProvider:
    """Minimal RecordProvider backed by a dict."""

    def __init__(self) -> None:
        self.data: dict[str, bytes] = {}

    def fetch_content(self, record_id: str):
        return self.data.get(record_id)

    def stored_size(self, record_id: str) -> int:
        return len(self.data.get(record_id, b""))


def make_engine(**overrides) -> DedupEngine:
    config = DedupConfig(**{"chunk_size": 64, **overrides})
    return DedupEngine(config)


def insert(engine, provider, record_id, content, database="db"):
    """Encode one record and make it fetchable for later inserts."""
    result = engine.encode(database, record_id, content, provider)
    provider.data[record_id] = content
    return result


def assert_single_drop(engine, reason, stage):
    """The engine saw one drop: ``reason``, charged to ``stage``."""
    stats = engine.stats
    assert stats.drop_reasons.get(reason) == 1
    assert stats.drops_at_stage(stage) == 1
    total_drops = sum(stats.drop_reasons.values())
    assert total_drops == stats.records_seen - stats.records_deduped


def test_no_candidate_increments_one_reason(document):
    engine = make_engine()
    result = insert(engine, DictProvider(), "r0", document)
    assert not result.deduped
    assert engine.stats.drop_reasons == {"no_candidate": 1}
    assert_single_drop(engine, "no_candidate", "source_select")


def test_governor_bypass_increments_one_reason(document):
    engine = make_engine()
    engine.governor.disabled_databases.add("db")
    result = insert(engine, DictProvider(), "r0", document)
    assert not result.deduped
    assert engine.stats.drop_reasons == {"governor_bypass": 1}
    assert_single_drop(engine, "governor_bypass", "admission_gate")
    # Gated records never reach the sketch stage but always reach the
    # terminal accounting stage.
    assert engine.stats.stage_records_in.get("sketch", 0) == 0
    assert engine.stats.stage_records_in["accounting"] == 1


def test_size_filter_increments_one_reason(document):
    engine = make_engine()
    engine.size_filter._thresholds["db"] = 1 << 30
    result = insert(engine, DictProvider(), "r0", document)
    assert not result.deduped
    assert engine.stats.drop_reasons == {"size_filtered": 1}
    assert_single_drop(engine, "size_filtered", "size_filter_gate")


def test_missing_source_increments_one_reason(revision_pair):
    base, revised = revision_pair
    engine = make_engine()
    provider = DictProvider()
    insert(engine, provider, "base", base)
    # Make the selected source unreachable: not cached, not fetchable.
    engine.source_cache.invalidate("base")
    del provider.data["base"]
    result = engine.encode("db", "rev", revised, provider)
    assert not result.deduped
    assert engine.stats.drop_reasons == {
        "no_candidate": 1,  # the base record itself
        "missing_source": 1,
    }
    assert engine.stats.drops_at_stage("source_select") == 2


def test_weak_delta_increments_one_reason(revision_pair):
    base, revised = revision_pair
    # A delta must be under raw_size * min_savings_ratio to count; an
    # impossible ratio turns every candidate into a weak delta.
    engine = make_engine(min_savings_ratio=1e-9)
    provider = DictProvider()
    insert(engine, provider, "base", base)
    result = insert(engine, provider, "rev", revised)
    assert not result.deduped
    assert engine.stats.drop_reasons == {"no_candidate": 1, "weak_delta": 1}
    assert engine.stats.drops_at_stage("forward_delta") == 1


def test_stage_counts_reconcile_on_workload():
    workload = make_workload("messageboards", seed=11, target_bytes=80_000)
    engine = make_engine(
        governor_window=40, size_filter_interval=25, saving_sample_cap=64
    )
    provider = DictProvider()
    for op in workload.insert_trace():
        if op.kind != "insert":
            continue
        insert(engine, provider, op.record_id, op.content, database=op.database)

    stats = engine.stats
    stage_names = engine.pipeline.stage_names()
    assert stats.records_seen > 0

    for name in stage_names:
        records_in = stats.stage_records_in.get(name, 0)
        records_out = stats.stage_records_out.get(name, 0)
        assert records_in == records_out + stats.drops_at_stage(name)

    # The first gate and the terminal accounting stage see every record.
    assert stats.stage_records_in["admission_gate"] == stats.records_seen
    assert stats.stage_records_in["accounting"] == stats.records_seen
    assert stats.stage_records_out["accounting"] == stats.records_seen

    # Each stage feeds the next: out[i] == in[i+1] (accounting always runs,
    # so it is excluded from the chain check).
    flowing = stage_names[:-1]
    for upstream, downstream in zip(flowing, flowing[1:]):
        assert stats.stage_records_out.get(upstream, 0) == (
            stats.stage_records_in.get(downstream, 0)
        )

    # Every record either deduped or was dropped for exactly one reason.
    assert (
        sum(stats.drop_reasons.values()) + stats.records_deduped
        == stats.records_seen
    )
    # Simulated CPU was charged to the stages that did the work.
    assert stats.stage_cpu_seconds.get("sketch", 0.0) > 0.0


def test_describe_includes_stage_table(document):
    engine = make_engine()
    insert(engine, DictProvider(), "r0", document)
    rendered = engine.describe()
    assert "encode pipeline stages" in rendered
    assert "admission_gate" in rendered
    assert "no_candidate=1" in rendered


def test_saving_samples_respect_cap():
    stats = DedupStats(saving_sample_cap=10)
    for i in range(1000):
        stats.record_insert(
            raw_size=100 + i, oplog_size=50, ideal_stored=50, deduped=True
        )
    assert len(stats.saving_samples) == 10
    assert stats.saving_samples_seen == 1000
    assert stats.records_seen == 1000
    # Samples are real observations, not placeholders.
    assert all(raw >= 100 and saved == raw - 50 for raw, saved in stats.saving_samples)


def test_saving_samples_unbounded_when_cap_disabled():
    stats = DedupStats(saving_sample_cap=0)
    for i in range(500):
        stats.record_insert(raw_size=100, oplog_size=80, ideal_stored=80, deduped=False)
    assert len(stats.saving_samples) == 500


def test_engine_honours_configured_sample_cap():
    gen = TextGenerator(seed=7)
    engine = make_engine(saving_sample_cap=3)
    provider = DictProvider()
    for i in range(8):
        insert(engine, provider, f"r{i}", gen.document(400).encode())
    assert len(engine.stats.saving_samples) == 3
    assert engine.stats.saving_samples_seen == 8


def test_forget_record_prunes_insert_seq(document):
    engine = make_engine()
    provider = DictProvider()
    insert(engine, provider, "r0", document)
    assert "r0" in engine._insert_seq
    engine.forget_record("db", "r0")
    assert "r0" not in engine._insert_seq
    # Forgetting an unknown record is a no-op, not an error.
    engine.forget_record("db", "missing")


def test_forget_record_does_not_recycle_sequence_numbers(revision_pair):
    base, revised = revision_pair
    engine = make_engine()
    provider = DictProvider()
    insert(engine, provider, "r0", base)
    first_seq = engine._insert_seq["r0"]
    engine.forget_record("db", "r0")
    insert(engine, provider, "r1", revised)
    assert engine._insert_seq["r1"] > first_seq


def test_governor_disable_prunes_partition():
    engine = make_engine(governor_window=3, governor_threshold=1.1)
    for i in range(2):
        engine.register_insert("dbA", f"a{i}")
    engine.register_insert("dbB", "b0")

    # Three no-savings observations fill dbA's window at ratio 1.0 < 1.1,
    # which disables dedup and must tear the partition's bookkeeping down.
    for _ in range(3):
        engine.observe_governor("dbA", 1000, 1000)
    assert "dbA" in engine.governor.disabled_databases
    assert not any(rid.startswith("a") for rid in engine._insert_seq)
    assert "b0" in engine._insert_seq


@pytest.mark.parametrize("bad_cap", [-5])
def test_negative_cap_behaves_like_unbounded(bad_cap):
    stats = DedupStats(saving_sample_cap=bad_cap)
    for _ in range(50):
        stats.record_insert(raw_size=10, oplog_size=5, ideal_stored=5, deduped=True)
    assert len(stats.saving_samples) == 50


def test_drops_carry_the_stream_label(document):
    engine = make_engine()
    provider = DictProvider()
    insert(engine, provider, "a/1", document, database="tenant_a")
    insert(engine, provider, "b/1", document + b"!", database="tenant_b")
    by_stream = engine.stats.drop_reasons_by_stream
    assert by_stream["tenant_a"] == {"no_candidate": 1}
    assert by_stream["tenant_b"] == {"no_candidate": 1}
    # The folded view is the per-stream sum.
    assert engine.stats.drop_reasons == {"no_candidate": 2}


def test_stream_label_lands_in_the_registry(document):
    engine = make_engine()
    provider = DictProvider()
    insert(engine, provider, "a/1", document, database="tenant_a")
    rows = engine.stats.registry.snapshot()["pipeline_drops_total"]["values"]
    streams = {
        row["labels"]["stream"]
        for row in rows
        if row["labels"]["scope"] == "_total"
    }
    assert streams == {"tenant_a"}


def test_describe_pipeline_breaks_out_streams(document):
    engine = make_engine()
    provider = DictProvider()
    insert(engine, provider, "a/1", document, database="tenant_a")
    insert(engine, provider, "b/1", document + b"?", database="tenant_b")
    text = engine.describe_pipeline()
    assert "drops[tenant_a]" in text
    assert "drops[tenant_b]" in text
