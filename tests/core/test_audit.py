"""Dedup audit trail: live accumulation, oplog rebuild, reconciliation."""

from __future__ import annotations

from repro.core.audit import (
    AUDIT_SCOPE,
    REASON_DEDUPED,
    REASON_UNIQUE,
    AuditTrail,
)
from repro.api import ClusterSpec, open_cluster
from repro.core.config import DedupConfig
from repro.db.oplog import OplogEntry
from repro.obs.export import check_reconciliation, metrics_document
from repro.obs.registry import MetricsRegistry
from repro.workloads import make_workload


def _entry(seq, op, record_id, payload, base_id=None, encoded=False):
    return OplogEntry(
        seq=seq,
        timestamp=float(seq),
        op=op,
        database="d",
        record_id=record_id,
        payload=payload,
        base_id=base_id,
        encoded=encoded,
    )


class _StoredStub:
    def __init__(self, raw_size):
        self.raw_size = raw_size


class TestLiveTrail:
    def test_record_appends_and_counts(self):
        trail = AuditTrail()
        trail.record(
            record_id="r1", database="d", reason=REASON_DEDUPED,
            raw_size=1000, saved_bytes=900, source_id="r0", similarity=0.9,
        )
        trail.record(
            record_id="r2", database="d", reason="no_candidate",
            raw_size=500, saved_bytes=0,
        )
        assert len(trail) == 2
        assert trail.total_saved_bytes == 900
        assert trail.total_raw_bytes == 1500
        assert trail.reason_counts() == {REASON_DEDUPED: 1, "no_candidate": 1}
        entry = trail.lookup("d", "r1")
        assert entry.source_id == "r0"
        assert entry.similarity == 0.9
        assert not entry.rebuilt
        assert trail.lookup("d", "missing") is None

    def test_counters_track_entries(self):
        registry = MetricsRegistry()
        trail = AuditTrail(registry=registry)
        trail.record(
            record_id="r1", database="d", reason=REASON_DEDUPED,
            raw_size=1000, saved_bytes=900, source_id="r0", similarity=0.5,
        )
        trail.record(
            record_id="r2", database="d", reason="below_threshold",
            raw_size=400, saved_bytes=0,
        )
        assert registry.value("audit_saved_bytes_total", AUDIT_SCOPE) == 900
        assert registry.value("audit_raw_bytes_total", AUDIT_SCOPE) == 1400
        assert registry.value(
            "audit_records_total", AUDIT_SCOPE, REASON_DEDUPED
        ) == 1
        assert registry.value(
            "audit_records_total", AUDIT_SCOPE, "below_threshold"
        ) == 1

    def test_query_filters_newest_first(self):
        trail = AuditTrail()
        for index in range(5):
            trail.record(
                record_id=f"r{index}",
                database="d" if index % 2 == 0 else "e",
                reason=REASON_DEDUPED if index < 3 else "no_candidate",
                raw_size=100, saved_bytes=10,
            )
        newest = trail.query(limit=2)
        assert [e.record_id for e in newest] == ["r4", "r3"]
        only_d = trail.query(database="d")
        assert [e.record_id for e in only_d] == ["r4", "r2", "r0"]
        deduped = trail.query(reason=REASON_DEDUPED)
        assert [e.record_id for e in deduped] == ["r2", "r1", "r0"]

    def test_summary_rollup(self):
        trail = AuditTrail()
        trail.record(
            record_id="a", database="d", reason=REASON_DEDUPED,
            raw_size=100, saved_bytes=80, source_id="z", similarity=0.8,
        )
        trail.record(
            record_id="b", database="d", reason=REASON_DEDUPED,
            raw_size=100, saved_bytes=60, source_id="z", similarity=0.4,
        )
        trail.record(
            record_id="c", database="d", reason="no_candidate",
            raw_size=100, saved_bytes=0,
        )
        summary = trail.summary()
        assert summary["records"] == 3
        assert summary["rebuilt"] == 0
        assert summary["deduped_records"] == 2
        assert summary["saved_bytes"] == 140
        assert summary["raw_bytes"] == 300
        assert abs(summary["mean_similarity"] - 0.6) < 1e-9


class TestRebuild:
    def test_rebuild_maps_oplog_rows_to_entries(self):
        trail = AuditTrail()
        oplog = [
            _entry(1, "insert", "r0", b"x" * 100),
            _entry(2, "insert", "r1", b"y" * 20, base_id="r0", encoded=True),
            _entry(3, "update", "r0", b"x" * 120),
            _entry(4, "delete", "r0", b""),
        ]
        records = {"r1": _StoredStub(raw_size=110)}
        rebuilt = trail.rebuild_from_oplog(oplog, records)
        assert rebuilt == 2
        unique = trail.lookup("d", "r0")
        assert unique.reason == REASON_UNIQUE
        assert unique.raw_size == 100
        assert unique.saved_bytes == 0
        assert unique.rebuilt
        deduped = trail.lookup("d", "r1")
        assert deduped.reason == REASON_DEDUPED
        assert deduped.source_id == "r0"
        assert deduped.similarity is None  # score is not persisted
        assert deduped.raw_size == 110
        assert deduped.saved_bytes == 90
        assert deduped.rebuilt

    def test_rebuild_never_bumps_registry_counters(self):
        registry = MetricsRegistry()
        trail = AuditTrail(registry=registry)
        trail.rebuild_from_oplog(
            [_entry(1, "insert", "r0", b"x" * 50)], {}
        )
        assert len(trail) == 1
        assert registry.value("audit_saved_bytes_total", AUDIT_SCOPE) == 0
        assert registry.value("audit_raw_bytes_total", AUDIT_SCOPE) == 0

    def test_rebuild_falls_back_to_payload_size(self):
        # Encoded insert whose record was since deleted: the oplog
        # payload is the only size left, so savings degrade to zero.
        trail = AuditTrail()
        trail.rebuild_from_oplog(
            [_entry(1, "insert", "gone", b"d" * 30, base_id="b", encoded=True)],
            {},
        )
        entry = trail.lookup("d", "gone")
        assert entry.raw_size == 30
        assert entry.saved_bytes == 0


class TestEngineIntegration:
    def test_every_insert_leaves_one_entry(self):
        cluster = open_cluster(
            ClusterSpec(dedup=DedupConfig(chunk_size=256))
        ).cluster
        workload = make_workload("wikipedia", seed=11, target_bytes=120_000)
        operations = list(workload.insert_trace())
        cluster.run(operations)
        trail = cluster.primary.engine.audit
        inserts = sum(1 for op in operations if op.kind == "insert")
        assert len(trail) == inserts
        assert trail.reason_counts().get(REASON_DEDUPED, 0) > 0

    def test_audit_reconciles_with_dedup_counters(self):
        cluster = open_cluster(
            ClusterSpec(dedup=DedupConfig(chunk_size=256))
        ).cluster
        workload = make_workload("wikipedia", seed=3, target_bytes=120_000)
        cluster.run(workload.insert_trace())
        registry = cluster.registry
        saved = registry.value("audit_saved_bytes_total", AUDIT_SCOPE)
        raw = registry.value("audit_raw_bytes_total", AUDIT_SCOPE)
        trail = cluster.primary.engine.audit
        assert saved == trail.total_saved_bytes
        assert raw == trail.total_raw_bytes
        problems = check_reconciliation(metrics_document(registry))
        assert problems == []
