"""Unit tests for the admission subsystem: estimator, queue, modes."""

from __future__ import annotations

import math

import pytest

from repro.core.admission import (
    DECISION_BYPASS,
    DECISION_DEFER,
    DECISION_INLINE,
    AdmissionController,
)
from repro.util.deprecation import reset_deprecation_warnings


def make_hybrid(**overrides) -> AdmissionController:
    defaults = dict(mode="hybrid", window=4, inline_yield_threshold=1.2)
    defaults.update(overrides)
    return AdmissionController(**defaults)


class TestYieldEstimator:
    def test_warmup_runs_inline(self):
        controller = make_hybrid()
        assert controller.decide("db") == DECISION_INLINE
        # Even after some observations, no completed window -> inline.
        controller.observe("db", 100, 50)
        assert controller.decide("db") == DECISION_INLINE

    def test_low_yield_window_defers(self):
        controller = make_hybrid(locality_weight=0.0)
        for _ in range(4):
            controller.observe("db", 100, 100)  # ratio 1.0 < 1.2
        assert controller.decide("db") == DECISION_DEFER

    def test_high_yield_window_stays_inline(self):
        controller = make_hybrid(locality_weight=0.0)
        for _ in range(4):
            controller.observe("db", 100, 25)  # ratio 4.0 >= 1.2
        assert controller.decide("db") == DECISION_INLINE

    def test_locality_lifts_yield_over_the_bar(self):
        # Ratio 1.0 alone defers; locality hits add weight * fraction.
        # The first sketch sees an empty window, so 3 of 4 records hit.
        controller = make_hybrid(locality_weight=0.5)
        for _ in range(4):
            controller.observe("db", 100, 100, features=(1, 2, 3))
        assert controller.yield_score("db") == pytest.approx(1.375)
        assert controller.decide("db") == DECISION_INLINE

    def test_locality_fraction_tracks_recent_sketches(self):
        controller = make_hybrid(locality_depth=2, window=100)
        controller.observe("db", 1, 1, features=(1,))
        controller.observe("db", 1, 1, features=(2,))
        controller.observe("db", 1, 1, features=(3,))
        # Feature 1 expired from the depth-2 window before this arrives.
        controller.observe("db", 1, 1, features=(1,))
        assert controller.locality_fraction("db") == pytest.approx(0.0)
        controller.observe("db", 1, 1, features=(1,))
        assert controller.locality_fraction("db") == pytest.approx(0.2)

    def test_zero_byte_window_is_finite(self):
        controller = make_hybrid()
        assert controller.window_ratio("db") == 1.0
        for _ in range(4):
            controller.observe("db", 0, 0)
        assert controller.window_ratio("db") == 1.0
        score = controller.yield_score("db")
        assert score is not None and math.isfinite(score)
        # Zero denominator with non-zero numerator: still finite.
        controller.observe("db", 100, 0)
        assert controller.window_ratio("db") == 1.0
        assert math.isfinite(controller.window_ratio("db"))

    def test_streams_are_independent(self):
        controller = make_hybrid(locality_weight=0.0)
        for _ in range(4):
            controller.observe("cold", 100, 100)
            controller.observe("hot", 100, 10)
        assert controller.decide("cold") == DECISION_DEFER
        assert controller.decide("hot") == DECISION_INLINE

    def test_recovering_stream_returns_to_inline(self):
        controller = make_hybrid(locality_weight=0.0)
        for _ in range(4):
            controller.observe("db", 100, 100)
        assert controller.decide("db") == DECISION_DEFER
        for _ in range(4):
            controller.observe("db", 100, 10)
        assert controller.decide("db") == DECISION_INLINE


class TestBypass:
    def test_bypass_after_patient_low_windows(self):
        controller = make_hybrid(
            locality_weight=0.0,
            bypass_yield_threshold=1.05,
            bypass_patience=2,
        )
        for _ in range(4):
            controller.observe("db", 100, 100)
        assert controller.decide("db") == DECISION_DEFER  # one low window
        for _ in range(3):
            controller.observe("db", 100, 100)
        assert controller.observe("db", 100, 100) is False  # second: bypass
        assert controller.decide("db") == DECISION_BYPASS
        assert not controller.is_enabled("db")

    def test_one_good_window_resets_patience(self):
        controller = make_hybrid(
            locality_weight=0.0,
            bypass_yield_threshold=1.05,
            bypass_patience=2,
        )
        for _ in range(4):
            controller.observe("db", 100, 100)  # low window 1
        for _ in range(4):
            controller.observe("db", 100, 10)  # healthy window resets
        for _ in range(4):
            controller.observe("db", 100, 100)  # low window 1 again
        assert controller.is_enabled("db")

    def test_bypass_disabled_by_default(self):
        controller = make_hybrid(locality_weight=0.0)
        for _ in range(40):
            controller.observe("db", 100, 100)
        assert controller.is_enabled("db")
        assert controller.decide("db") == DECISION_DEFER


class TestGovernorMode:
    """The governor mode must reproduce the legacy semantics exactly."""

    def test_window_ratio_legacy_convention(self):
        controller = AdmissionController(mode="governor", window=100_000)
        controller.observe("db", 200, 50)
        assert controller.window_ratio("db") == pytest.approx(4.0)

    def test_disables_below_threshold_never_reenables(self):
        controller = AdmissionController(
            mode="governor", threshold=1.1, window=3
        )
        for _ in range(2):
            assert controller.observe("db", 100, 100)
        assert controller.observe("db", 100, 100) is False
        assert not controller.is_enabled("db")
        # Healthy traffic afterwards cannot resurrect the stream.
        for _ in range(6):
            assert controller.observe("db", 100, 10) is False
        assert not controller.is_enabled("db")

    def test_exact_threshold_survives(self):
        controller = AdmissionController(
            mode="governor", threshold=1.1, window=2
        )
        controller.observe("db", 110, 100)
        assert controller.observe("db", 110, 100)  # ratio == 1.1, strict <
        assert controller.is_enabled("db")

    def test_never_defers(self):
        controller = AdmissionController(mode="governor", window=2)
        assert not controller.supports_defer
        for _ in range(10):
            controller.observe("db", 100, 10)
        assert controller.decide("db") == DECISION_INLINE


class TestDeferredQueue:
    def test_per_stream_fifo(self):
        controller = make_hybrid()
        controller.defer("a", "a1", b"1")
        controller.defer("b", "b1", b"2")
        controller.defer("a", "a2", b"3")
        assert controller.pending("a") == 2
        assert controller.pending_total == 3
        assert controller.databases_with_pending() == ["a", "b"]
        assert controller.pop_deferred("a") == ("a1", b"1")
        assert controller.pop_deferred("a") == ("a2", b"3")
        assert controller.pop_deferred("a") is None
        assert controller.pending("a") == 0

    def test_global_pop_preserves_per_stream_order(self):
        controller = make_hybrid()
        controller.defer("a", "a1", b"1")
        controller.defer("b", "b1", b"2")
        controller.defer("a", "a2", b"3")
        popped = [controller.pop_oldest() for _ in range(3)]
        assert popped == [
            ("a", "a1", b"1"),
            ("b", "b1", b"2"),
            ("a", "a2", b"3"),
        ]
        assert controller.pop_oldest() is None

    def test_invalidate_discards_and_skips_dead_entries(self):
        controller = make_hybrid()
        controller.defer("a", "a1", b"old")
        controller.defer("a", "a2", b"live")
        assert controller.invalidate("a1") is True
        assert controller.invalidate("a1") is False  # already gone
        assert controller.deferred_discarded_total == 1
        assert controller.pending("a") == 1
        # The dead id is skipped by both pop orders.
        assert controller.pop_deferred("a") == ("a2", b"live")

    def test_discard_deferred_sweeps_one_stream(self):
        controller = make_hybrid()
        controller.defer("a", "a1", b"1")
        controller.defer("a", "a2", b"2")
        controller.defer("b", "b1", b"3")
        assert controller.discard_deferred("a") == 2
        assert controller.deferred_discarded_total == 2
        assert controller.pending("a") == 0
        assert controller.pending("b") == 1
        assert controller.pop_oldest() == ("b", "b1", b"3")


class DictProvider:
    """Minimal RecordProvider backed by a dict."""

    def __init__(self) -> None:
        self.data: dict[str, bytes] = {}

    def fetch_content(self, record_id: str):
        return self.data.get(record_id)

    def stored_size(self, record_id: str) -> int:
        return len(self.data.get(record_id, b""))


class TestEngineBackpressure:
    """The queue bound force-drains; records are never dropped."""

    def make_engine(self, queue_records: int):
        from repro.core.config import DedupConfig
        from repro.core.engine import DedupEngine

        # window=1: the first record completes a window, and random text
        # dedups at ~1.0 yield, so every later record defers.
        return DedupEngine(
            config=DedupConfig(
                chunk_size=64,
                admission_mode="hybrid",
                governor_window=1,
                admission_queue_records=queue_records,
                size_filter_enabled=False,
            )
        )

    def insert(self, engine, provider, record_id: str, content: bytes):
        provider.data[record_id] = content
        return engine.encode("db", record_id, content, provider)

    def test_bound_forces_drain_of_oldest(self):
        engine = self.make_engine(queue_records=2)
        provider = DictProvider()
        import random

        rng = random.Random(9)
        for i in range(6):
            content = bytes(rng.randrange(256) for _ in range(400))
            result = self.insert(engine, provider, f"r{i}", content)
            assert engine.pending_deferred() <= 2
        assert result.deferred
        # 1 warm-up inline + 5 defers; 2 still queued => 3 force-drained.
        assert engine.admission.deferred_enqueued_total == 5
        assert engine.admission.outofline_records_total == 3
        # Accounting: only pipeline-executed records are "seen" so far.
        assert engine.stats.records_seen == 1 + 3

    def test_drain_deferred_completes_accounting(self):
        engine = self.make_engine(queue_records=100)
        provider = DictProvider()
        import random

        rng = random.Random(9)
        for i in range(6):
            content = bytes(rng.randrange(256) for _ in range(400))
            self.insert(engine, provider, f"r{i}", content)
        assert engine.pending_deferred() == 5
        results = engine.drain_deferred(provider)
        assert len(results) == 5
        assert engine.pending_deferred() == 0
        assert engine.stats.records_seen == 6
        assert engine.stats.records_seen == (
            engine.stats.records_deduped + engine.stats.records_unique
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "nope"},
            {"threshold": 0.5},
            {"window": 0},
            {"inline_yield_threshold": 0.0},
            {"bypass_patience": 0},
            {"locality_weight": -1.0},
            {"locality_depth": 0},
            {"max_deferred_records": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)


class TestDeprecationShim:
    def test_direct_construction_warns_once(self):
        from repro.core.governor import DedupGovernor

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="DedupGovernor"):
            governor = DedupGovernor(threshold=1.2, window=10)
        assert isinstance(governor, AdmissionController)
        assert governor.mode == "governor"
        assert governor.threshold == 1.2
        assert governor.window == 10
        # warn-once: the second construction is silent.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            DedupGovernor()
        reset_deprecation_warnings()
