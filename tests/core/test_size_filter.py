"""Adaptive size-based dedup filter (§3.4.2)."""

import pytest

from repro.core.size_filter import AdaptiveSizeFilter


class TestSizeFilter:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveSizeFilter(cut_percentile=100.0)
        with pytest.raises(ValueError):
            AdaptiveSizeFilter(refresh_interval=0)

    def test_everything_passes_before_first_refresh(self):
        filt = AdaptiveSizeFilter(refresh_interval=100)
        assert all(filt.should_dedup("db", size) for size in (1, 10, 100))
        assert filt.threshold("db") == 0

    def test_threshold_learned_at_refresh(self):
        filt = AdaptiveSizeFilter(cut_percentile=40.0, refresh_interval=10)
        for size in range(100, 1100, 100):  # 100..1000
            filt.should_dedup("db", size)
        threshold = filt.threshold("db")
        assert 400 <= threshold <= 500

    def test_small_records_skipped_after_refresh(self):
        filt = AdaptiveSizeFilter(cut_percentile=40.0, refresh_interval=10)
        for size in range(100, 1100, 100):
            filt.should_dedup("db", size)
        assert not filt.should_dedup("db", 50)
        assert filt.should_dedup("db", 5000)
        assert filt.skipped == 1

    def test_disabled_filter_never_skips(self):
        filt = AdaptiveSizeFilter(refresh_interval=5, enabled=False)
        for size in (1000, 1000, 1000, 1000, 1000):
            filt.should_dedup("db", size)
        assert filt.should_dedup("db", 1)
        assert filt.skipped == 0

    def test_per_database_thresholds(self):
        filt = AdaptiveSizeFilter(refresh_interval=5)
        for _ in range(5):
            filt.should_dedup("big", 10_000)
            filt.should_dedup("small", 10)
        assert filt.threshold("big") > filt.threshold("small")

    def test_threshold_adapts_to_drift(self):
        filt = AdaptiveSizeFilter(refresh_interval=10, history=20)
        for _ in range(10):
            filt.should_dedup("db", 100)
        early = filt.threshold("db")
        for _ in range(20):
            filt.should_dedup("db", 10_000)
        assert filt.threshold("db") > early
