"""Batch admission: ``Database.insert_many`` and the node/cluster path."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.database import Database
from repro.db.errors import RecordExists
from repro.workloads import make_workload


@pytest.fixture()
def db() -> Database:
    return Database()


class TestInsertMany:
    def test_inserts_all_records(self, db, revision_pair):
        base, revised = revision_pair
        latency = db.insert_many(
            [("wiki", "v0", base), ("wiki", "v1", revised)]
        )
        assert latency > 0
        assert db.read("wiki", "v0")[0] == base
        assert db.read("wiki", "v1")[0] == revised

    def test_duplicate_against_store_is_atomic(self, db, document):
        db.insert("wiki", "v0", document)
        with pytest.raises(RecordExists):
            db.insert_many([("wiki", "v1", document), ("wiki", "v0", document)])
        # Nothing from the failed batch was admitted.
        assert db.read("wiki", "v1") == (None, 0.0)

    def test_duplicate_within_batch_is_atomic(self, db, document):
        with pytest.raises(RecordExists):
            db.insert_many([("wiki", "dup", document), ("wiki", "dup", document)])
        assert db.read("wiki", "dup") == (None, 0.0)

    def test_empty_batch_is_noop(self, db):
        assert db.insert_many([]) == 0.0


class TestClusterBatchPath:
    def run_pair(self, batch_size: int):
        """Run the same trace per-record and batched; return both results."""
        results = []
        clusters = []
        for size in (1, batch_size):
            cluster = Cluster(
                ClusterConfig(
                    dedup=DedupConfig(chunk_size=64),
                    insert_batch_size=size,
                )
            )
            workload = make_workload("enron", seed=5, target_bytes=100_000)
            results.append(cluster.run(workload.insert_trace()))
            clusters.append(cluster)
        return results, clusters

    def test_batched_run_matches_per_record(self):
        (sequential, batched), (c1, c2) = self.run_pair(batch_size=16)
        assert batched.inserts == sequential.inserts
        assert batched.stored_bytes == sequential.stored_bytes
        assert batched.network_bytes == sequential.network_bytes
        assert c1.replicas_converged() and c2.replicas_converged()
        assert c1.primary.engine.stats == c2.primary.engine.stats

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            ClusterConfig(insert_batch_size=0)

    def test_mixed_trace_flushes_before_reads(self):
        cluster = Cluster(
            ClusterConfig(
                dedup=DedupConfig(chunk_size=64), insert_batch_size=32
            )
        )
        workload = make_workload("enron", seed=5, target_bytes=80_000)
        result = cluster.run(workload.mixed_trace())
        assert result.reads > 0
        assert cluster.replicas_converged()
