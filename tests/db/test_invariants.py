"""Unit tests for the invariant checker: every check catches its seeded bug."""

from zlib import crc32

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.database import Database
from repro.db.invariants import (
    ClusterInvariantError,
    InvariantReport,
    check_cluster,
    check_database,
)
from repro.db.record import RecordForm
from repro.index.cuckoo import CuckooFeatureIndex
from repro.workloads.base import Operation


def checks_of(report):
    return {violation.check for violation in report.violations}


def make_db(count=4):
    db = Database()
    for index in range(count):
        db.insert("db", f"r{index}", b"payload %d " % index * 20)
    return db


class TestDatabaseChecks:
    def test_clean_database_passes(self):
        report = check_database(make_db())
        assert report.ok
        assert report.nodes_checked == 1
        assert report.records_checked == 4

    def test_corrupt_payload_fails_checksum(self):
        db = make_db()
        db.records["r1"].payload = b"flipped bits"
        report = check_database(db)
        assert "checksum" in checks_of(report)

    def test_unrepaired_quarantine_is_a_violation(self):
        db = make_db()
        db.quarantine.add("r2")
        report = check_database(db)
        assert "checksum" in checks_of(report)

    def test_wrong_ref_count_is_caught(self):
        db = make_db()
        db.records["r0"].ref_count += 1
        report = check_database(db)
        assert "refcount" in checks_of(report)

    def test_tombstone_with_no_referents_is_caught(self):
        db = make_db()
        db.records["r3"].deleted = True  # bypass delete(): fake leaked stone
        report = check_database(db)
        assert "tombstone" in checks_of(report)

    def test_dangling_base_is_caught(self):
        db = make_db()
        record = db.records["r2"]
        record.form = RecordForm.DELTA
        record.base_id = "ghost"
        report = check_database(db)
        assert "structure" in checks_of(report)

    def test_raw_record_with_base_pointer_is_caught(self):
        db = make_db()
        db.records["r0"].base_id = "r1"
        report = check_database(db)
        assert "structure" in checks_of(report)

    def test_base_pointer_cycle_is_caught(self):
        db = make_db()
        for record_id, base_id in (("r0", "r1"), ("r1", "r0")):
            record = db.records[record_id]
            record.form = RecordForm.DELTA
            record.base_id = base_id
            record.ref_count = 1
        report = check_database(db)
        assert "structure" in checks_of(report)

    def test_index_referencing_dead_record_is_caught(self):
        db = make_db()
        index = CuckooFeatureIndex()
        index.insert(0x1234, "r1")
        index.insert(0x5678, "zombie")  # never stored
        report = check_database(db, index_partitions=[("db", index)])
        assert "index" in checks_of(report)
        assert any(
            violation.record_id == "zombie" for violation in report.violations
        )

    def test_oplog_divergence_is_caught(self):
        cluster = Cluster(ClusterConfig())
        cluster.execute(Operation("insert", "db", "r0", b"truth " * 30))
        db = cluster.primary.db
        # Store different bytes but keep the checksum honest, so only the
        # replay ground-truth check can see the divergence.
        db.records["r0"].payload = b"lies " * 30
        db._checksums["r0"] = crc32(db.records["r0"].payload)
        report = check_database(db, oplog=cluster.primary.oplog)
        assert report.oplog_checked
        assert "oplog" in checks_of(report)

    def test_truncated_oplog_skips_ground_truth(self):
        cluster = Cluster(ClusterConfig())
        for index in range(4):
            cluster.execute(
                Operation("insert", "db", f"r{index}", b"x %d " % index * 20)
            )
        cluster.finalize()
        oplog = cluster.primary.oplog
        oplog.truncate_before(2)
        report = check_database(cluster.primary.db, oplog=oplog)
        assert not report.oplog_checked
        assert report.ok


class TestHopBoundGating:
    def test_clean_drained_cluster_arms_the_bound(self):
        cluster = Cluster(
            ClusterConfig(
                dedup=DedupConfig(chunk_size=64, size_filter_enabled=False)
            )
        )
        base = b"the quick brown fox jumps over the lazy dog " * 30
        for index in range(12):
            content = base + b"variant %d" % index
            cluster.execute(Operation("insert", "db", f"r{index}", content))
        report = check_cluster(cluster)
        assert report.ok
        assert report.hop_bound_checked

    def test_pending_writebacks_disarm_the_bound(self):
        from repro.cache.writeback import WriteBackEntry
        from repro.delta.dbdelta import DeltaCompressor
        from repro.delta.instructions import serialize

        cluster = Cluster(
            ClusterConfig(
                dedup=DedupConfig(chunk_size=64, size_filter_enabled=False)
            )
        )
        base = b"the quick brown fox jumps over the lazy dog " * 30
        for index in range(4):
            content = base + b"variant %d" % index
            cluster.execute(Operation("insert", "db", f"r{index}", content))
        # Hold one write-back in the cache: the conditional bound must not
        # arm while a planned encoding has yet to land.
        delta = DeltaCompressor().compress(base + b"variant 1", base + b"variant 0")
        cluster.primary.db.schedule_writebacks(
            [
                WriteBackEntry(
                    record_id="r0",
                    base_id="r1",
                    payload=serialize(delta),
                    space_saving=100,
                )
            ]
        )
        assert len(cluster.primary.db.writeback_cache) > 0
        report = check_database(
            cluster.primary.db,
            node="primary",
            planner=cluster.primary.engine.planner,
        )
        assert not report.hop_bound_checked


class TestClusterCheck:
    def _loaded_cluster(self):
        cluster = Cluster(ClusterConfig())
        for index in range(6):
            cluster.execute(
                Operation("insert", "db", f"r{index}", b"content %d " % index * 25)
            )
        cluster.finalize()
        return cluster

    def test_clean_cluster_passes_strict(self):
        cluster = self._loaded_cluster()
        report = check_cluster(cluster)
        assert report.ok
        assert report.nodes_checked == 2
        assert report.convergence_checked
        assert report.oplog_checked

    def test_lost_replica_record_fails_convergence(self):
        cluster = self._loaded_cluster()
        del cluster.secondary.db.records["r3"]
        report = check_cluster(cluster, strict=False)
        assert "convergence" in checks_of(report)

    def test_strict_mode_raises_with_the_report(self):
        cluster = self._loaded_cluster()
        del cluster.secondary.db.records["r3"]
        with pytest.raises(ClusterInvariantError) as excinfo:
            check_cluster(cluster)
        assert not excinfo.value.report.ok
        assert "FAILED" in str(excinfo.value)

    def test_check_resumes_a_suspended_fault_plan(self):
        from repro.sim.faults import DropBatches, FaultPlan

        cluster = self._loaded_cluster()
        plan = FaultPlan(seed=1, rules=[DropBatches(every=1000)])
        plan.install(cluster)
        check_cluster(cluster)
        assert plan.active  # resumed after the sweep
        plan.suspend()
        check_cluster(cluster)
        assert not plan.active  # stays suspended if it was suspended


class TestReportFormatting:
    def test_ok_summary(self):
        report = InvariantReport(nodes_checked=2, records_checked=10)
        report.oplog_checked = True
        text = report.summary()
        assert "OK" in text
        assert "2 node(s)" in text
        assert "oplog" in text

    def test_failure_summary_lists_violations(self):
        report = InvariantReport(nodes_checked=1, records_checked=3)
        report.add("primary", "checksum", "stored payload fails checksum", "r1")
        text = report.summary()
        assert "FAILED" in text
        assert "[checksum] primary/r1" in text

    def test_violation_cap(self):
        from repro.db.invariants import MAX_VIOLATIONS

        report = InvariantReport()
        for index in range(MAX_VIOLATIONS + 50):
            report.add("primary", "decode", "boom", f"r{index}")
        assert len(report.violations) == MAX_VIOLATIONS
