"""Fan-out replication to multiple secondaries."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads.wikipedia import WikipediaWorkload


class TestMultiSecondary:
    def test_invalid_count(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_secondaries=0)

    def test_all_secondaries_converge(self):
        cluster = Cluster(
            ClusterConfig(dedup=DedupConfig(chunk_size=64), num_secondaries=3)
        )
        workload = WikipediaWorkload(seed=71, target_bytes=150_000)
        cluster.run(workload.insert_trace())
        assert len(cluster.secondaries) == 3
        assert cluster.replicas_converged()

    def test_secondaries_store_identically(self):
        cluster = Cluster(
            ClusterConfig(dedup=DedupConfig(chunk_size=64), num_secondaries=2)
        )
        workload = WikipediaWorkload(seed=71, target_bytes=120_000)
        cluster.run(workload.insert_trace())
        first, second = cluster.secondaries
        assert first.db.stored_bytes == second.db.stored_bytes
        # Byte-identical storage forms, not just equal contents.
        for record_id, record in first.db.records.items():
            other = second.db.records[record_id]
            assert record.payload == other.payload
            assert record.base_id == other.base_id

    def test_network_bytes_scale_with_fanout(self):
        def run(n):
            cluster = Cluster(
                ClusterConfig(dedup=DedupConfig(chunk_size=64), num_secondaries=n)
            )
            workload = WikipediaWorkload(seed=71, target_bytes=120_000)
            result = cluster.run(workload.insert_trace())
            return result.network_bytes

        one = run(1)
        two = run(2)
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_independent_cursors(self):
        cluster = Cluster(
            ClusterConfig(
                dedup=DedupConfig(chunk_size=64),
                num_secondaries=2,
                oplog_batch_bytes=10_000_000,
            )
        )
        workload = WikipediaWorkload(seed=71, target_bytes=120_000)
        ops = list(workload.insert_trace())
        for op in ops:
            cluster.execute(op)
        # Sync only the first link; the second stays behind.
        cluster.links[0].sync()
        assert len(cluster.secondaries[0].db.records) == len(ops)
        assert len(cluster.secondaries[1].db.records) == 0
        cluster.links[1].sync()
        assert len(cluster.secondaries[1].db.records) == len(ops)
