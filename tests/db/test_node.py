"""Primary/secondary node behaviour."""

import pytest

from repro.core.config import DedupConfig
from repro.db.node import PrimaryNode
from repro.sim.clock import SimClock


@pytest.fixture()
def primary() -> PrimaryNode:
    return PrimaryNode(
        clock=SimClock(),
        config=DedupConfig(chunk_size=64, size_filter_enabled=False),
    )


class TestPrimaryInsert:
    def test_unique_insert_goes_raw_to_oplog(self, primary, document):
        primary.insert("db", "r0", document)
        entries = primary.oplog.entries()
        assert len(entries) == 1
        assert not entries[0].encoded
        assert entries[0].payload == document

    def test_revision_goes_forward_encoded(self, primary, revision_pair):
        source, target = revision_pair
        primary.insert("db", "v0", source)
        primary.insert("db", "v1", target)
        entry = primary.oplog.entries()[1]
        assert entry.encoded
        assert entry.base_id == "v0"
        assert len(entry.payload) < len(target) / 2

    def test_dedup_runs_off_critical_path(self, primary, revision_pair):
        source, target = revision_pair
        first = primary.insert("db", "v0", source)
        second = primary.insert("db", "v1", target)
        # Encode CPU is charged to background, not to client latency:
        # latencies are dominated by identical disk writes.
        assert second < first * 2
        assert primary.background_cpu_seconds > 0

    def test_writebacks_scheduled_not_applied(self, primary, revision_pair):
        source, target = revision_pair
        primary.insert("db", "v0", source)
        primary.insert("db", "v1", target)
        # Disk is busy right after the insert, so the delta waits.
        assert (
            len(primary.db.writeback_cache) >= 1
            or primary.db.writebacks_applied >= 1
        )

    def test_on_idle_flushes(self, primary, revision_pair):
        source, target = revision_pair
        primary.insert("db", "v0", source)
        primary.insert("db", "v1", target)
        primary.clock.advance(60.0)
        primary.on_idle()
        assert len(primary.db.writeback_cache) == 0

    def test_immediate_writeback_mode(self, revision_pair):
        node = PrimaryNode(
            clock=SimClock(),
            config=DedupConfig(chunk_size=64, size_filter_enabled=False),
            use_writeback_cache=False,
        )
        source, target = revision_pair
        node.insert("db", "v0", source)
        node.insert("db", "v1", target)
        assert node.db.writebacks_applied >= 1
        assert len(node.db.writeback_cache) == 0


class TestPrimaryReadPath:
    def test_read_latest_never_decodes(self, primary, revision_chain):
        for index, revision in enumerate(revision_chain):
            primary.insert("db", f"v{index}", revision)
        primary.clock.advance(60.0)
        primary.on_idle()
        tail = f"v{len(revision_chain) - 1}"
        assert primary.db.decode_cost(tail) == 0

    def test_inline_compression_charges_latency(self, document):
        plain = PrimaryNode(clock=SimClock(), dedup_enabled=False)
        inline = PrimaryNode(
            clock=SimClock(), dedup_enabled=False, inline_block_compression=True
        )
        base = plain.insert("db", "r", document)
        charged = inline.insert("db", "r", document)
        assert charged > base
