"""Oplog: sequencing, batching, wire sizes."""

import pytest

from repro.db.oplog import ENTRY_HEADER_BYTES, Oplog


class TestAppend:
    def test_sequencing(self):
        oplog = Oplog()
        first = oplog.append(0.0, "insert", "db", "r1", payload=b"abc")
        second = oplog.append(1.0, "insert", "db", "r2", payload=b"d")
        assert (first.seq, second.seq) == (0, 1)
        assert len(oplog) == 2

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            Oplog().append(0.0, "upsert", "db", "r")

    def test_wire_size(self):
        oplog = Oplog()
        entry = oplog.append(0.0, "insert", "db", "r", payload=b"12345")
        assert entry.wire_size == ENTRY_HEADER_BYTES + 5
        assert oplog.total_bytes == entry.wire_size

    def test_encoded_entry_fields(self):
        oplog = Oplog()
        entry = oplog.append(
            0.0, "insert", "db", "r2", payload=b"delta", base_id="r1", encoded=True
        )
        assert entry.encoded
        assert entry.base_id == "r1"


class TestSyncCursor:
    def test_take_unsynced_advances_cursor(self):
        oplog = Oplog()
        oplog.append(0.0, "insert", "db", "a", payload=b"1")
        oplog.append(0.0, "insert", "db", "b", payload=b"2")
        batch = oplog.take_unsynced()
        assert [entry.record_id for entry in batch] == ["a", "b"]
        assert oplog.take_unsynced() == []
        assert oplog.unsynced_bytes == 0

    def test_unsynced_bytes_counts_tail_only(self):
        oplog = Oplog()
        oplog.append(0.0, "insert", "db", "a", payload=b"123")
        oplog.take_unsynced()
        oplog.append(0.0, "delete", "db", "a")
        assert oplog.unsynced_bytes == ENTRY_HEADER_BYTES

    def test_entries_returns_copy(self):
        oplog = Oplog()
        oplog.append(0.0, "insert", "db", "a")
        entries = oplog.entries()
        entries.clear()
        assert len(oplog) == 1
