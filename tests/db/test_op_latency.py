"""Per-op latency histograms and first-class SLO events on the cluster."""

from __future__ import annotations

from repro.api import ClusterSpec, open_cluster
from repro.workloads.base import Operation
from repro.obs.registry import SLO_EVENTS_FAMILY


def _latency_children(cluster):
    return dict(cluster.registry.get("op_latency_seconds")._children)


class TestOpLatencyHistograms:
    def test_insert_and_read_land_in_labeled_children(self):
        client = open_cluster(ClusterSpec())
        cluster = client.cluster
        cluster.execute(Operation(kind="insert", database="acme",
                                  record_id="r1", content=b"x" * 500))
        cluster.execute(Operation(kind="read", database="acme",
                                  record_id="r1"))
        children = _latency_children(cluster)
        assert children[("insert", "acme")].count == 1
        assert children[("read", "acme")].count == 1
        assert children[("insert", "acme")].sum > 0.0

    def test_tenants_kept_apart(self):
        client = open_cluster(ClusterSpec())
        cluster = client.cluster
        for index, tenant in enumerate(("a", "b", "a")):
            cluster.execute(Operation(kind="insert", database=tenant,
                                      record_id=f"{tenant}/r{index}",
                                      content=b"y" * 200))
        children = _latency_children(cluster)
        assert children[("insert", "a")].count == 2
        assert children[("insert", "b")].count == 1

    def test_batch_insert_splits_latency_share(self):
        client = open_cluster(ClusterSpec(insert_batch_size=4))
        cluster = client.cluster
        ops = [
            Operation(kind="insert", database="db", record_id=f"e/{i}",
                      content=b"z" * 300)
            for i in range(4)
        ]
        latency = cluster.execute_insert_batch(ops)
        child = _latency_children(cluster)[("insert", "db")]
        assert child.count == 4
        assert child.sum == latency

    def test_sharded_registry_merges_histograms(self):
        client = open_cluster(ClusterSpec(shards=2))
        for index in range(8):
            client.cluster.execute(
                Operation(kind="insert", database="db",
                          record_id=f"e{index}/r", content=b"w" * 200)
            )
        snapshot = client.registry.snapshot()
        rows = snapshot["op_latency_seconds"]["values"]
        total = sum(row["count"] for row in rows)
        assert total == 8


class TestFailoverStallEvents:
    def test_promotion_wait_emits_failover_stall(self):
        client = open_cluster(ClusterSpec(num_secondaries=2))
        cluster = client.cluster
        cluster.execute(Operation(kind="insert", database="tenant1",
                                  record_id="e/1", content=b"v" * 300))
        cluster.primary.crash()
        cluster.execute(Operation(kind="insert", database="tenant1",
                                  record_id="e/2", content=b"v" * 300))
        events = dict(cluster.registry.get(SLO_EVENTS_FAMILY).items())
        assert events.get(("failover_stall", "tenant1"), 0) >= 1
        assert cluster.failover.stalled_ops >= 1

    def test_no_events_without_a_crash(self):
        client = open_cluster(ClusterSpec())
        cluster = client.cluster
        cluster.execute(Operation(kind="insert", database="t",
                                  record_id="e/1", content=b"v" * 100))
        assert cluster.registry.total(SLO_EVENTS_FAMILY) == 0.0
