"""Hash-sharded topology: routing, execution, observability, faults."""

import pytest

from repro.api import ClusterSpec, open_cluster
from repro.db.invariants import ClusterInvariantError, check_sharded_cluster
from repro.db.sharding import ShardedCluster, ShardRouter, locality_key
from repro.obs.export import metrics_document, validate_metrics_document
from repro.sim.faults import CorruptPageReads, DropBatches, FaultPlan
from repro.workloads import WikipediaWorkload
from repro.workloads.base import Operation


def sharded(**overrides) -> ShardedCluster:
    defaults = dict(shards=4, insert_batch_size=4)
    defaults.update(overrides)
    return open_cluster(ClusterSpec(**defaults)).cluster


class TestLocalityKey:
    def test_strips_last_segment(self):
        assert locality_key("wiki/7/41") == "wiki/7"
        assert locality_key("mail/123") == "mail"

    def test_id_without_separator_is_its_own_key(self):
        assert locality_key("solo") == "solo"


class TestShardRouter:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, placement="random")

    def test_placement_is_deterministic(self):
        first = ShardRouter(8)
        second = ShardRouter(8)
        ids = [f"wiki/{a}/{r}" for a in range(20) for r in range(5)]
        assert [first.shard_of(i) for i in ids] == [
            second.shard_of(i) for i in ids
        ]

    def test_hash_placement_spreads_entities(self):
        router = ShardRouter(4, placement="hash")
        shards = {router.shard_of(f"wiki/7/{rev}") for rev in range(40)}
        assert len(shards) > 1  # revisions of one article scatter

    def test_prefix_placement_pins_entities(self):
        router = ShardRouter(4, placement="prefix")
        shards = {router.shard_of(f"wiki/7/{rev}") for rev in range(40)}
        assert len(shards) == 1  # revisions of one article stay together

    def test_hash_placement_balances_load(self):
        router = ShardRouter(4, placement="hash")
        for index in range(2000):
            router.route(Operation("insert", "db", f"doc/{index}", b"x"))
        assert sum(router.counts) == 2000
        assert min(router.counts) > 0
        assert max(router.counts) / (2000 / 4) < 1.3

    def test_cross_shard_miss_accounting(self):
        router = ShardRouter(4, placement="hash")
        # Find an article whose revisions land on different shards.
        for article in range(50):
            ids = [f"wiki/{article}/{rev}" for rev in range(6)]
            if len({router.shard_of(i) for i in ids}) > 1:
                break
        before = router.cross_shard_misses
        for record_id in ids:
            router.route(Operation("insert", "db", record_id, b"x"))
        assert router.cross_shard_misses > before
        assert router.entities_tracked >= 1

    def test_prefix_placement_never_misses(self):
        router = ShardRouter(4, placement="prefix")
        for article in range(10):
            for rev in range(6):
                router.route(
                    Operation("insert", "db", f"wiki/{article}/{rev}", b"x")
                )
        assert router.cross_shard_misses == 0

    def test_reads_do_not_count_as_routed_inserts(self):
        router = ShardRouter(2)
        router.route(Operation("read", "db", "doc/1"))
        assert sum(router.counts) == 0


class TestShardedExecution:
    def test_records_land_on_their_routed_shard(self):
        cluster = sharded()
        workload = WikipediaWorkload(seed=9, target_bytes=120_000)
        cluster.run(workload.insert_trace())
        for index, shard in enumerate(cluster.shards):
            for record_id in shard.primary.db.records:
                assert cluster.router.shard_of(record_id) == index

    def test_run_counts_and_convergence(self):
        cluster = sharded()
        workload = WikipediaWorkload(seed=9, target_bytes=120_000)
        result = cluster.run(workload.insert_trace())
        assert result.inserts == sum(cluster.router.counts)
        assert result.operations == result.inserts
        assert cluster.replicas_converged()

    def test_shards_share_one_clock(self):
        cluster = sharded()
        clocks = {id(shard.clock) for shard in cluster.shards}
        assert clocks == {id(cluster.clock)}

    def test_batch_advances_clock_by_slowest_shard(self):
        cluster = sharded(shards=2)
        ops = [
            Operation("insert", "db", f"doc/{i}", bytes(200) * (i + 1))
            for i in range(8)
        ]
        before = cluster.clock.now
        latency = cluster.execute_insert_batch(ops)
        assert cluster.clock.now == pytest.approx(before + latency)

    def test_mixed_trace_reads_route_home(self):
        cluster = sharded()
        workload = WikipediaWorkload(seed=9, target_bytes=120_000)
        result = cluster.run(workload.mixed_trace())
        assert result.reads > 0
        assert sum(s.reads for s in cluster.shards) == result.reads

    def test_summary_stats_aggregates(self):
        cluster = sharded()
        workload = WikipediaWorkload(seed=9, target_bytes=120_000)
        cluster.run(workload.insert_trace())
        stats = cluster.summary_stats()
        assert stats["shards"] == 4
        assert len(stats["per_shard"]) == 4
        assert stats["records"] == sum(
            s["records"] for s in stats["per_shard"]
        )
        assert stats["cross_shard_misses"] == cluster.router.cross_shard_misses

    def test_checkpoint_truncates_every_shard(self, tmp_path):
        cluster = sharded()
        workload = WikipediaWorkload(seed=9, target_bytes=120_000)
        cluster.run(workload.insert_trace())
        assert cluster.checkpoint(tmp_path / "ckpt") > 0

    def test_scrub_reports_per_shard_nodes(self):
        cluster = sharded(shards=2)
        repaired = cluster.scrub()
        assert set(repaired) == {
            "shard0/primary", "shard0/secondary0",
            "shard1/primary", "shard1/secondary0",
        }


class TestShardedObservability:
    def test_merged_metrics_document_is_valid(self):
        cluster = sharded()
        workload = WikipediaWorkload(seed=9, target_bytes=120_000)
        cluster.run(workload.insert_trace())
        document = metrics_document(
            cluster.registry, None, meta={"test": "sharding"}
        )
        validate_metrics_document(document)
        families = document["metrics"]
        assert "shard" in families["dedup_records_seen_total"]["labels"]
        shards_seen = {
            row["labels"]["shard"]
            for row in families["dedup_records_seen_total"]["values"]
        }
        assert shards_seen == {"0", "1", "2", "3"}

    def test_router_counters_exported(self):
        cluster = sharded()
        workload = WikipediaWorkload(seed=9, target_bytes=120_000)
        cluster.run(workload.insert_trace())
        families = cluster.registry.snapshot()
        routed = sum(
            row["value"]
            for row in families["router_records_routed_total"]["values"]
        )
        assert routed == sum(cluster.router.counts)
        (miss_row,) = families["router_cross_shard_misses_total"]["values"]
        assert miss_row["value"] == cluster.router.cross_shard_misses

    def test_shared_tracer_annotates_shards(self):
        cluster = sharded(trace=True)
        cluster.execute_insert_batch([
            Operation("insert", "db", f"doc/{i}", b"x" * 300)
            for i in range(8)
        ])
        batch_spans = [
            span for span in cluster.tracer.roots
            if span.name == "op:insert_batch"
        ]
        assert len({span.annotations["shard"] for span in batch_spans}) > 1


class TestShardedInvariants:
    def test_clean_run_passes(self):
        cluster = sharded()
        workload = WikipediaWorkload(seed=9, target_bytes=120_000)
        cluster.run(workload.insert_trace())
        report = check_sharded_cluster(cluster)
        assert report.ok
        assert report.nodes_checked == 8
        assert report.convergence_checked

    def test_misplaced_record_detected(self):
        cluster = sharded()
        workload = WikipediaWorkload(seed=9, target_bytes=60_000)
        cluster.run(workload.insert_trace())
        # Teleport one record onto the wrong shard.
        donor = next(s for s in cluster.shards if s.primary.db.records)
        victim_id = next(iter(donor.primary.db.records))
        home = cluster.router.shard_of(victim_id)
        wrong = cluster.shards[(home + 1) % len(cluster.shards)]
        wrong.primary.insert("wiki", victim_id, b"smuggled")
        with pytest.raises(ClusterInvariantError) as err:
            check_sharded_cluster(cluster)
        assert any(
            v.check == "placement" for v in err.value.report.violations
        )

    def test_per_shard_violations_carry_shard_prefix(self):
        cluster = sharded(shards=2)
        workload = WikipediaWorkload(seed=9, target_bytes=60_000)
        cluster.run(workload.insert_trace())
        target = cluster.shards[1]
        victim = next(iter(target.secondary.db.records))
        del target.secondary.db.records[victim]
        report = check_sharded_cluster(cluster, strict=False)
        assert not report.ok
        assert all(
            violation.node.startswith("shard1/")
            for violation in report.violations
        )


class TestShardedFaults:
    def test_per_shard_fault_plans(self):
        cluster = sharded(shards=2)
        plans = {
            0: FaultPlan(
                seed=3,
                rules=[
                    DropBatches(probability=0.5),
                    CorruptPageReads(probability=0.2, sticky=True),
                ],
            )
        }
        cluster.install_fault_plans(plans)
        assert set(cluster.fault_plans) == {0}
        workload = WikipediaWorkload(seed=9, target_bytes=60_000)
        cluster.run(workload.insert_trace())
        assert cluster.fault_plans[0].injected > 0
        # Recovery machinery + drain leaves the topology clean.
        report = check_sharded_cluster(cluster)
        assert report.ok

    def test_unfaulted_shards_stay_untouched(self):
        cluster = sharded(shards=2)
        cluster.install_fault_plans({
            0: FaultPlan(seed=3, rules=[DropBatches(probability=0.5)])
        })
        assert cluster.shards[1].fault_plan is None
