"""Replication link: batching thresholds and byte accounting."""

import pytest

from repro.core.config import DedupConfig
from repro.db.node import PrimaryNode, SecondaryNode
from repro.db.replication import ReplicationLink
from repro.sim.clock import SimClock
from repro.sim.network import SimNetwork


@pytest.fixture()
def link():
    clock = SimClock()
    config = DedupConfig(chunk_size=64, size_filter_enabled=False)
    primary = PrimaryNode(clock=clock, config=config)
    secondary = SecondaryNode(clock=clock, config=config)
    network = SimNetwork(clock)
    return ReplicationLink(primary, secondary, network, batch_bytes=2000)


class TestBatching:
    def test_invalid_batch_bytes(self, link):
        with pytest.raises(ValueError):
            ReplicationLink(link.primary, link.secondary, link.network, 0)

    def test_below_threshold_no_ship(self, link):
        link.primary.insert("db", "r1", b"x" * 100)
        assert not link.maybe_sync()
        assert link.network.bytes_sent == 0

    def test_threshold_triggers_ship(self, link):
        link.primary.insert("db", "r1", b"x" * 3000)
        assert link.maybe_sync()
        assert link.batches_shipped == 1
        assert "r1" in link.secondary.db.records

    def test_sync_empty_is_noop(self, link):
        assert link.sync() == 0
        assert link.batches_shipped == 0

    def test_network_bytes_match_batch(self, link):
        link.primary.insert("db", "r1", b"y" * 500)
        shipped = link.sync()
        assert shipped == link.network.bytes_sent
        assert shipped >= 500

    def test_forward_encoded_entries_save_bandwidth(self, link, revision_chain):
        for index, revision in enumerate(revision_chain):
            link.primary.insert("db", f"v{index}", revision)
        shipped = link.sync()
        raw_total = sum(len(revision) for revision in revision_chain)
        assert shipped < raw_total / 2
        # Secondary holds every record with correct content.
        for index, revision in enumerate(revision_chain):
            content, _ = link.secondary.db.read("db", f"v{index}")
            assert content == revision
