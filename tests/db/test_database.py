"""Database CRUD + encoding-chain semantics (§4.1)."""

import pytest

from repro.cache.writeback import WriteBackEntry
from repro.db.database import Database
from repro.db.errors import RecordExists, RecordNotFound
from repro.db.record import RecordForm
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.instructions import serialize


@pytest.fixture()
def db() -> Database:
    return Database()


def backward_entry(base_content: bytes, target_content: bytes,
                   record_id: str, base_id: str, stored: int) -> WriteBackEntry:
    """Build a write-back entry re-encoding `record_id` against `base_id`."""
    delta = DeltaCompressor().compress(base_content, target_content)
    payload = serialize(delta)
    return WriteBackEntry(
        record_id=record_id, base_id=base_id, payload=payload,
        space_saving=stored - len(payload),
    )


@pytest.fixture()
def chained(db, revision_pair):
    """Two records with v0 backward-encoded against v1."""
    source, target = revision_pair
    db.insert("wiki", "v0", source)
    db.insert("wiki", "v1", target)
    entry = backward_entry(target, source, "v0", "v1", len(source))
    assert db.apply_writeback(entry)
    return source, target


class TestInsertRead:
    def test_insert_and_read(self, db, document):
        db.insert("db", "r1", document)
        content, latency = db.read("db", "r1")
        assert content == document
        assert latency > 0

    def test_duplicate_insert_rejected(self, db):
        db.insert("db", "r1", b"x")
        with pytest.raises(RecordExists):
            db.insert("db", "r1", b"y")

    def test_read_missing(self, db):
        content, _ = db.read("db", "nope")
        assert content is None


class TestWriteback:
    def test_writeback_encodes_record(self, db, chained):
        source, _ = chained
        record = db.records["v0"]
        assert record.form is RecordForm.DELTA
        assert record.base_id == "v1"
        assert db.records["v1"].ref_count == 1
        assert db.writebacks_applied == 1

    def test_encoded_record_reads_back(self, db, chained):
        source, _ = chained
        content, _ = db.read("wiki", "v0")
        assert content == source

    def test_storage_shrinks(self, db, revision_pair):
        source, target = revision_pair
        db.insert("wiki", "v0", source)
        db.insert("wiki", "v1", target)
        before = db.stored_bytes
        db.apply_writeback(
            backward_entry(target, source, "v0", "v1", len(source))
        )
        assert db.stored_bytes < before

    def test_writeback_skipped_for_missing_record(self, db):
        entry = WriteBackEntry("ghost", "base", b"x", 1)
        assert not db.apply_writeback(entry)

    def test_writeback_skipped_after_client_update(self, db, revision_pair):
        source, target = revision_pair
        db.insert("wiki", "v0", source)
        db.insert("wiki", "v1", target)
        # Simulate a referenced record taking a client update first.
        db.records["v0"].ref_count = 1
        db.update("v0", b"client wrote this")
        entry = backward_entry(target, source, "v0", "v1", len(source))
        assert not db.apply_writeback(entry)
        db.records["v0"].ref_count = 0

    def test_schedule_and_idle_flush(self, db, revision_pair):
        source, target = revision_pair
        db.insert("wiki", "v0", source)
        db.insert("wiki", "v1", target)
        db.schedule_writebacks(
            [backward_entry(target, source, "v0", "v1", len(source))]
        )
        assert len(db.writeback_cache) == 1
        # Disk busy right after the inserts: no flush.
        assert db.flush_writebacks_if_idle() == 0
        db.clock.advance(10.0)
        assert db.flush_writebacks_if_idle() == 1
        assert db.records["v0"].form is RecordForm.DELTA


class TestDecodeChains:
    def test_decode_cost(self, db, revision_chain):
        # Build a backward chain v0 <- v1 <- ... <- tail.
        for index, content in enumerate(revision_chain):
            db.insert("wiki", f"v{index}", content)
        for index in range(len(revision_chain) - 1):
            entry = backward_entry(
                revision_chain[index + 1], revision_chain[index],
                f"v{index}", f"v{index + 1}", len(revision_chain[index]),
            )
            db.apply_writeback(entry)
        tail = len(revision_chain) - 1
        assert db.decode_cost(f"v{tail}") == 0
        assert db.decode_cost("v0") == tail
        content, _ = db.read("wiki", "v0")
        assert content == revision_chain[0]

    def test_decode_cost_missing_record(self, db):
        with pytest.raises(RecordNotFound):
            db.decode_cost("ghost")


class TestUpdate:
    def test_update_unreferenced_rewrites_raw(self, db, chained):
        # v1 has ref_count 1 (v0 decodes from it); v0 has 0.
        db.update("v0", b"brand new content")
        record = db.records["v0"]
        assert record.form is RecordForm.RAW
        assert record.payload == b"brand new content"
        # v1 lost its reference.
        assert db.records["v1"].ref_count == 0

    def test_update_referenced_appends(self, db, chained):
        source, target = chained
        db.update("v1", b"newer text")
        record = db.records["v1"]
        assert record.pending_updates == [b"newer text"]
        content, _ = db.read("wiki", "v1")
        assert content == b"newer text"
        # Dependent still decodes through the retained payload.
        old, _ = db.read("wiki", "v0")
        assert old == source

    def test_update_missing_raises(self, db):
        with pytest.raises(RecordNotFound):
            db.update("ghost", b"x")

    def test_update_invalidates_pending_writeback(self, db, revision_pair):
        source, target = revision_pair
        db.insert("wiki", "v0", source)
        db.insert("wiki", "v1", target)
        db.schedule_writebacks(
            [backward_entry(target, source, "v0", "v1", len(source))]
        )
        db.update("v0", b"client update wins")
        assert "v0" not in db.writeback_cache
        content, _ = db.read("wiki", "v0")
        assert content == b"client update wins"


class TestDelete:
    def test_delete_unreferenced_removes(self, db):
        db.insert("db", "r", b"bye")
        db.delete("r")
        assert "r" not in db.records
        content, _ = db.read("db", "r")
        assert content is None

    def test_delete_referenced_tombstones(self, db, chained):
        source, _ = chained
        db.delete("v1")  # v1 is v0's decode base
        assert db.records["v1"].deleted
        content, _ = db.read("wiki", "v1")
        assert content is None  # client sees empty
        old, _ = db.read("wiki", "v0")
        assert old == source  # dependent still decodes

    def test_delete_missing_raises(self, db):
        with pytest.raises(RecordNotFound):
            db.delete("ghost")

    def test_tombstone_reaped_when_dependent_goes(self, db, chained):
        db.delete("v1")
        db.delete("v0")
        assert "v0" not in db.records
        assert "v1" not in db.records  # reaped transitively


class TestGarbageCollection:
    def test_read_splices_deleted_middle(self, db, revision_chain):
        contents = revision_chain[:3]
        for index, content in enumerate(contents):
            db.insert("wiki", f"v{index}", content)
        # Chain v0 <- v1 <- v2 (v2 raw).
        db.apply_writeback(
            backward_entry(contents[1], contents[0], "v0", "v1", len(contents[0]))
        )
        db.apply_writeback(
            backward_entry(contents[2], contents[1], "v1", "v2", len(contents[1]))
        )
        db.delete("v1")  # tombstoned: v0 depends on it
        assert db.records["v1"].deleted
        content, _ = db.read("wiki", "v0")
        assert content == contents[0]
        # The read spliced v0 directly onto v2 and reaped v1.
        assert db.records["v0"].base_id == "v2"
        assert "v1" not in db.records
        assert db.gc_splices == 1
        # And v0 still decodes correctly afterwards.
        again, _ = db.read("wiki", "v0")
        assert again == contents[0]

    def test_read_survives_consecutive_tombstones(self, db, revision_chain):
        # Chain v0 <- v1 <- v2 <- v3 with BOTH middles deleted: the
        # first splice can reap v1 (and cascade into v2) while the
        # stale chain list still names them; later iterations must skip
        # the reaped records instead of rewriting ghosts.
        contents = revision_chain[:4]
        for index, content in enumerate(contents):
            db.insert("wiki", f"v{index}", content)
        for index in range(3):
            db.apply_writeback(
                backward_entry(
                    contents[index + 1], contents[index],
                    f"v{index}", f"v{index + 1}", len(contents[index]),
                )
            )
        db.delete("v1")
        db.delete("v2")
        content, _ = db.read("wiki", "v0")
        assert content == contents[0]
        # A repeat read finishes the splice; both tombstones end reaped.
        content, _ = db.read("wiki", "v0")
        assert content == contents[0]
        assert db.records["v0"].base_id == "v3"
        assert "v1" not in db.records
        assert "v2" not in db.records
        for record in db.records.values():
            assert record.record_id in db.pages


class TestMeasurements:
    def test_logical_raw_bytes_tracks_live_records(self, db):
        db.insert("db", "a", b"12345")
        db.insert("db", "b", b"123")
        db.delete("b")
        assert db.logical_raw_bytes == 5
        assert db.live_records == 1

    def test_logical_bytes_uses_latest_update(self, db, chained):
        db.update("v1", b"xx")
        source, _ = chained
        assert db.logical_raw_bytes == len(source) + 2
