"""Snapshot persistence: byte-exact save/restore of encoded state."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.database import Database
from repro.db.record import RecordForm
from repro.db.snapshot import (
    dump_database,
    load_database,
    load_snapshot,
    save_snapshot,
)
from repro.workloads.wikipedia import WikipediaWorkload


@pytest.fixture()
def encoded_db():
    """A database with delta chains, a tombstone, and a pending update."""
    cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
    workload = WikipediaWorkload(seed=51, target_bytes=150_000, num_articles=1)
    ops = list(workload.insert_trace())
    for op in ops:
        cluster.execute(op)
    cluster.finalize()
    db = cluster.primary.db
    db.delete(ops[2].record_id)  # tombstone (referenced record)
    db.update(ops[-1].record_id, b"pending content " * 10)
    return db, ops


class TestRoundTrip:
    def test_contents_survive(self, encoded_db):
        db, ops = encoded_db
        restored = load_database(dump_database(db))
        for op in ops:
            original, _ = db.read(op.database, op.record_id)
            copy, _ = restored.read(op.database, op.record_id)
            assert copy == original

    def test_storage_form_preserved(self, encoded_db):
        db, _ = encoded_db
        restored = load_database(dump_database(db))
        assert restored.records.keys() == db.records.keys()
        for record_id, record in db.records.items():
            copy = restored.records[record_id]
            assert copy.form == record.form
            assert copy.payload == record.payload
            assert copy.base_id == record.base_id
            assert copy.ref_count == record.ref_count
            assert copy.deleted == record.deleted
            assert copy.pending_updates == record.pending_updates

    def test_stored_bytes_match(self, encoded_db):
        db, _ = encoded_db
        restored = load_database(dump_database(db))
        assert restored.stored_bytes == db.stored_bytes

    def test_file_roundtrip(self, encoded_db, tmp_path):
        db, ops = encoded_db
        path = tmp_path / "node.snapshot"
        size = save_snapshot(db, path)
        assert path.stat().st_size == size
        restored = load_snapshot(path)
        content, _ = restored.read(ops[0].database, ops[0].record_id)
        original, _ = db.read(ops[0].database, ops[0].record_id)
        assert content == original


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            load_database(b"XXXX\x01\x00")

    def test_bad_version(self):
        with pytest.raises(ValueError):
            load_database(b"DBDD\x09\x00")

    def test_truncated(self, encoded_db):
        db, _ = encoded_db
        blob = dump_database(db)
        with pytest.raises(ValueError):
            load_database(blob[: len(blob) // 2])

    def test_trailing_garbage(self, encoded_db):
        db, _ = encoded_db
        with pytest.raises(ValueError):
            load_database(dump_database(db) + b"junk")

    def test_refuses_nonempty_target(self, encoded_db):
        db, _ = encoded_db
        target = Database()
        target.insert("x", "existing", b"data")
        with pytest.raises(ValueError):
            load_database(dump_database(db), into=target)

    def test_empty_database_roundtrip(self):
        restored = load_database(dump_database(Database()))
        assert len(restored.records) == 0
