"""Cluster: end-to-end replication, convergence, measurements."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads.base import Operation
from repro.workloads.wikipedia import WikipediaWorkload


def dedup_cluster(**dedup_overrides) -> Cluster:
    defaults = dict(chunk_size=64)
    defaults.update(dedup_overrides)
    return Cluster(ClusterConfig(dedup=DedupConfig(**defaults)))


class TestBasicOperation:
    def test_insert_and_read(self):
        cluster = dedup_cluster()
        latency = cluster.execute(
            Operation(kind="insert", database="db", record_id="r1",
                      content=b"hello world " * 100)
        )
        assert latency > 0
        read_latency = cluster.execute(
            Operation(kind="read", database="db", record_id="r1")
        )
        assert read_latency > 0
        content, _ = cluster.primary.read("db", "r1")
        assert content == b"hello world " * 100

    def test_unknown_operation_rejected(self):
        cluster = dedup_cluster()
        with pytest.raises(ValueError):
            cluster.execute(Operation(kind="merge", database="db", record_id="r"))

    def test_update_and_delete_replicate(self):
        cluster = dedup_cluster()
        cluster.execute(Operation("insert", "db", "r1", b"original" * 50))
        cluster.execute(Operation("update", "db", "r1", b"updated" * 50))
        cluster.execute(Operation("delete", "db", "r1"))
        cluster.finalize()
        content, _ = cluster.secondary.db.read("db", "r1")
        assert content is None

    def test_idle_operation_advances_clock(self):
        cluster = dedup_cluster()
        before = cluster.clock.now
        cluster.execute(Operation(kind="idle", idle_seconds=2.0))
        assert cluster.clock.now == pytest.approx(before + 2.0, rel=0.01)


class TestReplication:
    def test_replicas_converge_on_wikipedia(self):
        cluster = dedup_cluster()
        workload = WikipediaWorkload(seed=11, target_bytes=300_000)
        cluster.run(workload.insert_trace())
        assert cluster.replicas_converged()

    def test_replication_traffic_compressed(self):
        cluster = dedup_cluster()
        workload = WikipediaWorkload(seed=11, target_bytes=300_000)
        result = cluster.run(workload.insert_trace())
        assert result.network_compression_ratio > 2.0

    def test_batching_defers_shipping(self):
        cluster = Cluster(
            ClusterConfig(
                dedup=DedupConfig(chunk_size=64),
                oplog_batch_bytes=10_000_000,  # never triggers mid-run
            )
        )
        cluster.execute(Operation("insert", "db", "r1", b"x" * 1000))
        assert len(cluster.secondary.db.records) == 0
        cluster.finalize()
        assert len(cluster.secondary.db.records) == 1

    def test_secondary_storage_matches_primary(self):
        cluster = dedup_cluster()
        workload = WikipediaWorkload(seed=12, target_bytes=200_000)
        cluster.run(workload.insert_trace())
        assert cluster.primary.db.stored_bytes == cluster.secondary.db.stored_bytes


class TestConfigurations:
    def test_dedup_disabled_baseline(self):
        cluster = Cluster(ClusterConfig(dedup_enabled=False))
        workload = WikipediaWorkload(seed=11, target_bytes=200_000)
        result = cluster.run(workload.insert_trace())
        assert result.storage_compression_ratio == pytest.approx(1.0, rel=0.01)
        assert result.index_memory_bytes == 0
        assert cluster.replicas_converged()

    def test_snappy_baseline_compresses_physically(self):
        cluster = Cluster(
            ClusterConfig(dedup_enabled=False, block_compression="snappy")
        )
        workload = WikipediaWorkload(seed=11, target_bytes=200_000)
        result = cluster.run(workload.insert_trace())
        assert result.physical_compression_ratio > 1.3
        assert result.storage_compression_ratio == pytest.approx(1.0, rel=0.01)

    def test_dedup_beats_baseline_storage(self):
        workload_args = dict(seed=11, target_bytes=300_000)
        dedup = dedup_cluster().run(
            WikipediaWorkload(**workload_args).insert_trace()
        )
        plain = Cluster(ClusterConfig(dedup_enabled=False)).run(
            WikipediaWorkload(**workload_args).insert_trace()
        )
        assert dedup.stored_bytes < plain.stored_bytes / 2

    def test_run_result_properties(self):
        cluster = dedup_cluster()
        result = cluster.run(
            WikipediaWorkload(seed=11, target_bytes=120_000).insert_trace()
        )
        assert result.operations == result.inserts
        assert result.duration_s > 0
        assert result.throughput_ops > 0
        assert result.latency_percentile(50) > 0
