"""Unit tests for the failover subsystem: checksums, divergence, election.

Everything cluster-shaped is built through the public API
(:func:`repro.api.open_cluster`); the ``.cluster`` escape hatch exposes
the internals under test.
"""

from __future__ import annotations

import pytest

from repro.api import ClusterSpec, NodeUnavailableError, open_cluster
from repro.db import FailoverConfig, divergence_point
from repro.db.oplog import Oplog


def make_cluster(**overrides):
    defaults = dict(num_secondaries=2, oplog_batch_bytes=1)
    defaults.update(overrides)
    return open_cluster(ClusterSpec(**defaults)).cluster


class TestEntryChecksum:
    def test_position_independent(self):
        first, second = Oplog(), Oplog()
        first.append(1.0, "insert", "db", "r1", b"payload")
        second.append(9.0, "insert", "db", "r1", b"payload")
        a, b = first.entry_at(0), second.entry_at(0)
        assert a.timestamp != b.timestamp
        assert a.checksum == b.checksum

    def test_sensitive_to_content_and_operation(self):
        log = Oplog()
        base = log.append(0.0, "insert", "db", "r1", b"payload")
        other_payload = Oplog().append(0.0, "insert", "db", "r1", b"payloaX")
        other_op = Oplog().append(0.0, "update", "db", "r1", b"payload")
        other_base = Oplog().append(
            0.0, "insert", "db", "r1", b"payload", base_id="r0", encoded=True
        )
        assert base.checksum != other_payload.checksum
        assert base.checksum != other_op.checksum
        assert base.checksum != other_base.checksum


class TestTruncateFrom:
    def _log(self, count: int) -> Oplog:
        log = Oplog()
        for index in range(count):
            log.append(0.0, "insert", "db", f"r{index}", b"x" * 10)
        return log

    def test_drops_suffix_and_returns_it(self):
        log = self._log(5)
        dropped = log.truncate_from(3)
        assert [entry.record_id for entry in dropped] == ["r3", "r4"]
        assert log.next_seq == 3
        assert log.entry_at(3) is None
        assert log.entry_at(2).record_id == "r2"

    def test_appends_counter_is_monotonic(self):
        log = self._log(5)
        log.truncate_from(2)
        assert len(log) == 2
        assert log.appends == 5
        log.append(0.0, "insert", "db", "again", b"y")
        assert log.appends == 6

    def test_noop_at_or_past_head(self):
        log = self._log(3)
        assert log.truncate_from(3) == []
        assert log.truncate_from(7) == []
        assert log.next_seq == 3

    def test_refuses_checkpointed_history(self):
        log = self._log(6)
        log.take_unsynced()
        log.truncate_before(4)
        with pytest.raises(ValueError, match="checkpoint"):
            log.truncate_from(2)

    def test_total_bytes_shrink(self):
        log = self._log(4)
        before = log.total_bytes
        dropped = log.truncate_from(1)
        assert log.total_bytes == before - sum(e.wire_size for e in dropped)


class TestDivergencePoint:
    def _fill(self, log: Oplog, ids) -> None:
        for record_id in ids:
            log.append(0.0, "insert", "db", record_id, record_id.encode())

    def test_identical_logs_agree_at_head(self):
        ours, theirs = Oplog(), Oplog()
        self._fill(ours, ["a", "b", "c"])
        self._fill(theirs, ["a", "b", "c"])
        assert divergence_point(ours, theirs) == 3

    def test_lagging_log_points_at_own_head(self):
        ours, theirs = Oplog(), Oplog()
        self._fill(ours, ["a", "b"])
        self._fill(theirs, ["a", "b", "c", "d"])
        assert divergence_point(ours, theirs) == 2

    def test_first_mismatch_wins(self):
        ours, theirs = Oplog(), Oplog()
        self._fill(ours, ["a", "b", "x", "y"])
        self._fill(theirs, ["a", "b", "c"])
        assert divergence_point(ours, theirs) == 2

    def test_no_overlap_needs_snapshot(self):
        ours, theirs = Oplog(), Oplog()
        self._fill(ours, ["a"])
        self._fill(theirs, ["a", "b", "c", "d", "e"])
        theirs.take_unsynced()
        theirs.truncate_before(3)
        assert divergence_point(ours, theirs) is None


class TestFailoverConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="heartbeat_interval_s"):
            FailoverConfig(heartbeat_interval_s=0)
        with pytest.raises(ValueError, match="failover_timeout_s"):
            FailoverConfig(heartbeat_interval_s=1.0, failover_timeout_s=0.5)
        with pytest.raises(ValueError, match="rejoin_delay_s"):
            FailoverConfig(rejoin_delay_s=-1)

    def test_spec_validates_at_construction(self):
        with pytest.raises(ValueError, match="failover_timeout_s"):
            ClusterSpec(heartbeat_interval_s=2.0, failover_timeout_s=0.1)


class TestElection:
    def test_most_caught_up_secondary_wins(self):
        # Nothing ships on its own (huge threshold); hand-sync replica 1
        # so it is strictly more caught up than replica 0 at the crash.
        cluster = make_cluster(oplog_batch_bytes=1 << 30)
        client_ops = [("db", f"e/{i}", b"v" * 200) for i in range(8)]
        for database, record_id, content in client_ops:
            cluster.primary.insert(database, record_id, content)
        cluster.links[1].sync()
        assert cluster.secondaries[1].oplog.next_seq > 0
        assert cluster.secondaries[0].oplog.next_seq == 0
        cluster.primary.crash()
        cluster.failover.settle()
        assert cluster.failover.failovers == 1
        assert cluster.primary.node_name == "secondary1"

    def test_tie_breaks_to_lowest_index(self):
        cluster = make_cluster()
        cluster.execute_insert_batch([])  # no-op; links stay at seq 0
        cluster.primary.crash()
        cluster.failover.settle()
        assert cluster.primary.node_name == "secondary0"

    def test_promoted_index_backlog_drains(self):
        cluster = make_cluster()
        for index in range(12):
            cluster.primary.insert("db", f"e/{index}", bytes([index]) * 300)
        for link in cluster.links:
            link.sync()
        cluster.primary.crash()
        cluster.failover.settle()
        assert cluster.primary.index_backlog_len == 0
        assert cluster.primary.engine is not None


class TestUnavailableErrors:
    def test_disabled_failover_raises_typed_error(self):
        cluster = make_cluster(failover_enabled=False)
        cluster.primary.crash()
        with pytest.raises(NodeUnavailableError) as caught:
            cluster.primary.insert("db", "r1", b"x")
        assert caught.value.retriable is True
        assert caught.value.node_name == "primary"

    def test_reads_and_mutations_guarded(self):
        cluster = make_cluster(failover_enabled=False)
        cluster.primary.insert("db", "r1", b"x")
        cluster.primary.crash()
        for method, args in [
            ("read", ("db", "r1")),
            ("update", ("db", "r1", b"y")),
            ("delete", ("db", "r1")),
        ]:
            with pytest.raises(NodeUnavailableError):
                getattr(cluster.primary, method)(*args)

    def test_crashed_secondary_not_shipped_to(self):
        cluster = make_cluster(oplog_batch_bytes=1 << 30)
        cluster.primary.insert("db", "r1", b"x" * 100)
        cluster.secondaries[0].crash()
        assert cluster.links[0].sync() == 0
        assert cluster.links[0].cursor == 0
        assert cluster.links[1].sync() > 0
