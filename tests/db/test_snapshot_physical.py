"""Snapshots restore onto any page-store backend, including the physical one."""

import pytest

from repro.db.database import Database
from repro.db.snapshot import dump_database, load_database
from repro.sim.clock import SimClock
from repro.sim.disk import SimDisk
from repro.storage.heapfile import HeapFileStore


@pytest.fixture()
def source_db(revision_chain):
    db = Database()
    for index, content in enumerate(revision_chain[:6]):
        db.insert("wiki", f"v{index}", content)
    return db


class TestSnapshotToPhysicalStore:
    def test_restore_into_heapfile_backed_database(self, source_db, revision_chain):
        clock = SimClock()
        disk = SimDisk(clock)
        target = Database(
            clock=clock, disk=disk,
            page_store=HeapFileStore(page_size=8192, disk=disk),
        )
        restored = load_database(dump_database(source_db), into=target)
        assert isinstance(restored.pages, HeapFileStore)
        for index, content in enumerate(revision_chain[:6]):
            actual, _ = restored.read("wiki", f"v{index}")
            assert actual == content

    def test_roundtrip_physical_to_accounting(self, revision_chain):
        clock = SimClock()
        disk = SimDisk(clock)
        physical = Database(
            clock=clock, disk=disk,
            page_store=HeapFileStore(page_size=8192, disk=disk),
        )
        for index, content in enumerate(revision_chain[:4]):
            physical.insert("wiki", f"v{index}", content)
        restored = load_database(dump_database(physical))
        for index, content in enumerate(revision_chain[:4]):
            actual, _ = restored.read("wiki", f"v{index}")
            assert actual == content
