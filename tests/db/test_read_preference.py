"""Secondary read preference: scale-out reads with stale fallback."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads.base import Operation
from repro.workloads.wikipedia import WikipediaWorkload


def cluster_with(read_preference: str, **kwargs) -> Cluster:
    return Cluster(
        ClusterConfig(
            dedup=DedupConfig(chunk_size=64),
            read_preference=read_preference,
            **kwargs,
        )
    )


class TestReadPreference:
    def test_invalid_preference_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(read_preference="nearest")

    def test_secondary_serves_synced_reads(self):
        cluster = cluster_with("secondary", oplog_batch_bytes=1)
        cluster.execute(Operation("insert", "db", "r1", b"payload " * 100))
        content, latency = cluster.read("db", "r1")
        assert content == b"payload " * 100
        assert cluster.secondary_reads == 1
        assert cluster.stale_read_fallbacks == 0
        assert latency > 0

    def test_unsynced_record_falls_back_to_primary(self):
        cluster = cluster_with("secondary", oplog_batch_bytes=10_000_000)
        cluster.execute(Operation("insert", "db", "r1", b"payload " * 100))
        content, _ = cluster.read("db", "r1")
        assert content == b"payload " * 100
        assert cluster.stale_read_fallbacks == 1

    def test_round_robin_across_secondaries(self):
        cluster = cluster_with("secondary", num_secondaries=3, oplog_batch_bytes=1)
        cluster.execute(Operation("insert", "db", "r1", b"data " * 50))
        for _ in range(6):
            cluster.read("db", "r1")
        assert cluster.secondary_reads == 6
        # Round robin touched every replica's disk.
        for secondary in cluster.secondaries:
            assert secondary.db.disk.reads >= 1

    def test_mixed_trace_under_secondary_reads(self):
        cluster = cluster_with("secondary", oplog_batch_bytes=4096)
        workload = WikipediaWorkload(seed=33, target_bytes=120_000)
        contents = {}
        for op in workload.mixed_trace():
            if op.kind == "insert":
                contents[op.record_id] = op.content
            cluster.execute(op)
        # Spot-check correctness through the preference path.
        for record_id, expected in list(contents.items())[:10]:
            content, _ = cluster.read("wikipedia", record_id)
            assert content == expected
        assert cluster.secondary_reads > 0

    def test_primary_preference_never_touches_secondaries(self):
        cluster = cluster_with("primary", oplog_batch_bytes=1)
        cluster.execute(Operation("insert", "db", "r1", b"data " * 50))
        cluster.read("db", "r1")
        assert cluster.secondary_reads == 0
