"""Decode-path caching: repeated old-version reads skip the chain walk."""

import pytest

from repro.cache.source_cache import SourceRecordCache
from repro.db.database import Database
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.instructions import serialize
from repro.cache.writeback import WriteBackEntry


@pytest.fixture()
def chained_db(revision_chain):
    cache = SourceRecordCache(1 << 20)
    db = Database(record_cache=cache)
    contents = revision_chain[:8]
    for index, content in enumerate(contents):
        db.insert("wiki", f"v{index}", content)
    compressor = DeltaCompressor()
    for index in range(len(contents) - 1):
        delta = compressor.compress(contents[index + 1], contents[index])
        db.schedule_writebacks(
            [
                WriteBackEntry(
                    record_id=f"v{index}",
                    base_id=f"v{index + 1}",
                    payload=serialize(delta),
                    space_saving=len(contents[index]),
                )
            ]
        )
    db.clock.advance(60)
    db.drain_writebacks()
    # Start from a cold cache so the first read pays the full walk.
    cache._lru.clear()
    return db, contents


class TestDecodeCache:
    def test_first_read_walks_chain(self, chained_db):
        db, contents = chained_db
        reads_before = db.disk.reads
        content, _ = db.read("wiki", "v0")
        assert content == contents[0]
        assert db.disk.reads - reads_before >= 7  # full chain walk

    def test_second_read_uses_cached_bases(self, chained_db):
        db, contents = chained_db
        db.read("wiki", "v0")
        reads_before = db.disk.reads
        content, _ = db.read("wiki", "v1")
        assert content == contents[1]
        # v2..tail were cached by the first walk: v1 decodes from the
        # cached v2 after a single disk fetch of itself.
        assert db.disk.reads - reads_before <= 2

    def test_cached_content_correct_after_update_invalidation(self, chained_db):
        db, contents = chained_db
        db.read("wiki", "v0")  # populates the cache along the chain
        db.update("v7", b"brand new tail content " * 20)
        content, _ = db.read("wiki", "v7")
        assert content == b"brand new tail content " * 20
