"""Page store: placement, updates, compression accounting."""

import pytest

from repro.compression.block import ZlibCompressor
from repro.db.pagestore import PageStore


class TestPlacement:
    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageStore(page_size=100)

    def test_records_fill_pages(self):
        store = PageStore(page_size=1024)
        for index in range(10):
            store.place(f"r{index}", b"x" * 400)
        # 2 records per 1KB page → 5 pages.
        assert store.page_count == 5

    def test_oversized_record_gets_own_page_run(self):
        store = PageStore(page_size=1024)
        store.place("big", b"y" * 5000)
        store.place("small", b"z" * 100)
        assert "big" in store
        assert store.logical_bytes == 5100

    def test_place_twice_updates(self):
        store = PageStore(page_size=1024)
        store.place("r", b"aaaa")
        store.place("r", b"bb")
        assert store.logical_bytes == 2


class TestUpdateRemove:
    def test_update_changes_logical_size(self):
        store = PageStore(page_size=1024)
        store.place("r", b"x" * 100)
        store.update("r", b"x" * 10)
        assert store.logical_bytes == 10

    def test_remove_reclaims_space(self):
        store = PageStore(page_size=1024)
        store.place("a", b"x" * 100)
        store.place("b", b"y" * 100)
        store.remove("a")
        assert store.logical_bytes == 100
        assert "a" not in store

    def test_remove_unknown_is_noop(self):
        PageStore(page_size=1024).remove("ghost")


class TestCompression:
    def test_physical_bytes_with_null_compressor(self):
        store = PageStore(page_size=1024)
        store.place("r", b"z" * 500)
        assert store.physical_bytes() == 500

    def test_physical_bytes_compresses_redundancy(self):
        store = PageStore(page_size=4096, compressor=ZlibCompressor())
        store.place("r", b"repetition " * 200)
        assert store.physical_bytes() < store.logical_bytes / 3

    def test_lazy_recompression_tracks_updates(self):
        store = PageStore(page_size=4096, compressor=ZlibCompressor())
        store.place("r", b"A" * 1000)
        first = store.physical_bytes()
        store.update("r", bytes(range(256)) * 4)
        second = store.physical_bytes()
        assert second != first

    def test_cached_when_clean(self):
        store = PageStore(page_size=4096, compressor=ZlibCompressor())
        store.place("r", b"text " * 100)
        assert store.physical_bytes() == store.physical_bytes()
