"""StoredRecord state model."""

from repro.db.record import RecordForm, StoredRecord


def make(payload=b"payload", **kwargs):
    defaults = dict(
        record_id="r", database="db", form=RecordForm.RAW, payload=payload,
        raw_size=len(payload),
    )
    defaults.update(kwargs)
    return StoredRecord(**defaults)


class TestStoredRecord:
    def test_stored_size_is_payload(self):
        assert make(payload=b"12345").stored_size == 5

    def test_stored_size_includes_pending_updates(self):
        record = make(payload=b"12345")
        record.pending_updates.append(b"abc")
        record.pending_updates.append(b"defg")
        assert record.stored_size == 12

    def test_is_raw(self):
        assert make().is_raw
        assert not make(form=RecordForm.DELTA, base_id="b").is_raw

    def test_current_content_pending_flag(self):
        record = make()
        assert not record.current_content_is_pending
        record.pending_updates.append(b"new")
        assert record.current_content_is_pending

    def test_defaults(self):
        record = make()
        assert record.ref_count == 0
        assert not record.deleted
        assert record.base_id is None
