"""Checkpointing: snapshot + oplog truncation + recovery from both."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.oplog import Oplog
from repro.db.recovery import replay_oplog
from repro.db.snapshot import load_snapshot
from repro.workloads.base import Operation
from repro.workloads.wikipedia import WikipediaWorkload


class TestOplogTruncation:
    def test_truncate_synced_prefix(self):
        oplog = Oplog()
        for index in range(5):
            oplog.append(0.0, "insert", "db", f"r{index}", payload=b"x")
        oplog.take_unsynced()
        dropped = oplog.truncate_before(3)
        assert dropped == 3
        assert oplog.truncated_before == 3
        assert [entry.seq for entry in oplog.entries()] == [3, 4]

    def test_seq_continues_after_truncation(self):
        oplog = Oplog()
        for index in range(3):
            oplog.append(0.0, "insert", "db", f"r{index}")
        oplog.take_unsynced()
        oplog.truncate_before(3)
        entry = oplog.append(0.0, "insert", "db", "r3")
        assert entry.seq == 3

    def test_refuses_cutting_unsynced_entries(self):
        # With the built-in single-consumer cursor in use, unshipped
        # entries are protected.
        oplog = Oplog()
        oplog.append(0.0, "insert", "db", "r0")
        oplog.take_unsynced()
        oplog.append(0.0, "insert", "db", "r1")  # not yet shipped
        with pytest.raises(ValueError):
            oplog.truncate_before(2)
        assert oplog.truncate_before(1) == 1

    def test_uncoordinated_log_truncates_freely(self):
        # Without any consumer, the caller owns coordination.
        oplog = Oplog()
        oplog.append(0.0, "insert", "db", "r0")
        assert oplog.truncate_before(1) == 1

    def test_cursor_into_truncated_region_rejected(self):
        oplog = Oplog()
        for index in range(4):
            oplog.append(0.0, "insert", "db", f"r{index}")
        oplog.take_unsynced()
        oplog.truncate_before(2)
        with pytest.raises(ValueError):
            oplog.entries_since(0)
        assert len(oplog.entries_since(2)) == 2

    def test_idempotent_truncation(self):
        oplog = Oplog()
        oplog.append(0.0, "insert", "db", "r0")
        oplog.take_unsynced()
        oplog.truncate_before(1)
        assert oplog.truncate_before(1) == 0


class TestClusterCheckpoint:
    def test_checkpoint_then_recover(self, tmp_path):
        cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
        workload = WikipediaWorkload(seed=44, target_bytes=120_000)
        ops = list(workload.insert_trace())
        midpoint = len(ops) // 2
        for op in ops[:midpoint]:
            cluster.execute(op)
        cluster.link.sync()
        path = tmp_path / "ckpt.snapshot"
        discarded = cluster.checkpoint(path)
        assert discarded > 0
        # More writes after the checkpoint.
        for op in ops[midpoint:]:
            cluster.execute(op)
        cluster.finalize()

        # Disaster: rebuild from snapshot + retained oplog tail.
        recovered = load_snapshot(path)
        tail = cluster.primary.oplog.entries()
        recovered, report = replay_oplog(tail, into=recovered)
        assert report.decode_failures == 0
        for op in ops:
            expected, _ = cluster.primary.db.read("wikipedia", op.record_id)
            actual, _ = recovered.read("wikipedia", op.record_id)
            assert actual == expected

    def test_checkpoint_respects_lagging_replica(self, tmp_path):
        cluster = Cluster(
            ClusterConfig(
                dedup=DedupConfig(chunk_size=64),
                num_secondaries=2,
                oplog_batch_bytes=10_000_000,
            )
        )
        for index in range(5):
            cluster.execute(
                Operation("insert", "db", f"r{index}", b"payload " * 50)
            )
        cluster.links[0].sync()  # replica 0 caught up; replica 1 lagging
        discarded = cluster.checkpoint(tmp_path / "c.snapshot")
        assert discarded == 0  # replica 1 still needs everything
        cluster.links[1].sync()
        assert cluster.checkpoint(tmp_path / "c2.snapshot") == 5
