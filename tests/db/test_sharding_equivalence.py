"""Property: a one-shard ShardedCluster IS the unsharded cluster.

The sharding layer promises that with ``shards=1`` every path — routing,
batch splitting, idle slicing, run accounting — degenerates to the plain
:class:`~repro.db.cluster.Cluster` behavior byte-for-byte. Hypothesis
drives both topologies with the same seeded workload and demands
identical run results, identical summary stats, and identical metrics
snapshots (modulo the ``shard`` label and the router's own families).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ClusterSpec, IndexSpec, open_cluster
from repro.db.sharding import ShardedCluster
from repro.workloads import make_workload

WORKLOADS = ("wikipedia", "enron")

#: Index variants the property must hold for: the default cuckoo index
#: and a budget-squeezed tiered index whose demote/promote churn must
#: stay deterministic across topologies.
INDEX_SPECS = (
    None,
    IndexSpec(kind="tiered", hot_bytes_budget=1024, promotion_hits=2),
)


def strip_shard_dimension(snapshot: dict) -> dict:
    """Remove the shard label and router families from a merged snapshot."""
    stripped = {}
    for name, family in snapshot.items():
        if name.startswith("router_"):
            continue
        family = dict(family)
        family["labels"] = [
            label for label in family["labels"] if label != "shard"
        ]
        family["values"] = [
            {
                **row,
                "labels": {
                    key: value
                    for key, value in row["labels"].items()
                    if key != "shard"
                },
            }
            for row in family["values"]
        ]
        stripped[name] = family
    return stripped


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    workload_name=st.sampled_from(WORKLOADS),
    batch_size=st.sampled_from((1, 3, 8)),
    trace_kind=st.sampled_from(("insert", "mixed")),
    index_spec=st.sampled_from(INDEX_SPECS),
)
def test_one_shard_topology_is_byte_identical(
    seed, workload_name, batch_size, trace_kind, index_spec
):
    spec = ClusterSpec(insert_batch_size=batch_size, index=index_spec)
    plain = open_cluster(spec).cluster
    sharded = ShardedCluster.from_spec(
        dataclasses.replace(spec, shards=1)
    )

    def trace():
        workload = make_workload(
            workload_name, seed=seed, target_bytes=40_000
        )
        return (
            workload.insert_trace()
            if trace_kind == "insert"
            else workload.mixed_trace()
        )

    plain_result = plain.run(trace())
    sharded_result = sharded.run(trace())

    assert sharded_result == plain_result
    assert sharded.clock.now == plain.clock.now

    plain_stats = plain.summary_stats()
    sharded_stats = sharded.summary_stats()
    for key, value in plain_stats.items():
        assert sharded_stats[key] == value, key

    assert strip_shard_dimension(sharded.metrics_snapshot()) == (
        plain.registry.snapshot()
    )

    assert sharded.replicas_converged() == plain.replicas_converged()
    assert sharded.router.cross_shard_misses == 0
