"""Oplog-batch compression on the replication link."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.workloads.wikipedia import WikipediaWorkload


def run_cluster(batch_compression: str, dedup_enabled: bool = True):
    config = ClusterConfig(
        dedup=DedupConfig(chunk_size=64),
        dedup_enabled=dedup_enabled,
        batch_compression=batch_compression,
    )
    cluster = Cluster(config)
    workload = WikipediaWorkload(seed=41, target_bytes=200_000)
    result = cluster.run(workload.insert_trace())
    return cluster, result


class TestBatchCompression:
    def test_compressed_batches_cut_wire_bytes(self):
        _, plain = run_cluster("none")
        _, compressed = run_cluster("snappy")
        assert compressed.network_bytes < plain.network_bytes

    def test_uncompressed_accounting_preserved(self):
        cluster, result = run_cluster("snappy")
        # The link records both sides of the batch compressor.
        assert cluster.link.uncompressed_bytes > result.network_bytes
        assert cluster.link.batches_shipped >= 1

    def test_secondary_still_converges(self):
        cluster, _ = run_cluster("snappy")
        assert cluster.replicas_converged()

    def test_composes_with_dedup(self):
        _, baseline = run_cluster("snappy", dedup_enabled=False)
        _, stacked = run_cluster("snappy", dedup_enabled=True)
        assert stacked.network_bytes < baseline.network_bytes

    def test_unknown_compressor_rejected(self):
        with pytest.raises(ValueError):
            Cluster(ClusterConfig(batch_compression="lzma"))
