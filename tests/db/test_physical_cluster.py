"""Full cluster on the slotted-page physical engine."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.storage.heapfile import HeapFileStore
from repro.workloads.wikipedia import WikipediaWorkload


@pytest.fixture()
def physical_cluster():
    return Cluster(
        ClusterConfig(
            dedup=DedupConfig(chunk_size=64),
            physical_storage=True,
            block_compression="zlib",
            page_size=8192,
        )
    )


class TestPhysicalCluster:
    def test_nodes_use_heapfile_store(self, physical_cluster):
        assert isinstance(physical_cluster.primary.db.pages, HeapFileStore)
        assert isinstance(physical_cluster.secondary.db.pages, HeapFileStore)

    def test_run_converges(self, physical_cluster):
        workload = WikipediaWorkload(seed=55, target_bytes=100_000)
        result = physical_cluster.run(workload.insert_trace())
        assert physical_cluster.replicas_converged()
        assert result.storage_compression_ratio > 1.5

    def test_physical_bytes_from_real_pages(self, physical_cluster):
        workload = WikipediaWorkload(seed=55, target_bytes=100_000)
        result = physical_cluster.run(workload.insert_trace())
        # Real page images include slack, but zlib squeezes the padding;
        # physical must still be well under raw.
        assert 0 < result.physical_bytes < result.logical_bytes

    def test_reads_decode_through_buffer_pool(self, physical_cluster):
        workload = WikipediaWorkload(
            seed=55, target_bytes=80_000, num_articles=1
        )
        ops = list(workload.insert_trace())
        for op in ops:
            physical_cluster.execute(op)
        physical_cluster.finalize()
        for op in ops:
            content, _ = physical_cluster.primary.read(
                op.database, op.record_id
            )
            assert content == op.content
        pool = physical_cluster.primary.db.pages.heap.pool
        assert pool.hits + pool.misses > 0
