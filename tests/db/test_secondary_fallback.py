"""Secondary decode-failure fallback (§4.1 footnote 4)."""

import pytest

from repro.core.config import DedupConfig
from repro.db.node import PrimaryNode, SecondaryNode
from repro.db.oplog import OplogEntry
from repro.sim.clock import SimClock


@pytest.fixture()
def nodes():
    clock = SimClock()
    config = DedupConfig(chunk_size=64, size_filter_enabled=False)
    primary = PrimaryNode(clock=clock, config=config)
    secondary = SecondaryNode(clock=clock, config=config)
    return primary, secondary


class TestFallback:
    def test_missing_base_falls_back_to_primary(self, nodes, revision_pair):
        primary, secondary = nodes
        source, target = revision_pair
        primary.insert("db", "v0", source)
        primary.insert("db", "v1", target)
        entries = primary.oplog.entries()
        assert entries[1].encoded
        # Deliver only the encoded entry: the secondary lacks its base and
        # must fetch the raw record from the primary instead.
        secondary.apply_batch([entries[1]], primary)
        assert secondary.decode_fallbacks == 1
        content, _ = secondary.db.read("db", "v1")
        assert content == target

    def test_fallback_of_missing_record_is_noop(self, nodes):
        primary, secondary = nodes
        entry = OplogEntry(
            seq=0, timestamp=0.0, op="insert", database="db",
            record_id="ghost", payload=b"\x01\x00\x05", base_id="nowhere",
            encoded=True,
        )
        secondary.apply_batch([entry], primary)
        assert secondary.decode_fallbacks == 1
        assert "ghost" not in secondary.db.records

    def test_normal_path_has_no_fallbacks(self, nodes, revision_chain):
        primary, secondary = nodes
        for index, revision in enumerate(revision_chain):
            primary.insert("db", f"v{index}", revision)
        secondary.apply_batch(primary.oplog.take_unsynced(), primary)
        assert secondary.decode_fallbacks == 0
        for index, revision in enumerate(revision_chain):
            content, _ = secondary.db.read("db", f"v{index}")
            assert content == revision
