"""Oplog-replay recovery."""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.oplog import OplogEntry
from repro.db.recovery import replay_oplog
from repro.workloads.base import Operation
from repro.workloads.wikipedia import WikipediaWorkload


@pytest.fixture()
def run_cluster():
    cluster = Cluster(ClusterConfig(dedup=DedupConfig(chunk_size=64)))
    workload = WikipediaWorkload(seed=61, target_bytes=150_000)
    ops = list(workload.insert_trace())
    for op in ops:
        cluster.execute(op)
    # Mix in an update and a delete so replay covers every op type.
    cluster.execute(Operation("update", "wikipedia", ops[0].record_id,
                              b"post-crash update " * 8))
    cluster.execute(Operation("delete", "wikipedia", ops[1].record_id))
    cluster.finalize()
    return cluster, ops


class TestReplay:
    def test_replay_reproduces_client_state(self, run_cluster):
        cluster, ops = run_cluster
        recovered, report = replay_oplog(cluster.primary.oplog.entries())
        assert report.decode_failures == 0
        for op in ops:
            expected, _ = cluster.primary.db.read("wikipedia", op.record_id)
            actual, _ = recovered.read("wikipedia", op.record_id)
            assert actual == expected
        assert report.applied == len(ops) + 2

    def test_replay_stores_raw(self, run_cluster):
        cluster, ops = run_cluster
        recovered, _ = replay_oplog(cluster.primary.oplog.entries())
        # Recovery deliberately skips storage re-encoding.
        assert all(record.is_raw or record.pending_updates
                   for record in recovered.records.values())

    def test_partial_log_prefix_is_consistent(self, run_cluster):
        cluster, ops = run_cluster
        entries = cluster.primary.oplog.entries()
        prefix = entries[: len(entries) // 2]
        recovered, report = replay_oplog(prefix)
        assert report.decode_failures == 0
        # Every record the prefix created reads back.
        for entry in prefix:
            if entry.op == "insert":
                content, _ = recovered.read(entry.database, entry.record_id)
                assert content is not None

    def test_dangling_operations_counted_not_fatal(self):
        entries = [
            OplogEntry(0, 0.0, "delete", "db", "never-existed"),
            OplogEntry(1, 0.0, "update", "db", "also-missing", payload=b"x"),
            OplogEntry(2, 0.0, "insert", "db", "ok", payload=b"fine"),
        ]
        recovered, report = replay_oplog(entries)
        assert report.skipped == 2
        assert report.applied == 1
        content, _ = recovered.read("db", "ok")
        assert content == b"fine"

    def test_missing_base_counted(self):
        entries = [
            OplogEntry(0, 0.0, "insert", "db", "child", payload=b"\x01\x00\x05",
                       base_id="ghost", encoded=True),
        ]
        recovered, report = replay_oplog(entries)
        assert report.decode_failures == 1
        assert len(recovered.records) == 0


class TestReplayReportPaths:
    """Every skipped / decode-failure branch of ``replay_oplog``."""

    def test_garbage_delta_payload_is_a_decode_failure(self):
        entries = [
            OplogEntry(0, 0.0, "insert", "db", "base", payload=b"base bytes"),
            OplogEntry(1, 0.0, "insert", "db", "child",
                       payload=b"\xff\xff not a delta", base_id="base",
                       encoded=True),
        ]
        recovered, report = replay_oplog(entries)
        assert report.decode_failures == 1
        assert report.applied == 1
        content, _ = recovered.read("db", "base")
        assert content == b"base bytes"
        assert "child" not in recovered.records

    def test_duplicate_insert_is_skipped_not_fatal(self):
        entries = [
            OplogEntry(0, 0.0, "insert", "db", "r", payload=b"first"),
            OplogEntry(1, 0.0, "insert", "db", "r", payload=b"second"),
        ]
        recovered, report = replay_oplog(entries)
        assert report.applied == 1
        assert report.skipped == 1
        content, _ = recovered.read("db", "r")
        assert content == b"first"

    def test_unknown_op_is_skipped(self):
        entries = [OplogEntry(0, 0.0, "noop", "db", "r", payload=b"")]
        _, report = replay_oplog(entries)
        assert report.skipped == 1
        assert report.applied == 0

    def test_encoded_entry_decodes_against_into_database(self):
        """A snapshot-seeded replay finds forward-delta bases in ``into``."""
        from repro.db.database import Database
        from repro.delta.dbdelta import DeltaCompressor
        from repro.delta.instructions import serialize

        base_content = b"the quick brown fox jumps over the lazy dog" * 8
        child_content = base_content.replace(b"lazy", b"sleepy")
        seeded = Database()
        seeded.insert("db", "base", base_content)
        forward = DeltaCompressor().compress(base_content, child_content)
        entries = [
            OplogEntry(0, 0.0, "insert", "db", "child",
                       payload=serialize(forward), base_id="base",
                       encoded=True),
        ]
        recovered, report = replay_oplog(entries, into=seeded)
        assert report.decode_failures == 0
        assert report.applied == 1
        content, _ = recovered.read("db", "child")
        assert content == child_content

    def test_mixed_failures_still_salvage_the_rest(self):
        entries = [
            OplogEntry(0, 0.0, "insert", "db", "a", payload=b"alpha"),
            OplogEntry(1, 0.0, "insert", "db", "b", payload=b"\x00",
                       base_id="ghost", encoded=True),   # missing base
            OplogEntry(2, 0.0, "delete", "db", "ghost"),  # missing target
            OplogEntry(3, 0.0, "update", "db", "a", payload=b"alpha v2"),
            OplogEntry(4, 0.0, "insert", "db", "a", payload=b"dup"),
        ]
        recovered, report = replay_oplog(entries)
        assert report.applied == 2
        assert report.skipped == 2
        assert report.decode_failures == 1
        content, _ = recovered.read("db", "a")
        assert content == b"alpha v2"
