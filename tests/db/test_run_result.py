"""RunResult measurement helpers."""

import pytest

from repro.db.cluster import RunResult


def make_result(latencies):
    return RunResult(
        operations=len(latencies),
        inserts=len(latencies),
        reads=0,
        duration_s=sum(latencies),
        latencies_s=list(latencies),
        logical_bytes=1000,
        stored_bytes=500,
        physical_bytes=250,
        network_bytes=400,
        index_memory_bytes=64,
    )


class TestRunResult:
    def test_ratios(self):
        result = make_result([0.01])
        assert result.storage_compression_ratio == 2.0
        assert result.physical_compression_ratio == 4.0
        assert result.network_compression_ratio == 2.5

    def test_throughput(self):
        result = make_result([0.5, 0.5])
        assert result.throughput_ops == pytest.approx(2.0)

    def test_latency_cdf_monotone_and_complete(self):
        latencies = [float(i) for i in range(1, 101)]
        result = make_result(latencies)
        cdf = result.latency_cdf(points=10)
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        assert len(cdf) <= 12

    def test_latency_cdf_empty(self):
        result = make_result([])
        assert result.latency_cdf() == []

    def test_latency_cdf_single_point(self):
        result = make_result([0.005])
        assert result.latency_cdf() == [(0.005, 1.0)]

    def test_zero_division_guards(self):
        result = RunResult(
            operations=0, inserts=0, reads=0, duration_s=0.0, latencies_s=[],
            logical_bytes=0, stored_bytes=0, physical_bytes=0,
            network_bytes=0, index_memory_bytes=0,
        )
        assert result.throughput_ops == 0.0
        assert result.storage_compression_ratio == 1.0
        assert result.network_compression_ratio == 1.0
