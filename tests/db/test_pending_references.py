"""Pending base references: the write-back/update race (regression).

Found by the cluster chaos property test: a record serving as the *base*
of a queued (unflushed) backward delta must not be rewritten in place by a
client update, or the delta later decodes against the wrong bytes. Queued
entries therefore hold a pending reference on their base, making client
updates append (§4.1 semantics) until the entry flushes or drops.
"""

import pytest

from repro.core.config import DedupConfig
from repro.db.cluster import Cluster, ClusterConfig
from repro.db.record import RecordForm
from repro.workloads.base import Operation
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator


@pytest.fixture()
def scenario():
    """Insert v0, derive v1 (write-back for v0 queued, base v1)."""
    import random

    cluster = Cluster(
        ClusterConfig(dedup=DedupConfig(chunk_size=64, size_filter_enabled=False))
    )
    rng = random.Random(3)
    text_gen = TextGenerator(seed=3)
    v0 = text_gen.document(4000).encode()
    v1 = revise(rng, text_gen, v0.decode(), num_edits=2).encode()
    cluster.execute(Operation("insert", "db", "v0", v0))
    cluster.execute(Operation("insert", "db", "v1", v1))
    db = cluster.primary.db
    assert "v0" in db.writeback_cache  # delta for v0 pending, base v1
    return cluster, db, v0, v1


class TestPendingReference:
    def test_base_holds_pending_reference(self, scenario):
        _, db, _, _ = scenario
        assert db.records["v1"].ref_count == 1

    def test_update_of_pending_base_appends(self, scenario):
        cluster, db, v0, _ = scenario
        cluster.execute(Operation("update", "db", "v1", b"client rewrite " * 30))
        record = db.records["v1"]
        assert record.pending_updates  # appended, original payload intact
        # Flush the queued delta and decode v0 through the retained payload.
        db.clock.advance(60)
        db.flush_writebacks_if_idle()
        assert db.records["v0"].form is RecordForm.DELTA
        content, _ = db.read("db", "v0")
        assert content == v0
        new_content, _ = db.read("db", "v1")
        assert new_content == b"client rewrite " * 30

    def test_flush_releases_pending_reference(self, scenario):
        _, db, _, _ = scenario
        db.clock.advance(60)
        db.flush_writebacks_if_idle()
        # Pending ref released; durable decode ref remains.
        assert db.records["v1"].ref_count == 1

    def test_drop_releases_pending_reference(self, scenario):
        _, db, _, _ = scenario
        db.writeback_cache.invalidate("v0")
        assert db.records["v1"].ref_count == 0

    def test_superseding_entry_swaps_reference(self, scenario):
        from repro.cache.writeback import WriteBackEntry

        cluster, db, v0, _ = scenario
        # A newer delta for v0 against a different base replaces the old
        # entry; the old base's pending ref moves accordingly.
        db.insert("db", "other-base", b"x" * 100)
        db.schedule_writebacks(
            [WriteBackEntry("v0", "other-base", b"\x00\x00", 10)]
        )
        assert db.records["v1"].ref_count == 0
        assert db.records["other-base"].ref_count == 1

    def test_delete_of_pending_base_defers(self, scenario):
        cluster, db, v0, _ = scenario
        cluster.execute(Operation("delete", "db", "v1"))
        assert db.records["v1"].deleted  # tombstoned, not removed
        db.clock.advance(60)
        db.flush_writebacks_if_idle()
        content, _ = db.read("db", "v0")
        assert content == v0
