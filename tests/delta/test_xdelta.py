"""Classic xDelta encoder: correctness and compression quality."""

import random

import pytest

from repro.delta.decode import apply_delta
from repro.delta.instructions import CopyInst, encoded_size
from repro.delta.xdelta import xdelta_compress


class TestCorrectness:
    def test_empty_target(self):
        assert xdelta_compress(b"source", b"") == []

    def test_empty_source(self):
        delta = xdelta_compress(b"", b"target bytes")
        assert apply_delta(b"", delta) == b"target bytes"

    def test_identical_inputs(self, document):
        delta = xdelta_compress(document, document)
        assert apply_delta(document, delta) == document
        # One big COPY (plus perhaps trivial overhead).
        assert encoded_size(delta) < 64

    def test_revision_pair_roundtrip(self, revision_pair):
        source, target = revision_pair
        delta = xdelta_compress(source, target)
        assert apply_delta(source, delta) == target

    def test_unrelated_inputs_roundtrip(self, rng):
        source = bytes(rng.randrange(256) for _ in range(3000))
        target = bytes(rng.randrange(256) for _ in range(3000))
        delta = xdelta_compress(source, target)
        assert apply_delta(source, delta) == target

    def test_short_inputs(self):
        delta = xdelta_compress(b"ab", b"abc")
        assert apply_delta(b"ab", delta) == b"abc"

    def test_invalid_block_width(self):
        with pytest.raises(ValueError):
            xdelta_compress(b"a" * 100, b"b" * 100, block_width=2)


class TestCompressionQuality:
    def test_small_edit_small_delta(self, revision_pair):
        source, target = revision_pair
        delta = xdelta_compress(source, target)
        # Dispersed small edits must compress far below the raw target.
        assert encoded_size(delta) < len(target) * 0.3

    def test_prepended_content(self, document):
        target = b"NEW HEADER " * 4 + document
        delta = xdelta_compress(document, target)
        assert apply_delta(document, delta) == target
        assert encoded_size(delta) < len(target) * 0.1

    def test_contains_copy_instructions(self, revision_pair):
        source, target = revision_pair
        delta = xdelta_compress(source, target)
        assert any(isinstance(inst, CopyInst) for inst in delta)

    def test_duplicated_source_region(self):
        source = b"A" * 100 + bytes(range(200)) + b"B" * 100
        target = bytes(range(200)) * 2
        delta = xdelta_compress(source, target)
        assert apply_delta(source, delta) == target
        assert encoded_size(delta) < len(target) * 0.5


class TestDeterminism:
    def test_same_inputs_same_delta(self, revision_pair):
        source, target = revision_pair
        assert xdelta_compress(source, target) == xdelta_compress(source, target)
