"""Delta compression on adversarial binary shapes (not just text)."""

import random
import struct

import pytest

from repro.delta.dbdelta import DeltaCompressor
from repro.delta.decode import apply_delta
from repro.delta.instructions import encoded_size
from repro.delta.reencode import delta_reencode
from repro.delta.xdelta import xdelta_compress


def roundtrip_both(src: bytes, tgt: bytes) -> None:
    for compress in (
        xdelta_compress,
        DeltaCompressor(anchor_interval=16).compress,
        DeltaCompressor(anchor_interval=64).compress,
    ):
        forward = compress(src, tgt)
        assert apply_delta(src, forward) == tgt
        backward = delta_reencode(src, forward)
        assert apply_delta(tgt, backward) == src


class TestBinaryShapes:
    def test_all_zero_buffers(self):
        roundtrip_both(b"\x00" * 5000, b"\x00" * 4000)

    def test_long_runs_with_edit(self):
        src = b"\xff" * 3000 + b"MARKER" + b"\xff" * 3000
        tgt = b"\xff" * 3000 + b"OTHER!" + b"\xff" * 3100
        roundtrip_both(src, tgt)

    def test_alternating_pattern(self):
        src = b"\xaa\x55" * 2000
        tgt = b"\x55\xaa" * 2000
        roundtrip_both(src, tgt)

    def test_struct_packed_records(self):
        rng = random.Random(1)
        rows_src = [struct.pack("<IdI", i, rng.random(), rng.getrandbits(32))
                    for i in range(500)]
        rows_tgt = list(rows_src)
        for _ in range(10):
            rows_tgt[rng.randrange(len(rows_tgt))] = struct.pack(
                "<IdI", 999, rng.random(), rng.getrandbits(32)
            )
        roundtrip_both(b"".join(rows_src), b"".join(rows_tgt))

    def test_src_prefix_of_tgt(self):
        src = bytes(range(256)) * 8
        roundtrip_both(src, src + b"appended tail" * 20)

    def test_tgt_prefix_of_src(self):
        src = bytes(range(256)) * 8
        roundtrip_both(src, src[:500])

    def test_reversed_content(self):
        src = bytes(range(256)) * 4
        roundtrip_both(src, src[::-1])

    def test_high_bytes_utf8ish(self):
        src = ("héllo wörld ünïcode " * 200).encode("utf-8")
        tgt = ("héllo wörld ünïcode " * 150).encode("utf-8") + "新しい内容".encode(
            "utf-8"
        ) * 30
        roundtrip_both(src, tgt)

    def test_single_byte_difference_mid_buffer(self):
        src = bytes(range(256)) * 16
        tgt = bytearray(src)
        tgt[2048] ^= 0xFF
        roundtrip_both(src, bytes(tgt))
        # xDelta (which probes every offset) must produce a tiny delta.
        # The anchor-sampled variant may degenerate on *periodic* input:
        # with only 256 distinct window checksums, possibly none matches
        # the anchor bit pattern — correct but uncompressed, the accepted
        # trade-off of content-defined sampling.
        assert encoded_size(xdelta_compress(src, bytes(tgt))) < 256

    def test_single_byte_difference_aperiodic(self):
        rng = random.Random(9)
        src = bytes(rng.randrange(256) for _ in range(4096))
        tgt = bytearray(src)
        tgt[2048] ^= 0xFF
        roundtrip_both(src, bytes(tgt))
        # On aperiodic data the sampled encoder finds anchors fine.
        delta = DeltaCompressor(anchor_interval=16).compress(src, bytes(tgt))
        assert encoded_size(delta) < 512

    def test_pathological_self_similarity(self):
        # One repeating chunk: the per-checksum offset cap must keep the
        # encoder from quadratic work, and correctness must hold.
        src = b"REPEAT!!" * 2000
        tgt = b"REPEAT!!" * 1999 + b"END."
        roundtrip_both(src, tgt)

    @pytest.mark.parametrize("size", [0, 1, 15, 16, 17])
    def test_window_boundary_sizes(self, size):
        src = bytes(range(size))
        tgt = bytes(reversed(range(size)))
        roundtrip_both(src, tgt)
