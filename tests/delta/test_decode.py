"""Delta decoding: bounds checking and exactness."""

import pytest

from repro.delta.decode import apply_delta
from repro.delta.instructions import CopyInst, InsertInst


class TestApplyDelta:
    def test_empty_delta(self):
        assert apply_delta(b"base", []) == b""

    def test_insert_only(self):
        assert apply_delta(b"", [InsertInst(b"abc")]) == b"abc"

    def test_copy_only(self):
        assert apply_delta(b"0123456789", [CopyInst(2, 4)]) == b"2345"

    def test_interleaved(self):
        delta = [InsertInst(b"<"), CopyInst(0, 3), InsertInst(b">")]
        assert apply_delta(b"ABCDEF", delta) == b"<ABC>"

    def test_copy_past_end_rejected(self):
        with pytest.raises(ValueError):
            apply_delta(b"short", [CopyInst(0, 10)])

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            apply_delta(b"base", [CopyInst(-1, 2)])

    def test_wrong_instruction_type_rejected(self):
        with pytest.raises(TypeError):
            apply_delta(b"base", ["garbage"])

    def test_copy_at_exact_boundary(self):
        assert apply_delta(b"abc", [CopyInst(0, 3)]) == b"abc"
        assert apply_delta(b"abc", [CopyInst(3, 0)]) == b""
