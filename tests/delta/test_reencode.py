"""Delta re-encoding (Algorithm 2): forward → backward transformation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.dbdelta import DeltaCompressor
from repro.delta.decode import apply_delta
from repro.delta.instructions import CopyInst, InsertInst, encoded_size
from repro.delta.reencode import delta_reencode
from repro.delta.xdelta import xdelta_compress


class TestReencode:
    def test_roundtrip_on_revision_pair(self, revision_pair):
        source, target = revision_pair
        forward = DeltaCompressor().compress(source, target)
        backward = delta_reencode(source, forward)
        assert apply_delta(target, backward) == source

    def test_roundtrip_on_xdelta_output(self, revision_pair):
        source, target = revision_pair
        forward = xdelta_compress(source, target)
        backward = delta_reencode(source, forward)
        assert apply_delta(target, backward) == source

    def test_insert_only_forward(self):
        # Unrelated inputs: forward is pure INSERT, backward must be the
        # whole source as literal.
        source = b"the original source bytes"
        forward = [InsertInst(b"completely new")]
        backward = delta_reencode(source, forward)
        assert apply_delta(b"completely new", backward) == source

    def test_identical_records(self, document):
        forward = DeltaCompressor().compress(document, document)
        backward = delta_reencode(document, forward)
        assert apply_delta(document, backward) == document

    def test_backward_size_comparable_to_forward(self, revision_pair):
        source, target = revision_pair
        forward = DeltaCompressor().compress(source, target)
        backward = delta_reencode(source, forward)
        # Both encode roughly the same difference.
        assert encoded_size(backward) < len(source) * 0.5

    def test_overlapping_copy_segments_trimmed(self):
        # Two forward copies overlapping in source space: Algorithm 2 must
        # trim, not double-count.
        source = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        forward = [
            CopyInst(0, 20),  # covers source [0, 20)
            CopyInst(10, 20),  # overlaps [10, 30)
        ]
        target = apply_delta(source, forward)
        backward = delta_reencode(source, forward)
        assert apply_delta(target, backward) == source

    def test_empty_forward(self):
        backward = delta_reencode(b"src", [])
        assert apply_delta(b"", backward) == b"src"


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=0, max_size=1500), st.binary(min_size=0, max_size=1500))
def test_property_reencode_inverts(source, target):
    forward = DeltaCompressor(anchor_interval=16).compress(source, target)
    assert apply_delta(source, forward) == target
    backward = delta_reencode(source, forward)
    assert apply_delta(target, backward) == source
