"""Reference (difflib) delta encoder, and quality comparison vs dbDelta."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.dbdelta import DeltaCompressor
from repro.delta.decode import apply_delta
from repro.delta.instructions import encoded_size
from repro.delta.reference import reference_compress


class TestReferenceCompress:
    def test_empty_target(self):
        assert reference_compress(b"src", b"") == []

    def test_empty_source(self):
        delta = reference_compress(b"", b"target")
        assert apply_delta(b"", delta) == b"target"

    def test_roundtrip_on_revision_pair(self, revision_pair):
        source, target = revision_pair
        delta = reference_compress(source, target)
        assert apply_delta(source, delta) == target

    def test_identical_inputs_single_copy(self, document):
        delta = reference_compress(document, document)
        assert apply_delta(document, delta) == document
        assert encoded_size(delta) < 32

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=800), st.binary(max_size=800))
    def test_property_roundtrip(self, source, target):
        delta = reference_compress(source, target)
        assert apply_delta(source, delta) == target


class TestQualityYardstick:
    def test_dbdelta_close_to_reference_on_revisions(self, revision_pair):
        """The anchor-sampled encoder must stay within 2x of the
        reference's delta size on the workload it is designed for."""
        source, target = revision_pair
        reference_size = encoded_size(reference_compress(source, target))
        sampled_size = encoded_size(
            DeltaCompressor(anchor_interval=64).compress(source, target)
        )
        assert sampled_size <= max(reference_size * 2.0, reference_size + 256)

    def test_reference_never_larger_than_insert_everything(self, revision_pair):
        source, target = revision_pair
        delta = reference_compress(source, target)
        assert encoded_size(delta) <= len(target) + 16
