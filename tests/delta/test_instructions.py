"""Delta instruction model: wire format, coalescing, sizes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.delta.instructions import (
    CopyInst,
    InsertInst,
    coalesce,
    deserialize,
    encoded_size,
    serialize,
    target_length,
)


class TestSerialization:
    def test_roundtrip_mixed(self):
        delta = [InsertInst(b"hello"), CopyInst(10, 42), InsertInst(b"")]
        # Note: empty INSERT survives serialization (coalesce drops it).
        assert deserialize(serialize(delta)) == delta

    def test_encoded_size_matches_serialize(self):
        delta = [InsertInst(b"x" * 100), CopyInst(1 << 20, 1 << 14)]
        assert encoded_size(delta) == len(serialize(delta))

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            deserialize(b"\x07\x01")

    def test_truncated_insert_rejected(self):
        payload = serialize([InsertInst(b"abcdef")])
        with pytest.raises(ValueError):
            deserialize(payload[:-2])

    def test_non_instruction_rejected(self):
        with pytest.raises(TypeError):
            serialize([b"not an instruction"])

    @given(
        st.lists(
            st.one_of(
                st.binary(max_size=64).map(InsertInst),
                st.tuples(
                    st.integers(0, 1 << 30), st.integers(0, 1 << 20)
                ).map(lambda t: CopyInst(*t)),
            ),
            max_size=30,
        )
    )
    def test_property_roundtrip(self, delta):
        assert deserialize(serialize(delta)) == delta


class TestTargetLength:
    def test_counts_both_kinds(self):
        delta = [InsertInst(b"abc"), CopyInst(0, 7)]
        assert target_length(delta) == 10


class TestCoalesce:
    def test_merges_adjacent_copies(self):
        delta = [CopyInst(0, 10), CopyInst(10, 5)]
        assert coalesce(delta) == [CopyInst(0, 15)]

    def test_non_contiguous_copies_kept(self):
        delta = [CopyInst(0, 10), CopyInst(11, 5)]
        assert coalesce(delta) == delta

    def test_merges_adjacent_inserts(self):
        delta = [InsertInst(b"ab"), InsertInst(b"cd")]
        assert coalesce(delta) == [InsertInst(b"abcd")]

    def test_drops_empty_instructions(self):
        delta = [InsertInst(b""), CopyInst(5, 0), InsertInst(b"x")]
        assert coalesce(delta) == [InsertInst(b"x")]

    def test_demotes_short_copy_with_base(self):
        base = b"0123456789abcdef"
        delta = [CopyInst(2, 3)]
        assert coalesce(delta, base=base) == [InsertInst(b"234")]

    def test_keeps_short_copy_without_base(self):
        delta = [CopyInst(2, 3)]
        assert coalesce(delta, base=None) == delta

    def test_demoted_copy_merges_with_neighbor_insert(self):
        base = b"0123456789"
        delta = [InsertInst(b"A"), CopyInst(0, 2)]
        assert coalesce(delta, base=base) == [InsertInst(b"A01")]

    @given(
        st.binary(min_size=16, max_size=200),
        st.lists(
            st.one_of(
                st.binary(max_size=20).map(InsertInst),
                st.tuples(st.integers(0, 10), st.integers(0, 6)).map(
                    lambda t: CopyInst(*t)
                ),
            ),
            max_size=15,
        ),
    )
    def test_property_coalesce_preserves_target(self, base, delta):
        from repro.delta.decode import apply_delta

        original = apply_delta(base, delta)
        normalized = coalesce(delta, base=base)
        assert apply_delta(base, normalized) == original
