"""Anchor-sampled delta compression (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.dbdelta import DeltaCompressor
from repro.delta.decode import apply_delta
from repro.delta.instructions import encoded_size
from repro.delta.xdelta import xdelta_compress


class TestValidation:
    def test_anchor_interval_power_of_two(self):
        with pytest.raises(ValueError):
            DeltaCompressor(anchor_interval=48)

    def test_window_minimum(self):
        with pytest.raises(ValueError):
            DeltaCompressor(window=2)


class TestCorrectness:
    @pytest.mark.parametrize("interval", [1, 16, 64, 256])
    def test_roundtrip_across_intervals(self, interval, revision_pair):
        source, target = revision_pair
        compressor = DeltaCompressor(anchor_interval=interval)
        delta = compressor.compress(source, target)
        assert apply_delta(source, delta) == target

    def test_empty_target(self):
        assert DeltaCompressor().compress(b"src", b"") == []

    def test_tiny_inputs_fall_back_to_insert(self):
        compressor = DeltaCompressor()
        delta = compressor.compress(b"ab", b"xyz")
        assert apply_delta(b"ab", delta) == b"xyz"

    def test_unrelated_inputs(self, text_gen):
        source = text_gen.document(3000).encode()
        target = text_gen.document(3000).encode()
        compressor = DeltaCompressor()
        delta = compressor.compress(source, target)
        assert apply_delta(source, delta) == target

    def test_deterministic(self, revision_pair):
        source, target = revision_pair
        compressor = DeltaCompressor()
        assert compressor.compress(source, target) == compressor.compress(
            source, target
        )

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=2000), st.binary(min_size=0, max_size=2000))
    def test_property_roundtrip_arbitrary(self, source, target):
        compressor = DeltaCompressor(anchor_interval=16)
        delta = compressor.compress(source, target)
        assert apply_delta(source, delta) == target


class TestAnchorTradeoff:
    def test_ratio_close_to_xdelta_at_small_interval(self, revision_pair):
        source, target = revision_pair
        xdelta_size = encoded_size(xdelta_compress(source, target))
        anchor_size = encoded_size(
            DeltaCompressor(anchor_interval=16).compress(source, target)
        )
        assert anchor_size <= xdelta_size * 1.5

    def test_larger_interval_never_better_ratio(self, revision_pair):
        # Fewer anchors can only lose matches, not gain them.
        source, target = revision_pair
        fine = encoded_size(
            DeltaCompressor(anchor_interval=16).compress(source, target)
        )
        coarse = encoded_size(
            DeltaCompressor(anchor_interval=256).compress(source, target)
        )
        assert coarse >= fine * 0.9  # allow small noise from match choices

    def test_still_compresses_at_default_interval(self, revision_pair):
        source, target = revision_pair
        delta = DeltaCompressor(anchor_interval=64).compress(source, target)
        assert encoded_size(delta) < len(target) * 0.5
