"""The API-boundary lint gate stays green and stays sharp."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "tools" / "check_api_boundary.py"

sys.path.insert(0, str(REPO_ROOT / "tools"))
from check_api_boundary import ALLOWED, BANNED, find_violations  # noqa: E402


class TestBoundary:
    def test_repo_is_clean(self):
        assert find_violations() == []

    def test_script_exits_zero(self):
        result = subprocess.run(
            [sys.executable, str(SCRIPT)], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_allowlist_entries_exist(self):
        # A migrated (deleted/renamed) file must leave the allowlist, so
        # the grandfathered set only ever shrinks.
        for relative in ALLOWED:
            assert (REPO_ROOT / relative).is_file(), relative

    def test_regex_catches_each_banned_form(self):
        banned = [
            "from repro.db.cluster import Cluster",
            "from repro.db import Cluster, Database",
            "from repro import Cluster",
            "from repro import ClusterConfig, Cluster",
            "import repro.db.cluster",
        ]
        for line in banned:
            assert BANNED.match(line), line

    def test_regex_permits_public_names(self):
        allowed = [
            "from repro.api import ClusterSpec, open_cluster",
            "from repro import ClusterSpec, open_cluster",
            "from repro.db.cluster import ClusterConfig, RunResult",
            "from repro.db.sharding import ShardedCluster",
        ]
        for line in allowed:
            assert not BANNED.match(line), line
