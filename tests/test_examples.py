"""Example scripts: keep every shipped example runnable.

Each example runs as a subprocess with the repo's interpreter; a broken
import, API drift, or an exception in any example fails the suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[s.stem for s in EXAMPLES])
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {script.stem for script in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 5
