"""Statistics helpers: Welford accumulator, percentiles, CDFs."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    RunningStats,
    cdf_points,
    histogram_quantile,
    percentile,
    weighted_cdf_points,
)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0

    def test_mean_and_variance_match_formulas(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = RunningStats()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_matches_batch_computation(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        mean = sum(values) / len(values)
        assert stats.mean == pytest.approx(mean, abs=1e-6)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    @given(st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=200))
    def test_variance_matches_two_pass_reference(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        mean = sum(values) / len(values)
        reference = sum((v - mean) ** 2 for v in values) / len(values)
        assert stats.variance == pytest.approx(reference, abs=1e-6)
        assert stats.stddev == pytest.approx(math.sqrt(reference), abs=1e-6)


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    @given(st.floats(0, 100))
    def test_single_element_is_its_own_percentile(self, pct):
        assert percentile([7.5], pct) == 7.5

    @given(
        st.lists(st.floats(0, 1e9), min_size=1, max_size=100),
        st.floats(0, 100),
    )
    def test_within_value_range(self, values, pct):
        result = percentile(values, pct)
        # Allow for float rounding in the interpolation.
        span = max(values) - min(values)
        epsilon = 1e-9 * (abs(max(values)) + span + 1.0)
        assert min(values) - epsilon <= result <= max(values) + epsilon


class TestCdf:
    def test_cdf_reaches_one(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points[-1][1] == pytest.approx(1.0)
        assert [value for value, _ in points] == [1.0, 2.0, 3.0]

    def test_cdf_empty(self):
        assert cdf_points([]) == []

    def test_weighted_cdf_respects_weights(self):
        points = weighted_cdf_points([1.0, 2.0], [1.0, 3.0])
        assert points[0] == (1.0, pytest.approx(0.25))
        assert points[1] == (2.0, pytest.approx(1.0))

    def test_weighted_cdf_zero_weight_total(self):
        assert weighted_cdf_points([1.0], [0.0]) == []

    def test_weighted_cdf_negative_weight_total(self):
        # A net-negative total has no meaningful CDF; treat like zero.
        assert weighted_cdf_points([1.0, 2.0], [1.0, -3.0]) == []

    def test_weighted_cdf_monotone(self):
        points = weighted_cdf_points([5.0, 1.0, 3.0], [2.0, 1.0, 4.0])
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)
        assert math.isclose(fractions[-1], 1.0)


class TestHistogramQuantile:
    BOUNDS = (1.0, 2.0, 5.0)

    def test_exact_bucket_boundary(self):
        # All mass in the (1, 2] bucket: q=1.0 lands exactly on the
        # bucket's upper bound, q=0.0 on its lower bound.
        counts = [0, 10, 0, 0]
        assert histogram_quantile(self.BOUNDS, counts, 1.0) == 2.0
        assert histogram_quantile(self.BOUNDS, counts, 0.0) == 1.0

    def test_single_bucket_mass_interpolates(self):
        counts = [0, 100, 0, 0]
        # Median of a bucket is its linear midpoint.
        assert histogram_quantile(self.BOUNDS, counts, 0.5) == pytest.approx(1.5)
        assert histogram_quantile(self.BOUNDS, counts, 0.25) == pytest.approx(1.25)

    def test_first_bucket_lower_edge_is_zero(self):
        counts = [4, 0, 0, 0]
        assert histogram_quantile(self.BOUNDS, counts, 0.5) == pytest.approx(0.5)

    def test_overflow_bucket_returns_inf(self):
        # 1% of mass beyond the last bound: p999 has no finite estimate.
        counts = [0, 990, 0, 10]
        assert math.isinf(histogram_quantile(self.BOUNDS, counts, 0.999))
        # ... but p50 is still finite.
        assert math.isfinite(histogram_quantile(self.BOUNDS, counts, 0.5))

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile(self.BOUNDS, [0, 0, 0, 0], 0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile(self.BOUNDS, [1, 2], 0.5)

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile(self.BOUNDS, [1, 0, 0, 0], 1.5)

    def test_quantiles_monotone_in_q(self):
        counts = [3, 7, 11, 0]
        values = [
            histogram_quantile(self.BOUNDS, counts, q)
            for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0)
        ]
        assert values == sorted(values)
