"""Varint codec: exact encodings, round trips, error handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.varint import decode_uvarint, encode_uvarint


class TestEncode:
    def test_zero_is_one_byte(self):
        assert encode_uvarint(0) == b"\x00"

    def test_single_byte_boundary(self):
        assert encode_uvarint(127) == b"\x7f"

    def test_two_byte_boundary(self):
        assert encode_uvarint(128) == b"\x80\x01"

    def test_known_multibyte_value(self):
        assert encode_uvarint(300) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_length_grows_with_magnitude(self):
        assert len(encode_uvarint(1 << 35)) == 6


class TestDecode:
    def test_returns_value_and_offset(self):
        assert decode_uvarint(b"\xac\x02rest") == (300, 2)

    def test_decode_at_offset(self):
        data = b"xx" + encode_uvarint(5000)
        value, end = decode_uvarint(data, 2)
        assert value == 5000
        assert end == len(data)

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"")


@given(st.integers(min_value=0, max_value=1 << 64))
def test_roundtrip(value):
    encoded = encode_uvarint(value)
    decoded, offset = decode_uvarint(encoded)
    assert decoded == value
    assert offset == len(encoded)


@given(st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=20))
def test_concatenated_stream_roundtrip(values):
    stream = b"".join(encode_uvarint(v) for v in values)
    out = []
    pos = 0
    while pos < len(stream):
        value, pos = decode_uvarint(stream, pos)
        out.append(value)
    assert out == values
