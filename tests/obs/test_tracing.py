"""Tracing: span trees, cost attribution, suppression, observers."""

from repro.obs.tracing import NOOP_SPAN, NULL_TRACER, Tracer, TracingObserver
from repro.sim.clock import SimClock


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("op:insert"):
            with tracer.span("stage:sketch"):
                pass
            with tracer.span("replicate"):
                with tracer.span("oplog_ship"):
                    pass
        (root,) = tracer.roots
        assert [child.name for child in root.children] == [
            "stage:sketch", "replicate",
        ]
        assert root.find("oplog_ship") is not None

    def test_sim_clock_stamps_spans(self):
        clock = SimClock()
        tracer = Tracer(clock)
        span = tracer.start_span("op")
        clock.advance(2.5)
        tracer.end_span(span)
        assert span.start_s == 0.0
        assert span.duration_s == 2.5

    def test_end_closes_dangling_children(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("inner")  # never explicitly ended
        tracer.end_span(outer)
        assert tracer.current is NOOP_SPAN
        assert outer.children[0].end_s is not None

    def test_costs_sum_up_the_subtree(self):
        tracer = Tracer()
        with tracer.span("op"):
            tracer.add_cost("cpu_s", 0.5)
            with tracer.span("child"):
                tracer.add_cost("cpu_s", 0.25)
                tracer.add_cost("disk_s", 1.0)
        (root,) = tracer.roots
        assert root.total_costs() == {"cpu_s": 0.75, "disk_s": 1.0}
        assert root.costs == {"cpu_s": 0.5}

    def test_cost_with_no_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.add_cost("disk_s", 1.0)  # must not raise
        assert tracer.roots == []

    def test_to_dict_round_trips_through_json(self):
        import json

        tracer = Tracer()
        with tracer.span("op", record_id="r1"):
            tracer.add_cost("cpu_s", 0.1)
        body = tracer.roots[0].to_dict()
        json.dumps(body)
        assert body["annotations"] == {"record_id": "r1"}
        assert body["costs"] == {"cpu_s": 0.1}


class TestDisabledAndSuppressed:
    def test_null_tracer_records_nothing(self):
        span = NULL_TRACER.start_span("anything")
        span.add_cost("cpu_s", 1.0)
        NULL_TRACER.end_span(span)
        assert span is NOOP_SPAN
        assert NULL_TRACER.roots == []

    def test_max_roots_caps_memory(self):
        tracer = Tracer(max_roots=2)
        for _ in range(5):
            with tracer.span("op"):
                with tracer.span("child"):
                    pass
        assert len(tracer.roots) == 2
        assert tracer.dropped_roots == 3
        # Suppression must unwind: children of dropped roots never leak
        # in as fresh roots.
        assert all(root.name == "op" for root in tracer.roots)


class TestTracingObserver:
    def test_stage_spans_with_cpu_and_drop_reason(self):
        class Ctx:
            record_id = "r1"

        tracer = Tracer()
        observer = TracingObserver(tracer)
        root = tracer.start_span("op:insert")
        observer.on_stage_start("sketch", Ctx())
        observer.on_stage_end("sketch", Ctx(), 0.25)
        observer.on_stage_start("source_select", Ctx())
        observer.on_drop("source_select", Ctx(), "no_candidate")
        observer.on_stage_end("source_select", Ctx(), 0.0)
        tracer.end_span(root)
        sketch = root.find("stage:sketch")
        select = root.find("stage:source_select")
        assert sketch.costs == {"cpu_s": 0.25}
        assert select.costs == {}
        assert select.annotations["drop_reason"] == "no_candidate"
