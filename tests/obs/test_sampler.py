"""Time-series sampler: cadence parsing and trigger behavior."""

import pytest

from repro.obs.registry import MetricsRegistry, slo_events_family
from repro.obs.sampler import TimeSeriesSampler, parse_sample_every
from repro.sim.clock import SimClock


class TestParseSampleEvery:
    def test_seconds(self):
        assert parse_sample_every("10s") == (10.0, None)
        assert parse_sample_every("0.5 sec") == (0.5, None)

    def test_ops(self):
        assert parse_sample_every("500ops") == (None, 500)
        assert parse_sample_every("1 op") == (None, 1)

    @pytest.mark.parametrize("bad", ["", "10", "fast", "10minutes", "-3s", "0s", "0ops"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_sample_every(bad)


class TestTriggers:
    def test_ops_trigger(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "ops")
        sampler = TimeSeriesSampler(reg, every_ops=3)
        for _ in range(7):
            sampler.note_op()
        assert len(sampler.samples) == 2
        assert [row["ops"] for row in sampler.samples] == [3, 6]

    def test_time_trigger_uses_sim_clock(self):
        clock = SimClock()
        reg = MetricsRegistry()
        sampler = TimeSeriesSampler(reg, clock=clock, every_seconds=10.0)
        sampler.note_op()
        assert sampler.samples == []
        clock.advance(10.0)
        row = sampler.note_op()
        assert row is not None
        assert row["t_s"] == 10.0

    def test_rows_carry_scalar_totals_not_histograms(self):
        reg = MetricsRegistry()
        reg.counter("seen_total", "seen").inc(4)
        reg.histogram("record_bytes", "sizes", buckets=(10,)).observe(3)
        sampler = TimeSeriesSampler(reg, every_ops=1)
        row = sampler.note_op()
        assert row["values"] == {"seen_total": 4}

    def test_metrics_filter(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "a").inc()
        reg.counter("b_total", "b").inc()
        sampler = TimeSeriesSampler(reg, every_ops=1, metrics=["a_total"])
        row = sampler.note_op()
        assert row["values"] == {"a_total": 1}

    def test_finalize_records_trailing_row_once(self):
        reg = MetricsRegistry()
        sampler = TimeSeriesSampler(reg, every_ops=10)
        for _ in range(4):
            sampler.note_op()
        sampler.finalize()
        sampler.finalize()  # idempotent when nothing new happened
        assert len(sampler.samples) == 1
        assert sampler.samples[0]["ops"] == 4

    def test_to_dict_shape(self):
        sampler = TimeSeriesSampler(MetricsRegistry(), every_ops=2)
        sampler.note_op()
        sampler.note_op()
        body = sampler.to_dict()
        assert body["every_ops"] == 2
        assert body["every_seconds"] is None
        assert len(body["samples"]) == 1


class TestSloEventRows:
    def _sampler_with_events(self):
        reg = MetricsRegistry()
        events = slo_events_family(reg)
        sampler = TimeSeriesSampler(reg, every_ops=100)
        return reg, events, sampler

    def test_event_increment_becomes_row(self):
        _reg, events, sampler = self._sampler_with_events()
        events.labels("admission_defer", "oltp").inc(3)
        sampler.note_op()
        (row,) = sampler.events
        assert row["event"] == "admission_defer"
        assert row["tenant"] == "oltp"
        assert row["count"] == 3

    def test_only_deltas_are_recorded(self):
        _reg, events, sampler = self._sampler_with_events()
        events.labels("backpressure_stall", "wiki").inc()
        sampler.note_op()
        sampler.note_op()  # no new events since the last op
        assert len(sampler.events) == 1
        events.labels("backpressure_stall", "wiki").inc(2)
        sampler.note_op()
        assert len(sampler.events) == 2
        assert sampler.events[-1]["count"] == 2

    def test_finalize_flushes_trailing_events(self):
        _reg, events, sampler = self._sampler_with_events()
        events.labels("failover_stall", "t1").inc()
        sampler.finalize()
        assert [row["event"] for row in sampler.events] == ["failover_stall"]

    def test_to_dict_includes_events(self):
        _reg, events, sampler = self._sampler_with_events()
        events.labels("admission_defer", "t").inc()
        sampler.finalize()
        body = sampler.to_dict()
        assert body["events"][0]["tenant"] == "t"
