"""Metrics registry: instruments, labels, collectors, snapshots."""

import math

import pytest

from repro.obs.registry import (
    BYTE_BUCKETS,
    LATENCY_BUCKETS_S,
    OP_LATENCY_BUCKETS_S,
    SLO_EVENTS_FAMILY,
    MetricsRegistry,
    slo_events_family,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("ops_total", "operations")
        assert reg.total("ops_total") == 0
        counter.inc()
        counter.inc(4)
        assert reg.total("ops_total") == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("x_total", "x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        first = reg.counter("ops_total", "operations")
        second = reg.counter("ops_total", "operations")
        assert first is second

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations")
        with pytest.raises(ValueError):
            reg.gauge("ops_total", "operations")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", ("node",))
        with pytest.raises(ValueError):
            reg.counter("ops_total", "operations", ("scope",))


class TestLabels:
    def test_children_are_independent(self):
        reg = MetricsRegistry()
        family = reg.counter("ops_total", "operations", ("node",))
        family.labels("primary").inc(3)
        family.labels("secondary0").inc(1)
        assert reg.value("ops_total", "primary") == 3
        assert reg.value("ops_total", "secondary0") == 1
        assert reg.total("ops_total") == 4

    def test_same_labels_same_child(self):
        family = MetricsRegistry().counter("x_total", "x", ("a", "b"))
        assert family.labels("1", "2") is family.labels("1", "2")

    def test_wrong_label_arity_rejected(self):
        family = MetricsRegistry().counter("x_total", "x", ("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth", "queue depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert reg.value("depth") == 12

    def test_can_go_negative(self):
        gauge = MetricsRegistry().gauge("delta", "net delta")
        gauge.dec(7)
        assert gauge.labels().value == -7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("record_bytes", "sizes", buckets=(10, 100))
        for value in (5, 50, 500):
            hist.observe(value)
        snapshot = hist.snapshot()["values"][0]
        assert snapshot["bucket_counts"] == [1, 1, 1]
        assert snapshot["count"] == 3
        assert snapshot["sum"] == 555

    def test_boundary_value_goes_in_lower_bucket(self):
        hist = MetricsRegistry().histogram("h", "h", buckets=(10,))
        hist.observe(10)
        assert hist.snapshot()["values"][0]["bucket_counts"] == [1, 0]

    def test_default_bucket_ladders_are_sorted(self):
        assert list(BYTE_BUCKETS) == sorted(BYTE_BUCKETS)
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)

    def test_histogram_rejects_collectors(self):
        hist = MetricsRegistry().histogram("h", "h", buckets=(10,))
        with pytest.raises(ValueError):
            hist.collect(lambda: {})


class TestCollectors:
    def test_collector_values_appear_at_read_time(self):
        reg = MetricsRegistry()
        native = {"count": 0}
        reg.counter("native_total", "external counter").collect(
            lambda: {(): native["count"]}
        )
        native["count"] = 42
        assert reg.total("native_total") == 42

    def test_collector_shadows_direct_child(self):
        reg = MetricsRegistry()
        family = reg.counter("x_total", "x")
        family.inc(5)
        family.collect(lambda: {(): 99})
        assert reg.total("x_total") == 99

    def test_later_collector_wins_per_key(self):
        reg = MetricsRegistry()
        family = reg.counter("x_total", "x", ("node",))
        family.collect(lambda: {("a",): 1})
        family.collect(lambda: {("a",): 2})
        assert reg.value("x_total", "a") == 2


class TestSnapshot:
    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", ("node",)).labels("p").inc(2)
        reg.gauge("depth", "queue depth").set(1)
        reg.histogram("h", "sizes", buckets=(10,)).observe(3)
        snapshot = reg.snapshot()
        json.dumps(snapshot)  # must be JSON-serializable as-is
        assert snapshot["ops_total"]["kind"] == "counter"
        assert snapshot["ops_total"]["values"][0]["labels"] == {"node": "p"}

    def test_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zz_total", "z")
        reg.counter("aa_total", "a")
        assert [f.name for f in reg.families()] == ["aa_total", "zz_total"]


class TestOpLatencyInstruments:
    def test_op_latency_buckets_cover_microseconds_to_seconds(self):
        assert OP_LATENCY_BUCKETS_S[0] == pytest.approx(1e-6)
        assert OP_LATENCY_BUCKETS_S[-1] == 100.0
        assert list(OP_LATENCY_BUCKETS_S) == sorted(OP_LATENCY_BUCKETS_S)

    def test_histogram_quantile_delegates(self):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "op_latency_seconds", "latency", buckets=(0.001, 0.01, 0.1)
        )
        for _ in range(99):
            hist.observe(0.005)
        hist.observe(0.05)
        assert 0.001 < hist.quantile(0.5) <= 0.01
        assert 0.01 < hist.quantile(0.999) <= 0.1

    def test_histogram_quantile_overflow_is_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_seconds", "h", buckets=(1.0,))
        hist.observe(5.0)
        assert math.isinf(hist.quantile(0.99))

    def test_slo_events_family_is_shared(self):
        reg = MetricsRegistry()
        first = slo_events_family(reg)
        second = slo_events_family(reg)
        assert first is second
        first.labels("admission_defer", "oltp").inc()
        assert reg.total(SLO_EVENTS_FAMILY) == 1

    def test_slo_events_labels(self):
        reg = MetricsRegistry()
        family = slo_events_family(reg)
        family.labels("failover_stall", "wiki").inc(3)
        ((key, value),) = family.items()
        assert key == ("failover_stall", "wiki")
        assert value == 3
