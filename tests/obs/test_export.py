"""Exporters: Prometheus text, JSON documents, validator, reconciliation."""

import json

from repro.obs.export import (
    METRICS_SET_SCHEMA_VERSION,
    SCHEMA_VERSION,
    SLO_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    check_metrics_payload,
    check_reconciliation,
    metrics_document,
    metrics_set_document,
    to_prometheus_text,
    trace_document,
    trace_set_document,
    validate_metrics_document,
    validate_slo_document,
    write_metrics_json,
)
from repro.obs.registry import MetricsRegistry, slo_events_family
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.tracing import Tracer


class TestPrometheusText:
    def test_counter_with_labels(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", ("node",)).labels("p").inc(3)
        text = to_prometheus_text(reg)
        assert "# HELP ops_total operations" in text
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{node="p"} 3' in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("sizes", "byte sizes", buckets=(10, 100))
        for value in (5, 50, 500):
            hist.observe(value)
        text = to_prometheus_text(reg)
        assert 'sizes_bucket{le="10"} 1' in text
        assert 'sizes_bucket{le="100"} 2' in text
        assert 'sizes_bucket{le="+Inf"} 3' in text
        assert "sizes_sum 555" in text
        assert "sizes_count 3" in text


class TestDocumentsAndValidation:
    def test_valid_document_passes(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "ops", ("scope",)).labels("_total").inc()
        reg.histogram("sizes", "sizes", buckets=(10,)).observe(5)
        sampler = TimeSeriesSampler(reg, every_ops=1)
        sampler.note_op()
        document = metrics_document(reg, sampler, meta={"seed": 7})
        assert document["schema"] == SCHEMA_VERSION
        assert validate_metrics_document(document) == []

    def test_json_round_trip_via_file(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("depth", "queue depth").set(2)
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), reg)
        loaded = json.loads(path.read_text())
        assert validate_metrics_document(loaded) == []
        assert check_metrics_payload(loaded) == []

    def test_rejects_non_object_and_bad_schema(self):
        assert validate_metrics_document([]) == [
            "document is not a JSON object"
        ]
        problems = validate_metrics_document(
            {"schema": "bogus/v9", "meta": {}, "metrics": {}}
        )
        assert any("schema" in p for p in problems)

    def test_rejects_malformed_family(self):
        document = {
            "schema": SCHEMA_VERSION,
            "meta": {},
            "metrics": {
                "x_total": {
                    "kind": "counter",
                    "labels": ["node"],
                    "values": [{"labels": {"zone": "a"}, "value": 1}],
                }
            },
        }
        problems = validate_metrics_document(document)
        assert any("do not match family labels" in p for p in problems)

    def test_rejects_short_bucket_counts(self):
        document = {
            "schema": SCHEMA_VERSION,
            "meta": {},
            "metrics": {
                "h": {
                    "kind": "histogram",
                    "labels": [],
                    "buckets": [10, 100],
                    "values": [
                        {
                            "labels": {},
                            "bucket_counts": [1, 2],  # needs 3 entries
                            "sum": 3.0,
                            "count": 3,
                        }
                    ],
                }
            },
        }
        problems = validate_metrics_document(document)
        assert any("bucket_counts" in p for p in problems)


def _scalar_family(labels, rows):
    return {
        "kind": "counter",
        "labels": labels,
        "values": [
            {"labels": dict(zip(labels, key)), "value": value}
            for key, value in rows.items()
        ],
    }


def _document(metrics):
    return {"schema": SCHEMA_VERSION, "meta": {}, "metrics": metrics}


class TestReconciliation:
    def test_balanced_pipeline_passes(self):
        document = _document(
            {
                "pipeline_stage_records_in_total": _scalar_family(
                    ["scope", "stage"], {("_total", "sketch"): 10}
                ),
                "pipeline_stage_records_out_total": _scalar_family(
                    ["scope", "stage"], {("_total", "sketch"): 8}
                ),
                "pipeline_drops_total": _scalar_family(
                    ["scope", "stage", "reason"],
                    {("_total", "sketch", "too_small"): 2},
                ),
            }
        )
        assert check_reconciliation(document) == []

    def test_leaky_stage_reported(self):
        document = _document(
            {
                "pipeline_stage_records_in_total": _scalar_family(
                    ["scope", "stage"], {("_total", "sketch"): 10}
                ),
                "pipeline_stage_records_out_total": _scalar_family(
                    ["scope", "stage"], {("_total", "sketch"): 7}
                ),
            }
        )
        problems = check_reconciliation(document)
        assert len(problems) == 1
        assert "in=10" in problems[0]

    def test_seen_must_equal_deduped_plus_unique(self):
        document = _document(
            {
                "dedup_records_seen_total": _scalar_family(
                    ["scope"], {("_total",): 10}
                ),
                "dedup_records_deduped_total": _scalar_family(
                    ["scope"], {("_total",): 6}
                ),
                "dedup_records_unique_total": _scalar_family(
                    ["scope"], {("_total",): 3}
                ),
            }
        )
        problems = check_reconciliation(document)
        assert len(problems) == 1
        assert "seen=10" in problems[0]

    def test_delivered_cannot_exceed_sent(self):
        document = _document(
            {
                "network_bytes_sent_total": _scalar_family([], {(): 100}),
                "network_bytes_delivered_total": _scalar_family(
                    [], {(): 150}
                ),
            }
        )
        problems = check_reconciliation(document)
        assert len(problems) == 1
        assert "bytes_delivered" in problems[0]


class TestBundles:
    def _single(self, value):
        reg = MetricsRegistry()
        reg.counter("ops_total", "ops").inc(value)
        return reg

    def test_metrics_set_document_and_dispatch(self):
        bundle = metrics_set_document(
            [("a", self._single(1), None), ("b", self._single(2), None)],
            meta={"experiment": "fig11"},
        )
        assert bundle["schema"] == METRICS_SET_SCHEMA_VERSION
        assert [run["meta"]["label"] for run in bundle["runs"]] == ["a", "b"]
        assert check_metrics_payload(bundle) == []

    def test_bundle_problems_are_prefixed_with_run_label(self):
        bundle = metrics_set_document([("dead", self._single(1), None)])
        del bundle["runs"][0]["metrics"]
        problems = check_metrics_payload(bundle)
        assert problems
        assert all(p.startswith("runs[0] (dead): ") for p in problems)

    def test_trace_documents(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        document = trace_document(tracer)
        assert document["schema"] == TRACE_SCHEMA_VERSION
        assert len(document["roots"]) == 1
        bundle = trace_set_document([("run-1", tracer)])
        assert bundle["runs"][0]["label"] == "run-1"


def _minimal_slo_document(**overrides):
    document = {
        "schema": SLO_SCHEMA_VERSION,
        "meta": {"seed": 7, "slo_p99_s": 0.06},
        "scenarios": [
            {
                "label": "shards=1/inline",
                "topology": {"shards": 1, "admission_mode": "inline"},
                "base_rate_ops_s": 120.0,
                "max_sustainable_rate_ops_s": 120.0,
                "events": {"admission_defer": 0},
                "tenants": {
                    "oltp": {
                        "ops": 10,
                        "p50_s": 0.004,
                        "p99_s": 0.04,
                        "p999_s": None,
                    }
                },
            }
        ],
        "comparisons": None,
    }
    document.update(overrides)
    return document


class TestSloValidation:
    def test_minimal_bundle_passes(self):
        assert validate_slo_document(_minimal_slo_document()) == []
        assert check_metrics_payload(_minimal_slo_document()) == []

    def test_dispatch_by_schema(self):
        problems = check_metrics_payload({"schema": "nope/v9"})
        assert problems and "schema" in problems[0]

    def test_missing_scenarios_rejected(self):
        problems = validate_slo_document(
            _minimal_slo_document(scenarios=[])
        )
        assert problems

    def test_non_numeric_quantile_rejected(self):
        document = _minimal_slo_document()
        document["scenarios"][0]["tenants"]["oltp"]["p99_s"] = "slow"
        assert validate_slo_document(document)

    def test_null_max_rate_allowed(self):
        document = _minimal_slo_document()
        document["scenarios"][0]["max_sustainable_rate_ops_s"] = None
        assert validate_slo_document(document) == []

    def test_embedded_metrics_revalidated_with_prefix(self):
        document = _minimal_slo_document()
        document["scenarios"][0]["metrics"] = {"schema": "bogus"}
        problems = validate_slo_document(document)
        assert problems
        assert any("shards=1/inline" in problem for problem in problems)

    def test_series_event_rows_validated(self):
        reg = MetricsRegistry()
        events = slo_events_family(reg)
        sampler = TimeSeriesSampler(reg, every_ops=1)
        events.labels("admission_defer", "oltp").inc()
        sampler.note_op()
        document = metrics_document(reg, sampler)
        assert validate_metrics_document(document) == []
        assert document["series"]["events"][0]["event"] == "admission_defer"

    def test_malformed_series_events_rejected(self):
        reg = MetricsRegistry()
        sampler = TimeSeriesSampler(reg, every_ops=1)
        sampler.note_op()
        document = metrics_document(reg, sampler)
        document["series"]["events"] = [{"count": 1}]  # no "event" key
        assert validate_metrics_document(document)
