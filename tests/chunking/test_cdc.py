"""Content-defined chunking invariants, parametrized over both lanes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking.cdc import (
    CHUNKER_IMPLS,
    ContentDefinedChunker,
    normalized_masks,
)
from repro.workloads.text import TextGenerator

LANES = ("scalar", "vectorized")


def random_bytes(n: int, seed: int = 1) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


class TestValidation:
    def test_avg_size_power_of_two(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=100)

    def test_min_le_avg_le_max(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=256, min_size=512)
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=256, max_size=128)

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=256, impl="simd")

    def test_auto_resolves_to_vectorized(self):
        chunker = ContentDefinedChunker(avg_size=256, impl="auto")
        assert chunker.resolved_impl == "vectorized"
        assert "auto" in CHUNKER_IMPLS

    def test_normalized_masks_shape(self):
        strict, loose = normalized_masks(64)
        # avg=2^6: strict spends 8 bits, loose 4 — strict ⊂ loose matches.
        assert strict == 0xFF and loose == 0x0F
        assert strict & loose == loose


@pytest.mark.parametrize("impl", LANES)
class TestChunking:
    def test_empty_input(self, impl):
        chunker = ContentDefinedChunker(avg_size=256, impl=impl)
        assert chunker.chunks(b"") == []
        assert chunker.boundaries(b"") == []

    def test_concatenation_restores_input(self, impl):
        data = random_bytes(20_000)
        chunker = ContentDefinedChunker(avg_size=256, impl=impl)
        assert b"".join(c.data for c in chunker.chunks(data)) == data

    def test_chunk_offsets_consistent(self, impl):
        data = random_bytes(5000, seed=3)
        for chunk in ContentDefinedChunker(avg_size=128, impl=impl).chunks(data):
            assert chunk.data == data[chunk.start : chunk.end]
            assert len(chunk) == chunk.end - chunk.start

    def test_low_entropy_input_hits_max_size(self, impl):
        # Constant data produces one hash everywhere; the max clamp must
        # force boundaries.
        data = b"\x00" * 10_000
        chunker = ContentDefinedChunker(avg_size=256, impl=impl)
        sizes = [len(c) for c in chunker.chunks(data)]
        assert max(sizes) <= chunker.max_size
        assert b"".join(c.data for c in chunker.chunks(data)) == data

    def test_boundary_shift_invariance(self, impl):
        # Prepending data only disturbs chunks near the edit: boundaries in
        # the untouched tail reappear at shifted offsets.
        data = random_bytes(30_000, seed=5)
        chunker = ContentDefinedChunker(avg_size=256, impl=impl)
        original = set(chunker.boundaries(data))
        prefix = b"PREFIXPREFIX"
        shifted = set(
            boundary - len(prefix)
            for boundary in chunker.boundaries(prefix + data)
        )
        tail = {b for b in original if b > 2000}
        shared = tail & shifted
        assert len(shared) / len(tail) > 0.8

    def test_deterministic(self, impl):
        data = random_bytes(10_000, seed=6)
        chunker = ContentDefinedChunker(avg_size=512, impl=impl)
        assert chunker.boundaries(data) == chunker.boundaries(data)

    @settings(max_examples=25)
    @given(data=st.binary(min_size=0, max_size=5000))
    def test_property_partition(self, impl, data):
        chunker = ContentDefinedChunker(avg_size=64, impl=impl)
        boundaries = chunker.boundaries(data)
        if data:
            assert boundaries[-1] == len(data)
            assert boundaries == sorted(set(boundaries))
        assert b"".join(c.data for c in chunker.chunks(data)) == data


@pytest.mark.parametrize("impl", LANES)
class TestSizeDistribution:
    """Chunk-size distribution properties, identical across lanes."""

    def test_size_bounds_respected(self, impl):
        data = random_bytes(50_000, seed=2)
        chunker = ContentDefinedChunker(avg_size=256, impl=impl)
        sizes = [len(c) for c in chunker.chunks(data)]
        assert all(s <= chunker.max_size for s in sizes)
        # Every chunk except the last respects the minimum.
        assert all(s >= chunker.min_size for s in sizes[:-1])

    def test_boundaries_strictly_increasing_and_cover(self, impl):
        data = random_bytes(40_000, seed=8)
        chunker = ContentDefinedChunker(avg_size=128, impl=impl)
        cuts = chunker.boundaries(data)
        assert all(a < b for a, b in zip(cuts, cuts[1:]))
        assert cuts[-1] == len(data)
        chunks = chunker.chunks(data)
        assert chunks[0].start == 0
        assert all(
            a.end == b.start for a, b in zip(chunks, chunks[1:])
        )

    def test_average_size_near_target(self, impl):
        data = random_bytes(200_000, seed=4)
        chunker = ContentDefinedChunker(avg_size=256, impl=impl)
        sizes = [len(c) for c in chunker.chunks(data)]
        average = sum(sizes) / len(sizes)
        # Normalized chunking concentrates the distribution around the
        # target; allow generous slack on either side.
        assert 128 < average < 512

    def test_normalization_tightens_spread(self, impl):
        # The strict/loose mask pair should keep most cuts inside
        # [min, 2*avg] on random data — the point of normalized chunking.
        data = random_bytes(200_000, seed=9)
        chunker = ContentDefinedChunker(avg_size=256, impl=impl)
        sizes = [len(c) for c in chunker.chunks(data)][:-1]
        inside = sum(1 for s in sizes if s <= 2 * chunker.avg_size)
        assert inside / len(sizes) > 0.9

    def test_text_corpus_mean_near_target(self, impl):
        data = TextGenerator(seed=31).document(150_000).encode()
        chunker = ContentDefinedChunker(avg_size=64, impl=impl)
        sizes = [len(c) for c in chunker.chunks(data)]
        average = sum(sizes) / len(sizes)
        assert 32 < average < 128


class TestExactBoundaries:
    """Regression pins: exact boundary lists for crafted inputs.

    These freeze the chunking function itself — any change to the gear
    table, masks, or scan logic shows up as a diff here before it shows
    up as a storage-ratio regression.
    """

    # 255 zero bytes followed by byte 29: the gear hash matches the
    # loose mask at position 256 — exactly where the max_size clamp
    # forces a cut for avg=64 (max=256). The candidate and the forced
    # cut coincide; the chunker must emit the boundary once, not a
    # duplicate or an empty chunk.
    COINCIDENT_BLOCK = b"\x00" * 255 + bytes([29])

    @pytest.mark.parametrize("impl", LANES)
    def test_forced_cut_coincides_with_hash_match(self, impl):
        chunker = ContentDefinedChunker(avg_size=64, impl=impl)
        assert chunker.boundaries(self.COINCIDENT_BLOCK) == [256]
        chunks = chunker.chunks(self.COINCIDENT_BLOCK)
        assert [len(c) for c in chunks] == [256]

    @pytest.mark.parametrize("impl", LANES)
    def test_forced_cut_coincidence_mid_stream(self, impl):
        data = self.COINCIDENT_BLOCK + random.Random(7).randbytes(400)
        chunker = ContentDefinedChunker(avg_size=64, impl=impl)
        assert chunker.boundaries(data) == [
            256, 326, 404, 493, 569, 607, 656,
        ]

    @pytest.mark.parametrize("impl", LANES)
    def test_pinned_text_boundaries(self, impl):
        data = TextGenerator(seed=42).document(3000).encode()
        chunker = ContentDefinedChunker(avg_size=64, impl=impl)
        assert chunker.boundaries(data) == [
            99, 152, 250, 269, 343, 430, 504, 521, 614, 639, 711, 801,
            878, 964, 1036, 1120, 1194, 1238, 1317, 1386, 1454, 1503,
            1630, 1678, 1716, 1786, 1869, 1935, 1968, 2020, 2092, 2190,
            2270, 2338, 2422, 2505, 2575, 2651, 2726, 2827, 2896, 2971,
            3041, 3093, 3123, 3208,
        ]

    @pytest.mark.parametrize("impl", LANES)
    def test_pinned_random_boundaries(self, impl):
        data = random.Random(11).randbytes(2000)
        chunker = ContentDefinedChunker(avg_size=64, impl=impl)
        assert chunker.boundaries(data) == [
            36, 105, 148, 239, 306, 378, 451, 520, 587, 654, 699, 779,
            850, 928, 954, 1056, 1123, 1204, 1232, 1302, 1366, 1432,
            1464, 1531, 1614, 1702, 1762, 1865, 1943, 2000,
        ]

    @pytest.mark.parametrize("impl", LANES)
    def test_pinned_random_boundaries_avg256(self, impl):
        data = random.Random(11).randbytes(2000)
        chunker = ContentDefinedChunker(avg_size=256, impl=impl)
        assert chunker.boundaries(data) == [
            274, 451, 699, 1155, 1412, 1728, 2000,
        ]


class TestAccounting:
    def test_scalar_lane_counts_scan_and_skip(self):
        # avg=1024 puts min_size (256) well above the 64-byte gear
        # window, so skip-ahead has real ground to skip.
        data = random_bytes(30_000, seed=12)
        chunker = ContentDefinedChunker(avg_size=1024, impl="scalar")
        chunker.boundaries(data)
        assert chunker.bytes_scanned["scalar"] > 0
        assert chunker.bytes_scanned["vectorized"] == 0
        # Skip-ahead means the scalar lane hashes fewer bytes than it
        # covers; the two tallies account for the whole input.
        assert chunker.bytes_skipped > 0
        assert chunker.bytes_scanned["scalar"] + chunker.bytes_skipped == len(data)

    def test_vectorized_lane_counts_full_scan(self):
        data = random_bytes(30_000, seed=12)
        chunker = ContentDefinedChunker(avg_size=256, impl="vectorized")
        chunker.boundaries(data)
        assert chunker.bytes_scanned["vectorized"] == len(data)
        assert chunker.bytes_scanned["scalar"] == 0
        assert chunker.bytes_skipped == 0
