"""Content-defined chunking invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking.cdc import ContentDefinedChunker


def random_bytes(n: int, seed: int = 1) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


class TestValidation:
    def test_avg_size_power_of_two(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=100)

    def test_min_le_avg_le_max(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=256, min_size=512)
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_size=256, max_size=128)


class TestChunking:
    def test_empty_input(self):
        chunker = ContentDefinedChunker(avg_size=256)
        assert chunker.chunks(b"") == []
        assert chunker.boundaries(b"") == []

    def test_concatenation_restores_input(self):
        data = random_bytes(20_000)
        chunker = ContentDefinedChunker(avg_size=256)
        assert b"".join(c.data for c in chunker.chunks(data)) == data

    def test_chunk_offsets_consistent(self):
        data = random_bytes(5000, seed=3)
        for chunk in ContentDefinedChunker(avg_size=128).chunks(data):
            assert chunk.data == data[chunk.start : chunk.end]
            assert len(chunk) == chunk.end - chunk.start

    def test_size_bounds_respected(self):
        data = random_bytes(50_000, seed=2)
        chunker = ContentDefinedChunker(avg_size=256)
        sizes = [len(c) for c in chunker.chunks(data)]
        assert all(s <= chunker.max_size for s in sizes)
        # Every chunk except the last respects the minimum.
        assert all(s >= chunker.min_size for s in sizes[:-1])

    def test_average_size_near_target(self):
        data = random_bytes(200_000, seed=4)
        chunker = ContentDefinedChunker(avg_size=256)
        sizes = [len(c) for c in chunker.chunks(data)]
        average = sum(sizes) / len(sizes)
        # CDC with min/max clamps lands near (typically slightly above)
        # the target on random data.
        assert 128 < average < 768

    def test_low_entropy_input_hits_max_size(self):
        # Constant data produces one hash everywhere; the max clamp must
        # force boundaries.
        data = b"\x00" * 10_000
        chunker = ContentDefinedChunker(avg_size=256)
        sizes = [len(c) for c in chunker.chunks(data)]
        assert max(sizes) <= chunker.max_size
        assert b"".join(c.data for c in chunker.chunks(data)) == data

    def test_boundary_shift_invariance(self):
        # Prepending data only disturbs chunks near the edit: boundaries in
        # the untouched tail reappear at shifted offsets.
        data = random_bytes(30_000, seed=5)
        chunker = ContentDefinedChunker(avg_size=256)
        original = set(chunker.boundaries(data))
        prefix = b"PREFIXPREFIX"
        shifted = set(
            boundary - len(prefix)
            for boundary in chunker.boundaries(prefix + data)
        )
        tail = {b for b in original if b > 2000}
        shared = tail & shifted
        assert len(shared) / len(tail) > 0.8

    def test_deterministic(self):
        data = random_bytes(10_000, seed=6)
        chunker = ContentDefinedChunker(avg_size=512)
        assert chunker.boundaries(data) == chunker.boundaries(data)

    @settings(max_examples=25)
    @given(st.binary(min_size=0, max_size=5000))
    def test_property_partition(self, data):
        chunker = ContentDefinedChunker(avg_size=64)
        boundaries = chunker.boundaries(data)
        if data:
            assert boundaries[-1] == len(data)
            assert boundaries == sorted(set(boundaries))
        assert b"".join(c.data for c in chunker.chunks(data)) == data
