"""Fixed-size chunker behaviour and its boundary-shift weakness."""

import pytest

from repro.chunking.fixed import FixedSizeChunker
from repro.index.exact import ExactChunkIndex


class TestFixedSizeChunker:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FixedSizeChunker(0)

    def test_exact_multiple(self):
        chunks = FixedSizeChunker(4).chunks(b"abcdefgh")
        assert [c.data for c in chunks] == [b"abcd", b"efgh"]

    def test_trailing_partial_chunk(self):
        chunks = FixedSizeChunker(4).chunks(b"abcdefghij")
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_empty(self):
        assert FixedSizeChunker(4).chunks(b"") == []

    def test_concatenation(self):
        data = bytes(range(256)) * 5
        chunks = FixedSizeChunker(100).chunks(data)
        assert b"".join(c.data for c in chunks) == data

    def test_boundary_shift_destroys_dedup(self):
        # The motivating weakness: one inserted byte re-aligns every chunk,
        # so an exact-match index finds nothing. (CDC does not have this
        # problem — see test_cdc.test_boundary_shift_invariance.)
        data = bytes((i * 31) % 256 for i in range(4000))
        chunker = FixedSizeChunker(64)
        index = ExactChunkIndex()
        for chunk in chunker.chunks(data):
            index.observe(chunk.data)
        shifted = b"!" + data
        duplicates = sum(
            1 for chunk in chunker.chunks(shifted) if index.contains(chunk.data)
        )
        assert duplicates <= 1
