"""Differential fuzzing: the vectorized chunker lane vs the scalar oracle.

Every test here asserts the two lanes are *byte-identical* — boundaries,
chunks, and sketches — across adversarial input families:

1. runs of a single byte (degenerate hash states),
2. near-boundary record sizes (min/avg/max edges, off-by-one),
3. records shorter than ``min_size``,
4. random binary,
5. sliced samples of the wikipedia text corpus,

plus a stateful machine checking the CDC resynchronization property:
mutating a prefix only shifts boundaries locally.

On a mismatch the offending input is written to
``$CHUNKING_ARTIFACT_DIR`` (default ``chunking-artifacts/``) so the CI
job can upload the fuzz corpus for replay.
"""

import os
import random
import zlib
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.chunking.cdc import ContentDefinedChunker
from repro.chunking.scalar import scalar_boundaries
from repro.hashing.gear import WINDOW
from repro.sketch.features import SketchExtractor
from repro.workloads.text import TextGenerator

ARTIFACT_DIR = os.environ.get("CHUNKING_ARTIFACT_DIR", "chunking-artifacts")

#: Size geometries the differential sweep exercises; (avg, min, max) with
#: None meaning the chunker's defaults (avg // 4, avg * 4).
GEOMETRIES = (
    (64, None, None),
    (8, None, None),
    (256, 200, 300),
    (64, 1, 64),
)


def _dump_artifact(family: str, data: bytes, geometry) -> Path:
    """Persist a mismatching input for the CI artifact upload."""
    directory = Path(ARTIFACT_DIR)
    directory.mkdir(parents=True, exist_ok=True)
    digest = zlib.crc32(data) & 0xFFFFFFFF
    path = directory / f"diff-{family}-{len(data)}-{digest:08x}.bin"
    path.write_bytes(data)
    (path.with_suffix(".txt")).write_text(
        f"family={family} geometry={geometry} length={len(data)}\n",
        encoding="utf-8",
    )
    return path


def make_chunkers(geometry):
    avg, lo, hi = geometry
    return (
        ContentDefinedChunker(avg, min_size=lo, max_size=hi, impl="scalar"),
        ContentDefinedChunker(avg, min_size=lo, max_size=hi, impl="vectorized"),
    )


def assert_lanes_agree(family: str, data: bytes, geometry=(64, None, None)):
    """The heart of the suite: scalar ≡ vectorized on one input."""
    scalar, vector = make_chunkers(geometry)
    scalar_cuts = scalar.boundaries(data)
    vector_cuts = vector.boundaries(data)
    if scalar_cuts != vector_cuts:
        path = _dump_artifact(family, data, geometry)
        raise AssertionError(
            f"lane mismatch on {family} input (saved to {path}): "
            f"scalar={scalar_cuts[:8]}... vectorized={vector_cuts[:8]}..."
        )
    # The module-level oracle is the same computation the scalar lane ran.
    if data:
        oracle_cuts, _ = scalar_boundaries(
            data, scalar.min_size, scalar.avg_size, scalar.max_size
        )
        assert oracle_cuts == scalar_cuts
    # Chunks carry identical bytes, not just identical offsets.
    assert scalar.chunks(data) == vector.chunks(data)
    return scalar_cuts


def assert_sketches_agree(data: bytes, geometry=(64, None, None)):
    scalar, vector = make_chunkers(geometry)
    a = SketchExtractor(chunker=scalar, top_k=8).sketch(data)
    b = SketchExtractor(chunker=vector, top_k=8).sketch(data)
    assert a == b


@pytest.fixture(scope="module")
def wiki_corpus() -> bytes:
    """A deterministic slice-able wikipedia-style text corpus."""
    return TextGenerator(seed=1234).document(120_000).encode()


@pytest.mark.parametrize("geometry", GEOMETRIES)
class TestDifferentialFamilies:
    @settings(max_examples=40)
    @given(byte=st.integers(0, 255), length=st.integers(0, 2200))
    def test_single_byte_runs(self, geometry, byte, length):
        data = bytes([byte]) * length
        assert_lanes_agree("run", data, geometry)

    @settings(max_examples=40)
    @given(
        anchor=st.sampled_from(["min", "avg", "max", "2max"]),
        jitter=st.integers(-2, 2),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_near_boundary_sizes(self, geometry, anchor, jitter, seed):
        scalar, _ = make_chunkers(geometry)
        base = {
            "min": scalar.min_size,
            "avg": scalar.avg_size,
            "max": scalar.max_size,
            "2max": 2 * scalar.max_size,
        }[anchor]
        length = max(0, base + jitter)
        data = random.Random(seed).randbytes(length)
        assert_lanes_agree("nearsize", data, geometry)

    @settings(max_examples=40)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_shorter_than_min_chunk(self, geometry, seed):
        scalar, _ = make_chunkers(geometry)
        rng = random.Random(seed)
        length = rng.randrange(0, max(1, scalar.min_size))
        data = rng.randbytes(length)
        cuts = assert_lanes_agree("short", data, geometry)
        assert cuts == ([length] if length else [])

    @settings(max_examples=40)
    @given(data=st.binary(min_size=0, max_size=6000))
    def test_random_binary(self, geometry, data):
        assert_lanes_agree("binary", data, geometry)
        assert_sketches_agree(data, geometry)

    @settings(max_examples=40)
    @given(start=st.integers(0, 110_000), length=st.integers(0, 9000))
    def test_wikipedia_slices(self, geometry, start, length, wiki_corpus):
        data = wiki_corpus[start : start + length]
        assert_lanes_agree("wiki", data, geometry)
        assert_sketches_agree(data, geometry)


class TestBatchDifferential:
    @settings(max_examples=25, deadline=None)
    @given(
        seeds=st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=12),
    )
    def test_boundaries_many_matches_both_lanes(self, seeds):
        rng = random.Random(99)
        datas = []
        for seed in seeds:
            sub = random.Random(seed)
            kind = sub.randrange(3)
            n = sub.randrange(0, 3000)
            if kind == 0:
                datas.append(bytes([sub.randrange(256)]) * n)
            elif kind == 1:
                datas.append(sub.randbytes(n))
            else:
                datas.append(rng.randbytes(sub.randrange(0, 40)))
        scalar, vector = make_chunkers((64, None, None))
        batch_scalar = scalar.boundaries_many(datas)
        batch_vector = vector.boundaries_many(datas)
        sequential = [vector.boundaries(d) for d in datas]
        assert batch_scalar == batch_vector == sequential

    def test_sketch_many_lane_equivalence(self, wiki_corpus):
        datas = [
            wiki_corpus[i : i + 1500] for i in range(0, 30_000, 1500)
        ] + [b"", b"x", wiki_corpus[:10]]
        scalar, vector = make_chunkers((64, None, None))
        a = SketchExtractor(chunker=scalar, top_k=8).sketch_many(datas)
        b = SketchExtractor(chunker=vector, top_k=8).sketch_many(datas)
        assert a == b


class ResyncMachine(RuleBasedStateMachine):
    """CDC resynchronization: prefix edits shift boundaries only locally.

    The machine keeps one evolving document. Every rule mutates a
    position in the document's first half (replace / insert / delete)
    and checks, for both lanes:

    * boundaries at or before the edit position are unchanged, and
    * past the edit, boundaries realign with the pre-edit boundaries
      (shifted by the length delta) from the first shared cut onward.
    """

    def __init__(self):
        super().__init__()
        self.chunkers = make_chunkers((64, None, None))
        self.text = TextGenerator(seed=777)

    @initialize(seed=st.integers(0, 2**16))
    def seed_document(self, seed):
        self.doc = TextGenerator(seed=seed).document(12_000).encode()

    @rule(
        position=st.floats(0.0, 0.5),
        size=st.integers(1, 200),
        action=st.sampled_from(["replace", "insert", "delete"]),
    )
    def mutate_prefix(self, position, size, action):
        doc = self.doc
        pos = int(len(doc) * position)
        patch = self.text.sentence().encode()[:size]
        if action == "replace":
            new = doc[:pos] + patch + doc[pos + len(patch):]
        elif action == "insert":
            new = doc[:pos] + patch + doc[pos:]
        else:
            new = doc[:pos] + doc[pos + size:]
        edit_end = pos + (0 if action == "delete" else len(patch))
        delta = len(new) - len(doc)
        for chunker in self.chunkers:
            before = chunker.boundaries(doc)
            after = chunker.boundaries(new)
            # Locality, upstream: cuts at or before the edit position
            # depend only on bytes before it.
            assert [c for c in before if c <= pos] == [
                c for c in after if c <= pos
            ]
            # Locality, downstream: the old boundary stream reappears
            # (shifted) once the scan re-locks past the edit.
            shifted = [c + delta for c in before if c + delta > edit_end + WINDOW]
            common = sorted(set(after) & set(shifted))
            runway = len(new) - edit_end
            if runway > 20 * chunker.max_size:
                assert common, (
                    f"no resynchronization within {runway} bytes "
                    f"({chunker.resolved_impl} lane)"
                )
            if common:
                first = common[0]
                assert [c for c in after if c >= first] == [
                    c for c in shifted if c >= first
                ]
        self.doc = new


ResyncMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=8, deadline=None
)
TestResync = ResyncMachine.TestCase
