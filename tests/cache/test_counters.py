"""Cache lifecycle counters: evictions, flushes, discards, invalidations."""

from repro.cache.lru import LRUByteCache
from repro.cache.source_cache import SourceRecordCache
from repro.cache.writeback import LossyWriteBackCache, WriteBackEntry


def _entry(record_id: str, saving: int, payload: bytes = b"x" * 10):
    return WriteBackEntry(
        record_id=record_id, base_id="base", payload=payload,
        space_saving=saving,
    )


class TestLRUCounters:
    def test_eviction_counts_only_budget_pressure(self):
        cache = LRUByteCache(capacity_bytes=20)
        cache.put("a", b"x" * 10)
        cache.put("b", b"x" * 10)
        assert cache.evictions == 0
        cache.put("c", b"x" * 10)  # pushes 'a' out
        assert cache.evictions == 1
        # Explicit removal and replacement are not evictions.
        cache.pop("b")
        cache.put("c", b"y" * 10)
        assert cache.evictions == 1

    def test_oversized_value_rejected_without_eviction(self):
        cache = LRUByteCache(capacity_bytes=8)
        assert cache.put("a", b"x" * 9) is False
        assert cache.evictions == 0


class TestSourceCacheCounters:
    def test_evictions_delegate_to_the_lru(self):
        cache = SourceRecordCache(capacity_bytes=20)
        cache.admit("a", b"x" * 10)
        cache.admit("b", b"x" * 10)
        cache.admit("c", b"x" * 10)
        assert cache.evictions == 1
        assert cache.get("c") is not None
        assert cache.get("a") is None
        assert (cache.hits, cache.misses) == (1, 1)


class TestWriteBackCounters:
    def test_flush_and_capacity_discard(self):
        cache = LossyWriteBackCache(capacity_bytes=25)
        cache.put(_entry("r1", saving=100))
        cache.put(_entry("r2", saving=50))
        # Third entry exceeds capacity: the least valuable goes.
        cache.put(_entry("r3", saving=75))
        assert cache.discarded == 1
        assert cache.discarded_savings == 50
        flushed = cache.flush_most_valuable()
        assert flushed.record_id == "r1"
        assert cache.flushed == 1

    def test_invalidation_is_not_a_discard(self):
        cache = LossyWriteBackCache(capacity_bytes=100)
        cache.put(_entry("r1", saving=10))
        assert cache.invalidate("r1") is not None
        assert cache.invalidated == 1
        assert cache.discarded == 0

    def test_dropped_entries_notify_owner(self):
        dropped = []
        cache = LossyWriteBackCache(capacity_bytes=100)
        cache.on_drop = dropped.append
        cache.put(_entry("r1", saving=10))
        cache.invalidate("r1")
        cache.put(_entry("r2", saving=20))
        cache.flush_most_valuable()  # flushes are NOT drops
        assert [entry.record_id for entry in dropped] == ["r1"]
