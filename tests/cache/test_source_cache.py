"""Source record cache: chain-aware replacement (§3.3.1)."""

from repro.cache.source_cache import SourceRecordCache


class TestBasics:
    def test_admit_and_get(self):
        cache = SourceRecordCache(1024)
        cache.admit("r1", b"content")
        assert cache.get("r1") == b"content"
        assert cache.hits == 1

    def test_miss_ratio(self):
        cache = SourceRecordCache(1024)
        cache.get("nope")
        cache.admit("yes", b"x")
        cache.get("yes")
        assert cache.miss_ratio == 0.5

    def test_invalidate(self):
        cache = SourceRecordCache(1024)
        cache.admit("r", b"x")
        cache.invalidate("r")
        assert "r" not in cache


class TestChainAwareReplacement:
    def test_replace_tail_swaps_entry(self):
        cache = SourceRecordCache(1024)
        cache.admit("old-tail", b"old content")
        cache.replace_tail("old-tail", "new-tail", b"new content")
        assert "old-tail" not in cache
        assert cache.peek("new-tail") == b"new content"

    def test_replace_tail_when_old_absent(self):
        cache = SourceRecordCache(1024)
        cache.replace_tail("ghost", "new", b"content")
        assert cache.peek("new") == b"content"

    def test_one_entry_per_chain_under_replacement(self):
        cache = SourceRecordCache(4096)
        cache.admit("v0", b"a" * 100)
        previous = "v0"
        for version in range(1, 10):
            name = f"v{version}"
            cache.replace_tail(previous, name, b"a" * 100)
            previous = name
        assert len(cache) == 1
        assert cache.used_bytes == 100

    def test_keep_hop_base_replaces_previous_level_base(self):
        cache = SourceRecordCache(4096)
        cache.admit("hop-0", b"base0")
        cache.keep_hop_base("hop-16", b"base16", replacing="hop-0")
        assert "hop-0" not in cache
        assert cache.peek("hop-16") == b"base16"

    def test_keep_hop_base_without_predecessor(self):
        cache = SourceRecordCache(4096)
        cache.keep_hop_base("hop-16", b"base16", replacing=None)
        assert "hop-16" in cache


class TestCapacity:
    def test_eviction_under_pressure(self):
        cache = SourceRecordCache(250)
        for chain in range(5):
            cache.admit(f"tail-{chain}", b"x" * 100)
        assert len(cache) == 2
        assert cache.used_bytes <= 250
