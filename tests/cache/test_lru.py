"""Byte-budget LRU cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.lru import LRUByteCache


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUByteCache(0)

    def test_get_miss_counts(self):
        cache = LRUByteCache(100)
        assert cache.get("x") is None
        assert cache.misses == 1
        assert cache.miss_ratio == 1.0

    def test_put_get_hit(self):
        cache = LRUByteCache(100)
        cache.put("x", b"value")
        assert cache.get("x") == b"value"
        assert cache.hits == 1

    def test_peek_does_not_count(self):
        cache = LRUByteCache(100)
        cache.put("x", b"v")
        cache.peek("x")
        cache.peek("y")
        assert cache.hits == 0
        assert cache.misses == 0

    def test_pop(self):
        cache = LRUByteCache(100)
        cache.put("x", b"abc")
        assert cache.pop("x") == b"abc"
        assert cache.pop("x") is None
        assert cache.used_bytes == 0

    def test_replace_updates_bytes(self):
        cache = LRUByteCache(100)
        cache.put("x", b"aaaa")
        cache.put("x", b"bb")
        assert cache.used_bytes == 2
        assert len(cache) == 1


class TestEviction:
    def test_evicts_lru_on_overflow(self):
        cache = LRUByteCache(10)
        cache.put("a", b"12345")
        cache.put("b", b"12345")
        cache.get("a")  # refresh a
        cache.put("c", b"12345")  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_oversized_value_rejected(self):
        cache = LRUByteCache(4)
        assert cache.put("big", b"12345") is False
        assert "big" not in cache

    def test_oversized_replacement_removes_old(self):
        cache = LRUByteCache(4)
        cache.put("x", b"ab")
        assert cache.put("x", b"123456") is False
        assert "x" not in cache

    def test_clear(self):
        cache = LRUByteCache(100)
        cache.put("a", b"xy")
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0


@given(
    st.lists(
        st.tuples(st.sampled_from("abcdef"), st.binary(min_size=1, max_size=8)),
        max_size=60,
    )
)
def test_property_capacity_never_exceeded(puts):
    cache = LRUByteCache(16)
    for key, value in puts:
        cache.put(key, value)
        assert cache.used_bytes <= 16
        assert cache.used_bytes == sum(
            len(cache.peek(k)) for k in "abcdef" if cache.peek(k) is not None
        )
