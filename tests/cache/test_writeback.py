"""Lossy write-back delta cache (§3.3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.writeback import LossyWriteBackCache, WriteBackEntry


def entry(record_id: str, payload: bytes, saving: int, base: str = "base") -> WriteBackEntry:
    return WriteBackEntry(record_id=record_id, base_id=base, payload=payload,
                          space_saving=saving)


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LossyWriteBackCache(0)

    def test_put_and_flush(self):
        cache = LossyWriteBackCache(1024)
        cache.put(entry("r1", b"delta", 500))
        flushed = cache.flush_most_valuable()
        assert flushed.record_id == "r1"
        assert cache.flushed == 1
        assert len(cache) == 0

    def test_flush_empty_returns_none(self):
        assert LossyWriteBackCache(16).flush_most_valuable() is None

    def test_newer_entry_replaces_same_record(self):
        cache = LossyWriteBackCache(1024)
        cache.put(entry("r1", b"old", 100))
        cache.put(entry("r1", b"new", 200))
        assert len(cache) == 1
        assert cache.flush_most_valuable().payload == b"new"


class TestPrioritization:
    def test_flush_order_most_valuable_first(self):
        cache = LossyWriteBackCache(1024)
        cache.put(entry("small", b"a", 10))
        cache.put(entry("big", b"b", 1000))
        cache.put(entry("mid", b"c", 100))
        order = [cache.flush_most_valuable().record_id for _ in range(3)]
        assert order == ["big", "mid", "small"]

    def test_drain_returns_descending_savings(self):
        cache = LossyWriteBackCache(1024)
        for index, saving in enumerate([5, 50, 500]):
            cache.put(entry(f"r{index}", b"x", saving))
        drained = cache.drain()
        savings = [e.space_saving for e in drained]
        assert savings == sorted(savings, reverse=True)
        assert len(cache) == 0


class TestLossiness:
    def test_capacity_eviction_discards_least_valuable(self):
        cache = LossyWriteBackCache(10)
        cache.put(entry("keep", b"12345", 1000))
        cache.put(entry("drop", b"67890", 1))
        cache.put(entry("also-keep", b"abcde", 500))
        assert cache.discarded == 1
        assert cache.discarded_savings == 1
        assert "drop" not in cache
        assert "keep" in cache

    def test_oversized_entry_discarded_immediately(self):
        cache = LossyWriteBackCache(4)
        cache.put(entry("huge", b"123456", 777))
        assert len(cache) == 0
        assert cache.discarded == 1
        assert cache.discarded_savings == 777

    def test_invalidate_removes_pending(self):
        cache = LossyWriteBackCache(1024)
        cache.put(entry("r1", b"delta", 10))
        removed = cache.invalidate("r1")
        assert removed.record_id == "r1"
        assert "r1" not in cache
        assert cache.used_bytes == 0

    def test_invalidate_absent(self):
        assert LossyWriteBackCache(16).invalidate("nothing") is None


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h"]),
            st.binary(min_size=1, max_size=6),
            st.integers(0, 1000),
        ),
        max_size=80,
    )
)
def test_property_used_bytes_within_capacity(operations):
    cache = LossyWriteBackCache(20)
    for record_id, payload, saving in operations:
        cache.put(entry(record_id, payload, saving))
        assert cache.used_bytes <= 20
        assert len(cache) <= 20
