"""ASCII plotting."""

from repro.bench.plot import ascii_cdf, ascii_plot


class TestAsciiPlot:
    def test_empty_series(self):
        assert "(no data)" in ascii_plot({"s": []}, title="t")

    def test_contains_title_and_legend(self):
        text = ascii_plot(
            {"alpha": [(0, 0), (1, 1)], "beta": [(0, 1), (1, 0)]},
            title="Two lines",
        )
        assert "Two lines" in text
        assert "alpha" in text
        assert "beta" in text

    def test_axis_labels(self):
        text = ascii_plot(
            {"s": [(0, 0), (10, 5)]}, x_label="seconds", y_label="ops",
        )
        assert "seconds" in text
        assert "ops" in text

    def test_extremes_plotted_at_corners(self):
        text = ascii_plot({"s": [(0, 0), (1, 1)]}, width=20, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("·")  # max y at top right
        body = rows[-1].split("|", 1)[1]
        assert body[0] == "·"  # min y at bottom left

    def test_constant_series_does_not_crash(self):
        text = ascii_plot({"flat": [(0, 3), (1, 3), (2, 3)]})
        assert "flat" in text

    def test_single_point(self):
        text = ascii_plot({"dot": [(5, 5)]})
        assert "dot" in text

    def test_cdf_wrapper(self):
        points = [(float(i), i / 10) for i in range(11)]
        text = ascii_cdf({"latency": points}, title="Latency CDF")
        assert "Latency CDF" in text
        assert "frac" in text
