"""Tiny-scale smoke tests of every experiment function.

The real shape assertions live in ``benchmarks/``; these only guarantee
the harness itself stays runnable and returns well-formed results at the
smallest viable scale, so a broken experiment fails fast in the unit suite.
"""

import pytest

from repro.bench import experiments as E
from repro.bench import ablations as A

TINY = 120_000


class TestFigureFunctions:
    def test_fig10_rows_complete(self):
        result = E.fig10("enron", target_bytes=TINY)
        assert {row.config for row in result.rows} == {
            "dbDedup-1KB", "dbDedup-64B", "trad-dedup-4KB", "trad-dedup-64B",
            "Snappy",
        }
        assert all(row.dedup_ratio >= 1.0 for row in result.rows)
        assert "enron" in result.render()

    def test_fig07_returns_cdfs(self):
        result = E.fig07("enron", target_bytes=TINY)
        assert result.count_cdf and result.saving_cdf
        assert 0.0 <= result.top60_saving_share <= 1.0

    def test_fig11_all_workloads(self):
        result = E.fig11(workloads=("enron",), target_bytes=TINY)
        assert len(result.rows) == 1
        assert result.rows[0].normalized_storage <= 1.05

    def test_fig12_structure(self):
        result = E.fig12(workloads=("enron",), target_bytes=TINY)
        assert len(result.rows) == 3
        row = result.row("enron", "dbdedup")
        assert row.throughput_ops > 0
        assert row.p999_latency_s >= row.p50_latency_s

    def test_fig13a_includes_no_cache_point(self):
        result = E.fig13a(rewards=(0, 2), target_bytes=TINY)
        labels = [row.label for row in result.rows]
        assert labels == ["no-cache", "0", "2"]
        assert result.rows[0].cache_miss_ratio == 1.0

    def test_fig13b_timelines_nonempty(self):
        result = E.fig13b(target_bytes=TINY)
        assert result.with_cache and result.without_cache

    def test_fig14_tiny_chain(self):
        result = E.fig14(hop_distances=(4,), revisions=24)
        assert result.backward_retrievals == 23
        assert len(result.rows) == 2

    def test_fig15_labels(self):
        result = E.fig15(anchor_intervals=(64,), pair_count=3, body_bytes=3000)
        assert [row.label for row in result.rows] == ["xDelta", "anchor-64"]
        assert all(row.compression_ratio > 1 for row in result.rows)

    def test_table2_render(self):
        text = E.table2(chain_length=50, hop_distance=4).render()
        assert "backward" in text and "hop" in text


class TestAblationFunctions:
    def test_sketch_sweep_structure(self):
        result = A.sketch_sweep("enron", chunk_sizes=(256,), top_ks=(8,),
                                target_bytes=TINY)
        assert result.row(256, 8).compression_ratio >= 1.0

    def test_encoding_sweep_structure(self):
        result = A.encoding_sweep(workloads=("enron",),
                                  encodings=("forward", "hop"),
                                  target_bytes=TINY)
        assert result.row("enron", "forward").worst_decode == 0

    def test_writeback_sweep_structure(self):
        result = A.writeback_capacity_sweep(capacities=(1024, 8 << 20),
                                            target_bytes=TINY)
        assert len(result.rows) == 2

    def test_network_stack_structure(self):
        result = A.network_stack_ablation(target_bytes=TINY)
        assert result.row("original").network_ratio <= result.row("dbDedup").network_ratio


class TestPipelineProfile:
    def test_pipeline_profile_structure(self):
        from repro.bench.pipeline_profile import pipeline_profile

        result = pipeline_profile("enron", target_bytes=TINY, batch_size=16)
        stages = [row.stage for row in result.rows]
        assert stages[0] == "admission_gate" and stages[-1] == "accounting"
        accounting = result.rows[-1]
        assert accounting.records_in == result.records_seen
        assert accounting.records_out == result.records_seen
        for row in result.rows:
            assert row.records_in == row.records_out + row.drops
        rendered = result.render()
        assert "drop reasons:" in rendered and "speedup:" in rendered
