"""Shard-scaling experiment: the dedup-ratio-vs-shard-count curve."""

from repro.bench.sharding_exp import shard_scaling


class TestShardScaling:
    def test_sweep_shape_and_rendering(self):
        result = shard_scaling(
            target_bytes=80_000, shard_counts=(1, 2), seed=3
        )
        assert len(result.rows) == 4  # 2 placements x 2 counts
        text = result.render()
        assert "hash" in text and "prefix" in text
        assert "storage x" in text

    def test_prefix_placement_preserves_single_shard_ratio(self):
        result = shard_scaling(
            target_bytes=120_000, shard_counts=(1, 4), seed=3
        )
        by_key = {(r.placement, r.shards): r for r in result.rows}
        base = by_key[("prefix", 1)].storage_ratio
        assert by_key[("prefix", 4)].storage_ratio == base
        assert by_key[("prefix", 4)].cross_shard_misses == 0
        # Hash placement scatters entities: dedup degrades, misses appear.
        assert by_key[("hash", 4)].storage_ratio < base
        assert by_key[("hash", 4)].cross_shard_misses > 0

    def test_check_invariants_flag(self):
        result = shard_scaling(
            target_bytes=60_000, shard_counts=(2,),
            placements=("hash",), check_invariants=True,
        )
        assert all(row.invariants_ok for row in result.rows)

    def test_imbalance_metric(self):
        result = shard_scaling(
            target_bytes=60_000, shard_counts=(1,), placements=("hash",)
        )
        assert result.rows[0].shard_imbalance == 1.0
