"""Report rendering."""

from repro.bench.report import render_table


class TestRenderTable:
    def test_contains_title_headers_rows(self):
        text = render_table("My Title", ["col-a", "col-b"], [("x", 1.5), ("y", 200.0)])
        assert "My Title" in text
        assert "col-a" in text
        assert "1.50" in text  # mid-range floats get 2 decimals
        assert "200" in text  # large floats rounded to integers

    def test_small_floats_get_precision(self):
        text = render_table("t", ["v"], [(0.1234567,)])
        assert "0.1235" in text

    def test_alignment_uniform_width(self):
        text = render_table("t", ["a", "b"], [("xxxxxxxx", "y"), ("z", "wwwwwww")])
        lines = [line for line in text.splitlines()[2:]]
        assert len(set(len(line.rstrip()) for line in lines)) <= len(lines)
        header, rule, row1, row2 = lines
        assert len(row1.rstrip()) <= len(rule) + 2

    def test_non_numeric_cells(self):
        text = render_table("t", ["n"], [(None,), (True,)])
        assert "None" in text
        assert "True" in text


class TestRenderCsv:
    def test_basic(self):
        from repro.bench.report import render_csv

        text = render_csv(["a", "b"], [("x", 1.5), ("y", 2)])
        lines = text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "x,1.5"
        assert lines[2] == "y,2"

    def test_quoting(self):
        from repro.bench.report import render_csv

        text = render_csv(["v"], [('with,comma',), ('with"quote',)])
        assert '"with,comma"' in text
        assert '"with""quote"' in text

    def test_float_full_precision(self):
        from repro.bench.report import render_csv

        text = render_csv(["r"], [(1.23456789012,)])
        assert "1.23456789012" in text
