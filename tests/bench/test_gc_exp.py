"""Smoke test of the delete-heavy GC reclaim experiment.

The acceptance bar for the online collector: the delete-heavy trace
reclaims storage when GC is on, and the foreground p99 stays within
noise of the never-collecting run because collection only happens in
idle slices.
"""

import pytest

from repro.bench.gc_exp import delete_heavy_trace, gc_reclaim_experiment

TINY = 120_000


@pytest.fixture(scope="module")
def result():
    return gc_reclaim_experiment(target_bytes=TINY)


class TestGcReclaimExperiment:
    def test_collector_only_runs_when_enabled(self, result):
        off, on = result.row("gc-off"), result.row("gc-on")
        assert off.gc_batches == 0
        assert off.tombstones_removed == 0
        assert on.gc_batches > 0
        assert on.tombstones_removed > 0

    def test_gc_reclaims_storage(self, result):
        off, on = result.row("gc-off"), result.row("gc-on")
        assert result.reclaim_advantage_bytes > 0
        assert on.reclaimed_bytes > off.reclaimed_bytes
        assert on.stored_bytes < off.stored_bytes

    def test_foreground_p99_within_noise(self, result):
        # GC batches run in idle slices and bill background CPU only;
        # the foreground tail must not move beyond noise.
        assert 0.5 <= result.p99_ratio <= 1.5

    def test_gc_work_charged_as_background(self, result):
        off, on = result.row("gc-off"), result.row("gc-on")
        assert on.background_cpu_s >= off.background_cpu_s

    def test_render_mentions_both_configs(self, result):
        rendered = result.render()
        assert "gc-off" in rendered
        assert "gc-on" in rendered
        assert "reclaim advantage" in rendered

    def test_unknown_row_raises(self, result):
        with pytest.raises(KeyError):
            result.row("gc-maybe")


class TestDeleteHeavyTrace:
    def test_trace_shape(self):
        trace = delete_heavy_trace(
            "wikipedia", target_bytes=TINY, seed=3, delete_fraction=0.25
        )
        kinds = [op.kind for op in trace]
        inserts = kinds.count("insert")
        deletes = kinds.count("delete")
        assert deletes == pytest.approx(inserts * 0.25, abs=1)
        assert kinds.count("idle") >= 1
        assert kinds[-1] == "idle"

    def test_zero_fraction_deletes_nothing(self):
        trace = delete_heavy_trace(
            "wikipedia", target_bytes=TINY, seed=3, delete_fraction=0.0
        )
        assert not any(op.kind == "delete" for op in trace)
