"""SLO sweep: bundle shape, validation, determinism, defer benefit."""

import json
import os
import subprocess
import sys

import pytest

from repro.bench.slo_exp import SloScenario, run_probe, slo_experiment
from repro.obs.export import SLO_SCHEMA_VERSION, check_metrics_payload
from repro.workloads.tenants import parse_tenants

TENANTS = "stackexchange:40,oltp:40"
TENANT_BYTES = 60_000


@pytest.fixture(scope="module")
def sweep():
    return slo_experiment(
        parse_tenants(TENANTS, target_bytes=TENANT_BYTES),
        seed=7,
        shard_counts=(1,),
        rate_search=False,
    )


class TestSweepBundle:
    def test_bundle_validates_clean(self, sweep):
        document = sweep.document()
        assert document["schema"] == SLO_SCHEMA_VERSION
        assert check_metrics_payload(document) == []

    def test_scenarios_cover_the_matrix(self, sweep):
        labels = [row["label"] for row in sweep.scenarios]
        assert labels == ["shards=1/inline", "shards=1/hybrid"]

    def test_per_tenant_quantiles_present(self, sweep):
        for row in sweep.scenarios:
            for name in ("stackexchange", "oltp"):
                tenant = row["tenants"][name]
                assert tenant["ops"] > 0
                for key in ("p50_s", "p99_s", "p999_s"):
                    value = tenant[key]
                    assert value is None or value > 0.0

    def test_embedded_metrics_document_per_scenario(self, sweep):
        for row in sweep.scenarios:
            assert row["metrics"] is not None
            assert check_metrics_payload(row["metrics"]) == []

    def test_hybrid_records_defer_events(self, sweep):
        by_label = {row["label"]: row for row in sweep.scenarios}
        assert by_label["shards=1/hybrid"]["events"].get(
            "admission_defer", 0
        ) > 0
        assert by_label["shards=1/inline"]["events"].get(
            "admission_defer", 0
        ) == 0

    def test_defer_lowers_deferred_tenant_insert_p99(self, sweep):
        (comparison,) = sweep.comparisons
        assert comparison["tenant"] == "oltp"
        assert comparison["hybrid_insert_p99_s"] < comparison[
            "inline_insert_p99_s"
        ]
        assert comparison["improvement_pct"] > 0.0

    def test_defer_lowers_cpu_stall(self, sweep):
        (comparison,) = sweep.comparisons
        assert comparison["hybrid_cpu_stall_s"] < comparison[
            "inline_cpu_stall_s"
        ]

    def test_render_mentions_the_comparison(self, sweep):
        text = sweep.render()
        assert "max rate" in text
        assert "better with defer" in text


class TestRateSearch:
    def test_unsustainable_base_searches_down(self):
        tenants = parse_tenants(
            "stackexchange:400,oltp:400", target_bytes=TENANT_BYTES
        )
        result = slo_experiment(
            tenants, seed=7, shard_counts=(1,),
            admission_modes=("inline",), slo_p99_s=0.010,
            doublings=2, bisections=1,
        )
        (row,) = result.scenarios
        max_rate = row["max_sustainable_rate_ops_s"]
        assert max_rate is None or max_rate < row["base_rate_ops_s"]
        assert row["search_probes"]
        assert all("metrics" not in p for p in row["search_probes"])


class TestProbe:
    def test_probe_shape(self):
        tenants = parse_tenants("oltp:40", target_bytes=20_000)
        probe = run_probe(
            tenants, SloScenario(shards=1, admission_mode="inline"),
            seed=7, rate_scale=1.0, slo_p99_s=0.060,
        )
        assert probe["operations"] > 0
        assert probe["duration_s"] > 0
        assert probe["rate_ops_s"] == 40.0
        assert isinstance(probe["sustainable"], bool)


class TestDeterminism:
    def _export(self, tmp_path, hashseed, name):
        out = tmp_path / name
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath("src")] + env.get("PYTHONPATH", "").split(
                os.pathsep
            )
        ).rstrip(os.pathsep)
        subprocess.run(
            [
                sys.executable, "-m", "repro", "experiment", "slo",
                "--tenants", "stackexchange:40,oltp:40",
                "--tenant-bytes", "40000",
                "--slo-shards", "1",
                "--no-rate-search",
                "--seed", "11",
                "--slo-out", str(out),
            ],
            check=True, env=env, capture_output=True,
        )
        return out.read_bytes()

    def test_bundle_bytes_identical_across_hash_seeds(self, tmp_path):
        first = self._export(tmp_path, "0", "a.json")
        second = self._export(tmp_path, "1", "b.json")
        assert first == second
        assert json.loads(first)["schema"] == SLO_SCHEMA_VERSION
