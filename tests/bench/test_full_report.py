"""Full-report generation (tiny scale for the unit suite)."""

from repro.bench.full_report import generate_report, write_report


class TestFullReport:
    def test_report_contains_every_section(self, tmp_path):
        text = generate_report(target_bytes=120_000)
        for title in (
            "Fig. 1", "Table 2", "Fig. 7", "Fig. 10", "Fig. 11",
            "Fig. 12", "Fig. 13a", "Fig. 13b", "Fig. 14", "Fig. 15",
            "Ablation", "Scale sensitivity",
        ):
            assert title in text

    def test_write_report(self, tmp_path):
        path = tmp_path / "out.md"
        size = write_report(path, target_bytes=120_000)
        assert path.stat().st_size == size
        assert path.read_text().startswith("# dbDedup")
