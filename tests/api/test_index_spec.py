"""IndexSpec API: nesting, threading, deprecation shims, index_report."""

import warnings

import pytest

from repro.api import ClusterSpec, IndexSpec, open_cluster
from repro.core.config import DedupConfig
from repro.index import CuckooFeatureIndex, TieredFeatureIndex
from repro.util.deprecation import reset_deprecation_warnings
from repro.workloads import WikipediaWorkload


@pytest.fixture(autouse=True)
def fresh_warning_state():
    """Each test sees a process that has never warned."""
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


class TestIndexSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"kind": "btree"},
        {"num_buckets": 0},
        {"slots_per_bucket": 0},
        {"max_candidates": 0},
        {"hot_bytes_budget": 0},
        {"hot_bytes_budget": -1},
        {"cold_fpp": 0.0},
        {"cold_fpp": 1.0},
        {"promotion_hits": 0},
        {"cold_bands": 0},
        {"cold_band_records": 0},
        {"cold_band_features": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            IndexSpec(**kwargs)

    def test_frozen(self):
        spec = IndexSpec()
        with pytest.raises(AttributeError):
            spec.kind = "tiered"

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            IndexSpec("tiered")


class TestSpecThreading:
    def test_cluster_spec_nests_index(self):
        index = IndexSpec(kind="tiered", hot_bytes_budget=4096)
        spec = ClusterSpec(index=index)
        config = spec.to_cluster_config()
        assert config.dedup.index is index
        assert config.dedup.resolved_index() is index

    def test_open_cluster_builds_tiered_index(self):
        client = open_cluster(
            ClusterSpec(index=IndexSpec(kind="tiered", hot_bytes_budget=2048))
        )
        workload = WikipediaWorkload(seed=7, target_bytes=60_000)
        client.run(workload.insert_trace())
        engine = client.cluster.primary.engine
        indexes = [engine.index_for(db) for db in ("db",)]
        assert all(isinstance(ix, TieredFeatureIndex) for ix in indexes)

    def test_default_stays_cuckoo(self):
        client = open_cluster(ClusterSpec())
        assert isinstance(
            client.cluster.primary.engine.index_for("db"), CuckooFeatureIndex
        )


class TestFlatKnobDeprecation:
    def test_flat_knobs_warn_exactly_once_per_process(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DedupConfig(index_buckets=1 << 10).resolved_index()
            DedupConfig(index_slots=2).resolved_index()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "IndexSpec" in str(deprecations[0].message)

    def test_flat_knobs_still_shape_the_spec(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            spec = DedupConfig(
                index_buckets=1 << 10, index_slots=2, max_candidates=3
            ).resolved_index()
        assert spec.kind == "cuckoo"
        assert spec.num_buckets == 1 << 10
        assert spec.slots_per_bucket == 2
        assert spec.max_candidates == 3

    def test_defaults_never_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DedupConfig().resolved_index()
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_spec_plus_flat_knob_conflict_raises(self):
        with pytest.raises(ValueError):
            DedupConfig(index=IndexSpec(), index_buckets=1 << 10)


@pytest.mark.parametrize("shards", [1, 2])
class TestIndexReport:
    def test_cuckoo_report_shape(self, shards):
        client = open_cluster(ClusterSpec(shards=shards))
        workload = WikipediaWorkload(seed=3, target_bytes=60_000)
        client.run(workload.insert_trace())
        report = client.index_report()["shards"]
        assert len(report) == shards
        for shard in report.values():
            assert shard["kind"] == "cuckoo"
            assert shard["maintenance_cpu_seconds"] == 0.0
            for body in shard["partitions"].values():
                assert body["kind"] == "cuckoo"
                assert body["cold_records"] == 0
                assert body["hot_bytes_budget"] is None
                assert body["bytes_per_record"] >= 0.0

    def test_tiered_report_shape(self, shards):
        client = open_cluster(ClusterSpec(
            shards=shards,
            index=IndexSpec(kind="tiered", hot_bytes_budget=448),
        ))
        workload = WikipediaWorkload(seed=3, target_bytes=120_000)
        client.run(workload.insert_trace())
        report = client.index_report()["shards"]
        saw_demotion = False
        for shard in report.values():
            assert shard["kind"] == "tiered"
            for body in shard["partitions"].values():
                assert body["kind"] == "tiered"
                assert body["hot_bytes"] <= 448
                saw_demotion = saw_demotion or body["demotions"] > 0
        assert saw_demotion
