"""Legacy positional constructors: still work, warn exactly once."""

import warnings

import pytest

from repro.core.config import DedupConfig
from repro.core.engine import DedupEngine
from repro.db.cluster import Cluster, ClusterConfig
from repro.sim.costs import CostModel
from repro.util.deprecation import (
    reset_deprecation_warnings,
    warn_once,
)


@pytest.fixture(autouse=True)
def fresh_warning_state():
    """Each test sees a process that has never warned."""
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


class TestWarnOnce:
    def test_fires_once_per_key(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert warn_once("k", "message")
            assert not warn_once("k", "message")
            assert warn_once("other", "message")
        assert len(caught) == 2


class TestClusterShim:
    def test_positional_construction_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Cluster(ClusterConfig())
            Cluster(ClusterConfig(), CostModel())
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.api" in str(deprecations[0].message)

    def test_positional_still_builds_equivalent_cluster(self):
        config = ClusterConfig(insert_batch_size=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = Cluster(config)
        assert legacy.config is config

    def test_keyword_construction_never_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Cluster(config=ClusterConfig())
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_duplicate_argument_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(TypeError):
                Cluster(ClusterConfig(), config=ClusterConfig())

    def test_excess_positionals_rejected(self):
        with pytest.raises(TypeError):
            Cluster(ClusterConfig(), CostModel(), "surprise")


class TestEngineShim:
    def test_positional_engine_warns_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DedupEngine(DedupConfig())
            DedupEngine(DedupConfig())
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_each_constructor_warns_independently(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Cluster(ClusterConfig())
            DedupEngine(DedupConfig())
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2
