"""ClusterSpec: the consolidated, validated deployment description."""

import dataclasses

import pytest

from repro.api import ClusterSpec
from repro.core.config import DedupConfig


class TestValidation:
    def test_defaults_build(self):
        spec = ClusterSpec()
        assert spec.shards == 1
        assert spec.placement == "hash"

    def test_frozen(self):
        spec = ClusterSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.shards = 4

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            ClusterSpec(DedupConfig())

    def test_rejects_bad_shards(self):
        with pytest.raises(ValueError):
            ClusterSpec(shards=0)

    def test_rejects_bad_placement(self):
        with pytest.raises(ValueError):
            ClusterSpec(placement="round-robin")

    def test_delegates_cluster_config_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(insert_batch_size=0)
        with pytest.raises(ValueError):
            ClusterSpec(read_preference="nearest")


class TestToClusterConfig:
    def test_round_trips_every_shared_field(self):
        dedup = DedupConfig(chunk_size=128)
        spec = ClusterSpec(
            dedup=dedup,
            dedup_enabled=False,
            block_compression="snappy",
            batch_compression="zlib",
            use_writeback_cache=False,
            oplog_batch_bytes=1234,
            page_size=8192,
            insert_batch_size=4,
            num_secondaries=2,
            read_preference="secondary",
        )
        config = spec.to_cluster_config()
        assert config.dedup is dedup
        assert config.dedup_enabled is False
        assert config.block_compression == "snappy"
        assert config.batch_compression == "zlib"
        assert config.use_writeback_cache is False
        assert config.oplog_batch_bytes == 1234
        assert config.page_size == 8192
        assert config.insert_batch_size == 4
        assert config.num_secondaries == 2
        assert config.read_preference == "secondary"

    def test_topology_fields_stay_on_spec(self):
        config = ClusterSpec(shards=4, placement="prefix").to_cluster_config()
        assert not hasattr(config, "shards")
        assert not hasattr(config, "placement")
