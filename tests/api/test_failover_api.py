"""Client-facing failover behavior: transparency and typed errors.

The contract :class:`~repro.api.DedupClient` offers: with failover
enabled an outage is absorbed — operations stall in simulated time until
a secondary is promoted, then proceed; with it disabled the client
raises :class:`~repro.api.NodeUnavailableError`, typed and marked
retriable, with the remediation spelled out in the message.
"""

from __future__ import annotations

import pytest

from repro.api import ClusterSpec, NodeUnavailableError, open_cluster


class TestTransparency:
    def test_insert_survives_primary_crash(self):
        client = open_cluster(
            ClusterSpec(num_secondaries=2, oplog_batch_bytes=1)
        )
        client.insert("db", "before", b"first" * 50)
        client.cluster.primary.crash()
        latency = client.insert("db", "after", b"second" * 50)
        assert latency > 0
        assert client.cluster.failover.failovers == 1
        assert client.read("db", "before") == b"first" * 50
        assert client.read("db", "after") == b"second" * 50

    def test_read_survives_primary_crash(self):
        client = open_cluster(
            ClusterSpec(num_secondaries=1, oplog_batch_bytes=1)
        )
        client.insert("db", "r1", b"content" * 20)
        client.cluster.primary.crash()
        assert client.read("db", "r1") == b"content" * 20

    def test_stalled_ops_counted(self):
        client = open_cluster(ClusterSpec(oplog_batch_bytes=1))
        client.cluster.primary.crash()
        client.insert("db", "r1", b"x" * 40)
        assert client.cluster.failover.stalled_ops == 1


class TestTypedErrors:
    def test_disabled_failover_maps_to_retriable_error(self):
        client = open_cluster(ClusterSpec(failover_enabled=False))
        client.cluster.primary.crash()
        with pytest.raises(NodeUnavailableError) as caught:
            client.insert("db", "r1", b"x")
        assert caught.value.retriable is True
        assert caught.value.node_name == "primary"
        assert "safe to retry" in str(caught.value)
        assert "failover_enabled" in str(caught.value)

    def test_every_crud_method_maps(self):
        client = open_cluster(ClusterSpec(failover_enabled=False))
        client.insert("db", "r1", b"x")
        client.cluster.primary.crash()
        calls = [
            lambda: client.insert("db", "r2", b"y"),
            lambda: client.insert_many([("db", "r3", b"z")]),
            lambda: client.read("db", "r1"),
            lambda: client.update("db", "r1", b"y"),
            lambda: client.delete("db", "r1"),
        ]
        for call in calls:
            with pytest.raises(NodeUnavailableError, match="safe to retry"):
                call()


class TestSpecKnobs:
    def test_knobs_reach_the_manager(self):
        client = open_cluster(
            ClusterSpec(
                heartbeat_interval_s=0.5,
                failover_timeout_s=3.0,
                rejoin_delay_s=7.0,
            )
        )
        config = client.cluster.failover.config
        assert config.enabled is True
        assert config.heartbeat_interval_s == 0.5
        assert config.failover_timeout_s == 3.0
        assert config.rejoin_delay_s == 7.0

    def test_disabled_knob_reaches_the_manager(self):
        client = open_cluster(ClusterSpec(failover_enabled=False))
        assert client.cluster.failover.config.enabled is False

    def test_sharded_topology_gets_per_shard_managers(self):
        client = open_cluster(ClusterSpec(shards=2, failover_timeout_s=2.0))
        managers = [shard.failover for shard in client.cluster.shards]
        assert len(managers) == 2
        assert managers[0] is not managers[1]
        assert all(m.config.failover_timeout_s == 2.0 for m in managers)
