"""DedupClient facade: open, operate, inspect — on both topologies."""

import pytest

from repro.api import ClusterSpec, DedupClient, open_cluster
from repro.db.cluster import Cluster
from repro.db.sharding import ShardedCluster
from repro.workloads import WikipediaWorkload


class TestOpenCluster:
    def test_one_shard_opens_plain_cluster(self):
        client = open_cluster(ClusterSpec())
        assert isinstance(client, DedupClient)
        assert isinstance(client.cluster, Cluster)
        assert client.shards == 1

    def test_many_shards_open_sharded_cluster(self):
        client = open_cluster(ClusterSpec(shards=3))
        assert isinstance(client.cluster, ShardedCluster)
        assert client.shards == 3

    def test_overrides_without_spec(self):
        client = open_cluster(shards=2, placement="prefix")
        assert client.shards == 2
        assert client.spec.placement == "prefix"

    def test_overrides_on_top_of_spec(self):
        base = ClusterSpec(insert_batch_size=4)
        client = open_cluster(base, shards=2)
        assert client.shards == 2
        assert client.spec.insert_batch_size == 4

    def test_bad_override_raises(self):
        with pytest.raises(ValueError):
            open_cluster(shards=-1)


@pytest.mark.parametrize("shards", [1, 3])
class TestOperations:
    def test_crud_round_trip(self, shards):
        client = open_cluster(ClusterSpec(shards=shards))
        client.insert("db", "doc/1", b"alpha" * 100)
        assert client.read("db", "doc/1") == b"alpha" * 100
        client.update("db", "doc/1", b"beta" * 100)
        assert client.read("db", "doc/1") == b"beta" * 100
        client.delete("db", "doc/1")
        client.finalize()
        assert client.read("db", "doc/1") is None
        assert client.read("db", "doc/never") is None

    def test_insert_many_batches(self, shards):
        client = open_cluster(ClusterSpec(shards=shards))
        latency = client.insert_many(
            ("db", f"doc/{i}", b"payload" * 50) for i in range(8)
        )
        assert latency > 0
        assert all(
            client.read("db", f"doc/{i}") == b"payload" * 50 for i in range(8)
        )
        assert client.insert_many([]) == 0.0

    def test_run_and_stats(self, shards):
        client = open_cluster(ClusterSpec(shards=shards, insert_batch_size=4))
        workload = WikipediaWorkload(seed=5, target_bytes=100_000)
        result = client.run(workload.insert_trace())
        stats = client.stats()
        assert stats["inserts"] == result.inserts
        assert stats["logical_bytes"] == result.logical_bytes
        assert stats["shards"] == shards
        assert client.replicas_converged()

    def test_check_invariants(self, shards):
        client = open_cluster(ClusterSpec(shards=shards))
        workload = WikipediaWorkload(seed=5, target_bytes=60_000)
        client.run(workload.insert_trace())
        report = client.check_invariants()
        assert report.ok
        assert report.nodes_checked == 2 * shards

    def test_checkpoint(self, shards, tmp_path):
        client = open_cluster(ClusterSpec(shards=shards))
        workload = WikipediaWorkload(seed=5, target_bytes=60_000)
        client.run(workload.insert_trace())
        truncated = client.checkpoint(tmp_path / "ckpt")
        assert truncated > 0


class TestIntrospection:
    def test_exposes_clock_registry_tracer(self):
        client = open_cluster(ClusterSpec(shards=2))
        assert client.clock is client.cluster.clock
        assert client.registry is client.cluster.registry
        assert client.tracer is client.cluster.tracer

    def test_wrapping_existing_cluster(self):
        cluster = Cluster()
        client = DedupClient(cluster)
        assert client.cluster is cluster
        assert client.spec is None
        assert client.shards == 1
