#!/usr/bin/env python3
"""Lint gate: code outside ``src/repro/`` must use the public API.

The supported entry point is ``repro.api`` (``ClusterSpec`` +
``open_cluster`` + ``DedupClient``); ``repro.db.cluster.Cluster`` is an
internal constructor. This script fails CI when a file outside the
library internals imports ``Cluster`` directly — unless the file is on
the grandfathered allowlist of pre-redesign call sites below, which may
shrink but must never grow.

Run:  python tools/check_api_boundary.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Trees scanned for boundary violations (``src/repro`` itself is the
#: implementation and may import its own internals freely).
SCANNED_TREES = ("tests", "benchmarks", "examples", "tools")

#: A ``from repro[...] import`` (or direct module import) that binds the
#: bare name ``Cluster``. ``ClusterConfig``/``ClusterSpec``/
#: ``ShardedCluster`` stay importable — only the internal constructor is
#: fenced off.
BANNED = re.compile(
    r"^\s*("
    r"from\s+repro(\.db(\.cluster)?)?\s+import\s+[(\w ,]*\bCluster\b"
    r"|import\s+repro\.db\.cluster\b"
    r")"
)

#: Pre-redesign call sites, grandfathered as-is. Shrink only: migrating
#: one of these to ``repro.api`` removes its line; adding a NEW file
#: here (or a new import in a file not listed) is a boundary violation.
#: The §3.4.1 governor is now ``AdmissionController(mode="governor")``;
#: ``repro.core.governor.DedupGovernor`` survives only as a deprecated
#: warn-once shim. Code outside ``src/repro`` must not bind it — only
#: the legacy-semantics tests below may, and this set may never grow.
GOVERNOR_BANNED = re.compile(
    r"^\s*("
    r"from\s+repro\.core\.governor\s+import\b"
    r"|import\s+repro\.core\.governor\b"
    r"|from\s+repro(\.core)?\s+import\s+[(\w ,]*\bDedupGovernor\b"
    r")"
)

GOVERNOR_ALLOWED = frozenset({
    "tests/core/test_governor.py",   # pins the legacy governor semantics
    "tests/core/test_admission.py",  # asserts the deprecation shim warns
})

#: The flat index knobs on ``DedupConfig`` are deprecated in favour of
#: ``IndexSpec`` (nested as ``ClusterSpec.index`` / ``DedupConfig.index``).
#: Code outside ``src/repro`` must not set them; only the test that pins
#: the warn-once deprecation shim may. ``max_candidates`` stays legal —
#: it is a first-class ``IndexSpec`` kwarg, not only a flat knob.
FLAT_INDEX_BANNED = re.compile(r"^\s*\w.*\b(index_buckets|index_slots)\s*=")

FLAT_INDEX_ALLOWED = frozenset({
    "tests/api/test_index_spec.py",  # asserts the flat-knob shim warns
})

#: ``IndexSpec`` must be imported from the public surface (``repro.api``
#: or the ``repro.index`` package root), not from the internal module
#: that defines it — the spec module's location is an implementation
#: detail the API re-export insulates callers from.
INDEX_SPEC_BANNED = re.compile(
    r"^\s*(from\s+repro\.index\.spec\s+import\b|import\s+repro\.index\.spec\b)"
)

INDEX_SPEC_ALLOWED: frozenset[str] = frozenset()

ALLOWED = frozenset({
    "benchmarks/test_batch_insert.py",
    "tests/analysis/test_chains.py",
    "tests/api/test_client.py",       # exercises the boundary itself
    "tests/api/test_deprecation.py",  # asserts the legacy shim warns
    "tests/core/test_engine_rebuild.py",
    "tests/core/test_maintenance.py",
    "tests/db/test_batch_compression.py",
    "tests/db/test_batch_insert.py",
    "tests/db/test_checkpoint.py",
    "tests/db/test_cluster.py",
    "tests/db/test_invariants.py",
    "tests/db/test_multi_secondary.py",
    "tests/db/test_pending_references.py",
    "tests/db/test_physical_cluster.py",
    "tests/db/test_read_preference.py",
    "tests/db/test_recovery.py",
    "tests/db/test_snapshot.py",
    "tests/integration/test_cluster_chaos.py",
    "tests/integration/test_crud_dedup.py",
    "tests/integration/test_end_to_end.py",
    "tests/integration/test_failure_injection.py",
    "tests/integration/test_observability.py",
    "tests/integration/test_stateful.py",
    "tests/sim/test_faults.py",
    "tests/sim/test_network.py",
    "tests/test_cli.py",
    "tests/workloads/test_oltp.py",
    "tests/workloads/test_trace_io.py",
})


#: ``(pattern, allowlist, what the offending line should do instead)``.
RULES = (
    (BANNED, ALLOWED, "imports internal Cluster (use repro.api.open_cluster)"),
    (
        GOVERNOR_BANNED,
        GOVERNOR_ALLOWED,
        "imports the deprecated governor shim "
        '(use AdmissionController / admission_mode="governor")',
    ),
    (
        FLAT_INDEX_BANNED,
        FLAT_INDEX_ALLOWED,
        "sets a deprecated flat index knob "
        "(pass index=IndexSpec(...) instead)",
    ),
    (
        INDEX_SPEC_BANNED,
        INDEX_SPEC_ALLOWED,
        "imports the internal spec module "
        "(import IndexSpec from repro.api)",
    ),
)

#: Modules whose *public surface* is frozen, mapped to the exact set of
#: top-level names they may export. The scalar chunker is the
#: differential-testing oracle for the vectorized lane: it must stay a
#: single pure function so nothing can grow to depend on oracle-only
#: behaviour. Names starting with ``_`` and imports are not surface.
FROZEN_SURFACES = {
    "src/repro/chunking/scalar.py": frozenset({"scalar_boundaries"}),
}


def _public_surface(path: Path) -> set[str]:
    """Top-level public names a module defines (defs, classes, assigns)."""
    import ast

    tree = ast.parse(path.read_text(encoding="utf-8"))
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return {name for name in names if not name.startswith("_")}


def find_frozen_surface_violations() -> list[tuple[str, int, str, str]]:
    """Frozen modules exporting more (or less) than their pinned surface."""
    violations: list[tuple[str, int, str, str]] = []
    for relative, expected in FROZEN_SURFACES.items():
        path = REPO_ROOT / relative
        if not path.is_file():
            violations.append(
                (relative, 0, "<missing>", "frozen-surface module is gone")
            )
            continue
        actual = _public_surface(path)
        for name in sorted(actual - expected):
            violations.append((
                relative,
                0,
                name,
                "grows the frozen oracle surface (keep the scalar lane "
                "a single pure function)",
            ))
        for name in sorted(expected - actual):
            violations.append(
                (relative, 0, name, "frozen-surface name disappeared")
            )
    return violations


def find_violations() -> list[tuple[str, int, str, str]]:
    """``(relative_path, line_number, line, message)`` per banned import."""
    violations: list[tuple[str, int, str, str]] = list(
        find_frozen_surface_violations()
    )
    for tree in SCANNED_TREES:
        root = REPO_ROOT / tree
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            relative = path.relative_to(REPO_ROOT).as_posix()
            lines = path.read_text(encoding="utf-8").splitlines()
            for pattern, allowed, message in RULES:
                if relative in allowed:
                    continue
                for number, line in enumerate(lines, start=1):
                    if pattern.match(line):
                        violations.append(
                            (relative, number, line.strip(), message)
                        )
    return violations


def main() -> int:
    """Print violations; exit non-zero when the boundary is crossed."""
    violations = find_violations()
    for relative, number, line, message in violations:
        print(f"{relative}:{number}: {message}: {line}")
    if violations:
        print(
            f"\n{len(violations)} API-boundary violation(s). New code must "
            "go through repro.api (see docs/API.md); do not extend the "
            "allowlists in tools/check_api_boundary.py."
        )
        return 1
    print(
        "API boundary clean: no new internal Cluster or governor-shim "
        "imports; frozen oracle surface unchanged."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
