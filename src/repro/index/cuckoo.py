"""Cuckoo-hash feature index (§3.1.2).

Maps similarity features (sampled chunk hashes) to the records that carry
them. Each entry is modelled as the paper describes: a 2-byte compact
checksum of the feature plus a 4-byte pointer to the record — 6 bytes per
entry, which is the figure the index-memory numbers in Fig. 1/10 report.

Lookup semantics follow §3.1.2:

* two hash functions map a feature to two candidate buckets, each with
  several slots; lookup scans *both* buckets, collecting every entry whose
  checksum matches — one feature can legitimately map to many records;
* when the matches reach ``max_candidates``, the least-recently-used
  matching entry **across the full scan** is evicted to keep hot records
  discoverable, and the first ``max_candidates`` surviving matches (scan
  order: first bucket, then second, lowest slot first) are returned.
  Recency ties break toward the earliest match in that same scan order —
  between two equally stale entries the one found first is evicted;
* insert places the (checksum, record) entry in the first empty slot; when
  every candidate slot is taken, the least-recently-used entry among the
  candidate buckets is displaced.

Because the stored key is only a 16-bit checksum, lookups can return false
positives. That is by design: dbDedup's final delta-compression step
verifies every byte, so a wrong candidate costs a little work, never
correctness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.hashing.murmur import murmur3_32

#: Bytes charged per occupied entry: 2-byte checksum + 4-byte pointer.
#: The retained source feature (``_Entry.feature``) is simulation
#: bookkeeping for the tiered index's spill path and is *not* part of
#: this figure — :mod:`repro.index.tiered` charges it separately when a
#: real deployment would actually have to store it.
ENTRY_BYTES = 6


@dataclass
class _Entry:
    checksum: int
    record: Hashable
    last_used: int
    feature: int = 0
    bucket: int = -1


@dataclass
class _Bucket:
    slots: list[_Entry] = field(default_factory=list)


class CuckooFeatureIndex:
    """Fixed-capacity feature → record index with LRU displacement.

    Args:
        num_buckets: bucket count (rounded up to a power of two).
        slots_per_bucket: entries per bucket.
        max_candidates: cap on similar records returned per feature lookup.
    """

    def __init__(
        self,
        num_buckets: int = 1 << 16,
        slots_per_bucket: int = 4,
        max_candidates: int = 8,
    ) -> None:
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        if slots_per_bucket < 1:
            raise ValueError(f"slots_per_bucket must be >= 1, got {slots_per_bucket}")
        if max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
        size = 1
        while size < num_buckets:
            size <<= 1
        self._mask = size - 1
        self._buckets: list[_Bucket] = [_Bucket() for _ in range(size)]
        self.slots_per_bucket = slots_per_bucket
        self.max_candidates = max_candidates
        self._clock = 0
        self._entry_count = 0
        # Occupancy/traffic counters, exported via the metrics registry.
        self.lookups = 0
        self.inserts = 0
        #: Entries displaced because every candidate slot was taken
        #: (the cuckoo "kick" path).
        self.displacements = 0
        #: Matching entries evicted when a lookup hit ``max_candidates``.
        self.lru_evictions = 0
        #: Lookup outcome split (every lookup increments exactly one):
        #: ``hot_hits`` — at least one match; ``misses`` — none. The
        #: names match the tiered index so the exported ``index_*``
        #: families and their reconciliation identity are uniform across
        #: index kinds (a cuckoo index has no cold tier: cold hits are 0).
        self.hot_hits = 0
        self.misses = 0

    # -- memory accounting -------------------------------------------------

    def __len__(self) -> int:
        return self._entry_count

    @property
    def memory_bytes(self) -> int:
        """Memory charged for occupied entries (6 bytes each, per §3.1.2)."""
        return self._entry_count * ENTRY_BYTES

    # -- hashing -----------------------------------------------------------

    @staticmethod
    def _checksum(feature: int) -> int:
        """Compact 16-bit checksum stored as the entry key."""
        return murmur3_32(feature.to_bytes(8, "little"), seed=0xC0FFEE) & 0xFFFF

    def _bucket_indexes(self, feature: int) -> tuple[int, int]:
        raw = feature.to_bytes(8, "little")
        first = murmur3_32(raw, seed=0x1) & self._mask
        second = murmur3_32(raw, seed=0x2) & self._mask
        if second == first:
            second = (first + 1) & self._mask
        return first, second

    # -- operations ----------------------------------------------------------

    def lookup_and_insert(self, feature: int, record: Hashable) -> list[Hashable]:
        """Return records sharing ``feature``, then register ``record`` for it.

        This mirrors the paper's combined flow: every new record both queries
        the index and becomes discoverable by future records.
        """
        matches = self.lookup(feature)
        self.insert(feature, record)
        return matches

    def lookup(self, feature: int) -> list[Hashable]:
        """Records whose entries match ``feature``'s checksum (LRU-refreshed).

        Both candidate buckets are scanned in full before the
        ``max_candidates`` cap is applied, so the eviction it triggers
        always removes the least-recently-used match of the *whole*
        candidate set — an early-stopped scan used to evict the LRU of
        whatever prefix it happened to see, which could keep a staler
        entry alive in the unscanned remainder. Matches are bounded by
        ``2 * slots_per_bucket``, so the full scan costs the same O(slots)
        as before. Only the returned (capped) matches have their recency
        refreshed; surplus matches beyond the cap stay stale and become
        the next eviction candidates.
        """
        checksum = self._checksum(feature)
        self._clock += 1
        self.lookups += 1
        matches: list[_Entry] = []
        for index in self._bucket_indexes(feature):
            for entry in self._buckets[index].slots:
                if entry.checksum == checksum:
                    matches.append(entry)
        if len(matches) >= self.max_candidates:
            self._evict_lru(matches)
            matches = matches[: self.max_candidates]
        if not matches:
            self.misses += 1
            return []
        self.hot_hits += 1
        for entry in matches:
            entry.last_used = self._clock
        return [entry.record for entry in matches]

    def insert(self, feature: int, record: Hashable) -> None:
        """Register ``record`` under ``feature``, displacing LRU if full."""
        checksum = self._checksum(feature)
        first, second = self._bucket_indexes(feature)
        self._insert_hashed(feature, record, checksum, first, second)

    def insert_batch(
        self, features: Sequence[int], record_ids: Sequence[Hashable]
    ) -> None:
        """Insert many ``(feature, record)`` pairs with vectorized hashing.

        Semantically identical to ``insert(f, r)`` per pair in order, but
        the three murmur digests per pair (checksum + both bucket hashes)
        run as one numpy batch — the lane that makes the 10⁷-feature
        budget probes in ``benchmarks/`` feasible in pure Python.
        """
        from repro.hashing.murmur import murmur3_32_u64_batch

        checksums = murmur3_32_u64_batch(features, seed=0xC0FFEE)
        firsts = murmur3_32_u64_batch(features, seed=0x1)
        seconds = murmur3_32_u64_batch(features, seed=0x2)
        mask = self._mask
        for feature, record, checksum, first, second in zip(
            features, record_ids, checksums, firsts, seconds
        ):
            first = int(first) & mask
            second = int(second) & mask
            if second == first:
                second = (first + 1) & mask
            self._insert_hashed(
                int(feature), record, int(checksum) & 0xFFFF, first, second
            )

    def _insert_hashed(
        self,
        feature: int,
        record: Hashable,
        checksum: int,
        first: int,
        second: int,
    ) -> None:
        self._clock += 1
        self.inserts += 1
        entry = _Entry(checksum, record, self._clock, feature)
        candidates = (first, second)
        for index in candidates:
            bucket = self._buckets[index]
            if len(bucket.slots) < self.slots_per_bucket:
                entry.bucket = index
                bucket.slots.append(entry)
                self._entry_count += 1
                return
        # All candidate slots taken: displace the LRU entry among them.
        victim_index = -1
        victim_pos = -1
        victim_used = None
        for index in candidates:
            bucket = self._buckets[index]
            for pos, existing in enumerate(bucket.slots):
                if victim_used is None or existing.last_used < victim_used:
                    victim_index = index
                    victim_pos = pos
                    victim_used = existing.last_used
        if victim_index >= 0:
            entry.bucket = victim_index
            self._buckets[victim_index].slots[victim_pos] = entry
            self.displacements += 1

    def _evict_lru(self, matches: list[_Entry]) -> None:
        """Drop the least-recently-used entry among ``matches`` (§3.1.2).

        Tie-break: ``min`` keeps the first minimum, and ``matches`` is in
        scan order, so between equally stale entries the one scanned
        first (first bucket, lowest slot) is evicted.
        """
        victim = min(matches, key=lambda entry: entry.last_used)
        self._remove_entry(victim)
        self.lru_evictions += 1
        matches.remove(victim)

    def _remove_entry(self, victim: _Entry) -> None:
        """Unlink one entry from its bucket (identity match, not equality)."""
        slots = self._buckets[victim.bucket].slots
        for position, entry in enumerate(slots):
            if entry is victim:
                del slots[position]
                self._entry_count -= 1
                return

    def pop_lru(self, count: int) -> list[tuple[int, Hashable]]:
        """Remove the ``count`` least-recently-used entries, oldest first.

        Returns their ``(feature, record)`` pairs — what the tiered
        index's spill path needs to re-home an entry in the cold tier.
        Recency ties break toward bucket/slot scan order, matching
        :meth:`lookup` eviction. O(entries): spill-path only, called in
        budget-sized chunks so the scan amortizes over many inserts.
        """
        if count <= 0:
            return []
        victims = heapq.nsmallest(
            count,
            (
                entry
                for bucket in self._buckets
                for entry in bucket.slots
            ),
            key=lambda entry: entry.last_used,
        )
        for victim in victims:
            self._remove_entry(victim)
        return [(victim.feature, victim.record) for victim in victims]

    def record_ids(self) -> set[Hashable]:
        """Every record currently referenced by at least one entry.

        Used by the cluster invariant checker to assert index liveness:
        entries may only point at live records. O(buckets) — scrub-path
        only, never on the insert path.
        """
        return {
            entry.record
            for bucket in self._buckets
            for entry in bucket.slots
        }

    def remove_record(self, record: Hashable) -> int:
        """Remove every entry pointing at ``record``; returns entries removed."""
        removed = 0
        for bucket in self._buckets:
            kept = [entry for entry in bucket.slots if entry.record != record]
            removed += len(bucket.slots) - len(kept)
            bucket.slots = kept
        self._entry_count -= removed
        return removed

    def clear(self) -> None:
        """Drop all entries (used when the governor disables a database)."""
        for bucket in self._buckets:
            bucket.slots.clear()
        self._entry_count = 0
