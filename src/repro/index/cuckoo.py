"""Cuckoo-hash feature index (§3.1.2).

Maps similarity features (sampled chunk hashes) to the records that carry
them. Each entry is modelled as the paper describes: a 2-byte compact
checksum of the feature plus a 4-byte pointer to the record — 6 bytes per
entry, which is the figure the index-memory numbers in Fig. 1/10 report.

Lookup semantics follow §3.1.2:

* two hash functions map a feature to two candidate buckets, each with
  several slots; lookup scans the buckets, collecting every entry whose
  checksum matches — one feature can legitimately map to many records;
* the scan stops early once ``max_candidates`` matches are found, at which
  point the least-recently-used matching entry is evicted to keep hot
  records discoverable;
* insert places the (checksum, record) entry in the first empty slot; when
  every candidate slot is taken, the least-recently-used entry among the
  candidate buckets is displaced.

Because the stored key is only a 16-bit checksum, lookups can return false
positives. That is by design: dbDedup's final delta-compression step
verifies every byte, so a wrong candidate costs a little work, never
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.hashing.murmur import murmur3_32

#: Bytes charged per occupied entry: 2-byte checksum + 4-byte pointer.
ENTRY_BYTES = 6


@dataclass
class _Entry:
    checksum: int
    record: Hashable
    last_used: int
    bucket: int = -1


@dataclass
class _Bucket:
    slots: list[_Entry] = field(default_factory=list)


class CuckooFeatureIndex:
    """Fixed-capacity feature → record index with LRU displacement.

    Args:
        num_buckets: bucket count (rounded up to a power of two).
        slots_per_bucket: entries per bucket.
        max_candidates: cap on similar records returned per feature lookup.
    """

    def __init__(
        self,
        num_buckets: int = 1 << 16,
        slots_per_bucket: int = 4,
        max_candidates: int = 8,
    ) -> None:
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        if slots_per_bucket < 1:
            raise ValueError(f"slots_per_bucket must be >= 1, got {slots_per_bucket}")
        if max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
        size = 1
        while size < num_buckets:
            size <<= 1
        self._mask = size - 1
        self._buckets: list[_Bucket] = [_Bucket() for _ in range(size)]
        self.slots_per_bucket = slots_per_bucket
        self.max_candidates = max_candidates
        self._clock = 0
        self._entry_count = 0
        # Occupancy/traffic counters, exported via the metrics registry.
        self.lookups = 0
        self.inserts = 0
        #: Entries displaced because every candidate slot was taken
        #: (the cuckoo "kick" path).
        self.displacements = 0
        #: Matching entries evicted when a lookup hit ``max_candidates``.
        self.lru_evictions = 0

    # -- memory accounting -------------------------------------------------

    def __len__(self) -> int:
        return self._entry_count

    @property
    def memory_bytes(self) -> int:
        """Memory charged for occupied entries (6 bytes each, per §3.1.2)."""
        return self._entry_count * ENTRY_BYTES

    # -- hashing -----------------------------------------------------------

    @staticmethod
    def _checksum(feature: int) -> int:
        """Compact 16-bit checksum stored as the entry key."""
        return murmur3_32(feature.to_bytes(8, "little"), seed=0xC0FFEE) & 0xFFFF

    def _bucket_indexes(self, feature: int) -> tuple[int, int]:
        raw = feature.to_bytes(8, "little")
        first = murmur3_32(raw, seed=0x1) & self._mask
        second = murmur3_32(raw, seed=0x2) & self._mask
        if second == first:
            second = (first + 1) & self._mask
        return first, second

    # -- operations ----------------------------------------------------------

    def lookup_and_insert(self, feature: int, record: Hashable) -> list[Hashable]:
        """Return records sharing ``feature``, then register ``record`` for it.

        This mirrors the paper's combined flow: every new record both queries
        the index and becomes discoverable by future records.
        """
        matches = self.lookup(feature)
        self.insert(feature, record)
        return matches

    def lookup(self, feature: int) -> list[Hashable]:
        """Records whose entries match ``feature``'s checksum (LRU-refreshed)."""
        checksum = self._checksum(feature)
        self._clock += 1
        self.lookups += 1
        matches: list[_Entry] = []
        for index in self._bucket_indexes(feature):
            for entry in self._buckets[index].slots:
                if entry.checksum != checksum:
                    continue
                matches.append(entry)
                if len(matches) >= self.max_candidates:
                    self._evict_lru(matches)
                    return [entry.record for entry in matches]
        for entry in matches:
            entry.last_used = self._clock
        return [entry.record for entry in matches]

    def insert(self, feature: int, record: Hashable) -> None:
        """Register ``record`` under ``feature``, displacing LRU if full."""
        checksum = self._checksum(feature)
        self._clock += 1
        self.inserts += 1
        entry = _Entry(checksum, record, self._clock)
        candidates = self._bucket_indexes(feature)
        for index in candidates:
            bucket = self._buckets[index]
            if len(bucket.slots) < self.slots_per_bucket:
                entry.bucket = index
                bucket.slots.append(entry)
                self._entry_count += 1
                return
        # All candidate slots taken: displace the LRU entry among them.
        victim_index = -1
        victim_pos = -1
        victim_used = None
        for index in candidates:
            bucket = self._buckets[index]
            for pos, existing in enumerate(bucket.slots):
                if victim_used is None or existing.last_used < victim_used:
                    victim_index = index
                    victim_pos = pos
                    victim_used = existing.last_used
        if victim_index >= 0:
            entry.bucket = victim_index
            self._buckets[victim_index].slots[victim_pos] = entry
            self.displacements += 1

    def _evict_lru(self, matches: list[_Entry]) -> None:
        """Drop the least-recently-used entry among ``matches`` (§3.1.2)."""
        victim = min(matches, key=lambda entry: entry.last_used)
        bucket = self._buckets[victim.bucket]
        if victim in bucket.slots:
            bucket.slots.remove(victim)
            self._entry_count -= 1
            self.lru_evictions += 1
        matches.remove(victim)
        self._clock += 1
        for entry in matches:
            entry.last_used = self._clock

    def record_ids(self) -> set[Hashable]:
        """Every record currently referenced by at least one entry.

        Used by the cluster invariant checker to assert index liveness:
        entries may only point at live records. O(buckets) — scrub-path
        only, never on the insert path.
        """
        return {
            entry.record
            for bucket in self._buckets
            for entry in bucket.slots
        }

    def remove_record(self, record: Hashable) -> int:
        """Remove every entry pointing at ``record``; returns entries removed."""
        removed = 0
        for bucket in self._buckets:
            kept = [entry for entry in bucket.slots if entry.record != record]
            removed += len(bucket.slots) - len(kept)
            bucket.slots = kept
        self._entry_count -= removed
        return removed

    def clear(self) -> None:
        """Drop all entries (used when the governor disables a database)."""
        for bucket in self._buckets:
            bucket.slots.clear()
        self._entry_count = 0
