"""Exact-match chunk index for the trad-dedup baseline (§2.2).

Classic chunk-based dedup keeps one entry per *unique chunk*: a
collision-resistant SHA-1 digest (a collision here would silently corrupt
data, so a weak hash is not an option) plus a pointer to the stored chunk.
That is 24 bytes per unique chunk, and the entry count grows with corpus
size divided by chunk size — the memory blow-up Fig. 1/10 measure when the
chunk size drops from 4 KB to 64 B.
"""

from __future__ import annotations

import hashlib

#: Bytes charged per entry: 20-byte SHA-1 digest + 4-byte pointer.
ENTRY_BYTES = 24


class ExactChunkIndex:
    """Global chunk-hash index: digest → (location, chunk length)."""

    def __init__(self) -> None:
        self._entries: dict[bytes, tuple[int, int]] = {}
        self._next_location = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def memory_bytes(self) -> int:
        """Index memory charged at 24 bytes per unique chunk."""
        return len(self._entries) * ENTRY_BYTES

    @staticmethod
    def digest(chunk: bytes) -> bytes:
        """SHA-1 identity of a chunk."""
        return hashlib.sha1(chunk).digest()

    def observe(self, chunk: bytes) -> bool:
        """Record ``chunk``; return True if it was a duplicate.

        New chunks are assigned the next store location and indexed; known
        chunks leave the index untouched.
        """
        key = self.digest(chunk)
        if key in self._entries:
            return True
        self._entries[key] = (self._next_location, len(chunk))
        self._next_location += len(chunk)
        return False

    def contains(self, chunk: bytes) -> bool:
        """True if an identical chunk has been observed."""
        return self.digest(chunk) in self._entries
