"""Compact Bloom filter for the cold feature-index tier.

The tiered index (see :mod:`repro.index.tiered`) spills cold features
into per-band Bloom filters, following LSHBloom's constant-memory
approximate-membership-per-band construction. dbDedup tolerates the
resulting false positives by design — delta compression verifies every
byte — so the filter only needs to bound their *rate*, which the classic
sizing formula does: ``m = -n·ln(p) / ln(2)²`` bits for ``n`` expected
keys at false-positive probability ``p``, probed ``k = (m/n)·ln(2)``
times per key.

Keys are the 64-bit feature integers the index already traffics in;
probes use Kirsch–Mitzenmacher double hashing over two murmur digests,
so one membership test costs two hashes however many probes the sizing
picked. ``add_hashed``/``contains_hashed`` accept precomputed digest
pairs for the vectorized spill path.
"""

from __future__ import annotations

import math

from repro.hashing.murmur import murmur3_32

#: Murmur seeds of the double-hashing digest pair (h1, h2).
BLOOM_SEED_A = 0xB100F1
BLOOM_SEED_B = 0xB100F2

#: Floor on the bit-array size so degenerate capacities stay functional.
MIN_BITS = 64


def bloom_geometry(capacity: int, fpp: float) -> tuple[int, int]:
    """``(num_bits, num_hashes)`` for ``capacity`` keys at rate ``fpp``."""
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if not 0.0 < fpp < 1.0:
        raise ValueError(f"fpp must be in (0, 1), got {fpp}")
    num_bits = math.ceil(-capacity * math.log(fpp) / math.log(2) ** 2)
    num_bits = max(MIN_BITS, (num_bits + 7) // 8 * 8)
    num_hashes = max(1, round(num_bits / capacity * math.log(2)))
    return num_bits, num_hashes


def feature_digests(feature: int) -> tuple[int, int]:
    """The (h1, h2) double-hashing pair for one feature key.

    ``h2`` is forced odd so successive probes never collapse onto a
    single bit (an even stride shares factors with the power-friendly
    bit counts the sizing tends to pick).
    """
    raw = (feature & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    h1 = murmur3_32(raw, seed=BLOOM_SEED_A)
    h2 = murmur3_32(raw, seed=BLOOM_SEED_B) | 1
    return h1, h2


class BloomFilter:
    """Fixed-size bit array with double-hashed probes.

    Args:
        capacity: expected number of distinct keys.
        fpp: target false-positive probability at ``capacity`` keys.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "adds")

    def __init__(self, capacity: int, fpp: float) -> None:
        self.num_bits, self.num_hashes = bloom_geometry(capacity, fpp)
        self._bits = bytearray(self.num_bits // 8)
        #: ``add`` calls (duplicates included) — saturation telemetry.
        self.adds = 0

    @property
    def size_bytes(self) -> int:
        """Memory charged for the bit array."""
        return len(self._bits)

    def add_hashed(self, h1: int, h2: int) -> None:
        """Set the probe bits of a precomputed digest pair."""
        self.adds += 1
        bits = self._bits
        for probe in range(self.num_hashes):
            position = (h1 + probe * h2) % self.num_bits
            bits[position >> 3] |= 1 << (position & 7)

    def contains_hashed(self, h1: int, h2: int) -> bool:
        """Membership test for a precomputed digest pair."""
        bits = self._bits
        for probe in range(self.num_hashes):
            position = (h1 + probe * h2) % self.num_bits
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def add(self, feature: int) -> None:
        """Record ``feature`` as a member."""
        self.add_hashed(*feature_digests(feature))

    def __contains__(self, feature: int) -> bool:
        return self.contains_hashed(*feature_digests(feature))

    def contains(self, feature: int) -> bool:
        """Membership test: False means definitely absent."""
        return self.contains_hashed(*feature_digests(feature))
