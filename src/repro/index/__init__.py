"""Deduplication indexes.

* :class:`~repro.index.cuckoo.CuckooFeatureIndex` — dbDedup's compact
  in-memory feature index (2-byte checksum keys, 4-byte record pointers).
* :class:`~repro.index.tiered.TieredFeatureIndex` — the same structure as
  a byte-budgeted hot tier over a constant-memory Bloom-banded cold tier.
* :class:`~repro.index.spec.IndexSpec` — the frozen configuration record
  :func:`~repro.index.tiered.build_index` turns into either of the above.
* :class:`~repro.index.exact.ExactChunkIndex` — the full SHA-1 chunk index
  used by the trad-dedup baseline, whose size is what makes small chunks
  impractical for exact dedup (Fig. 1/10).
"""

from repro.index.bloom import BloomFilter
from repro.index.cuckoo import CuckooFeatureIndex
from repro.index.exact import ExactChunkIndex
from repro.index.spec import IndexSpec
from repro.index.tiered import FeatureIndex, TieredFeatureIndex, build_index

__all__ = [
    "BloomFilter",
    "CuckooFeatureIndex",
    "ExactChunkIndex",
    "FeatureIndex",
    "IndexSpec",
    "TieredFeatureIndex",
    "build_index",
]
