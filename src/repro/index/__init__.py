"""Deduplication indexes.

* :class:`~repro.index.cuckoo.CuckooFeatureIndex` — dbDedup's compact
  in-memory feature index (2-byte checksum keys, 4-byte record pointers).
* :class:`~repro.index.exact.ExactChunkIndex` — the full SHA-1 chunk index
  used by the trad-dedup baseline, whose size is what makes small chunks
  impractical for exact dedup (Fig. 1/10).
"""

from repro.index.cuckoo import CuckooFeatureIndex
from repro.index.exact import ExactChunkIndex

__all__ = ["CuckooFeatureIndex", "ExactChunkIndex"]
