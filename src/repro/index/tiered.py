"""Memory-bounded tiered feature index: exact hot tier, approximate cold tier.

The cuckoo feature index (§3.1.2) holds every feature in RAM forever,
which caps cluster size far short of hundred-million-record scale. This
module bounds it the way LSHBloom bounds LSH band storage and FOLD keeps
ANN-over-sketches incremental:

* the **hot tier** is the existing :class:`~repro.index.cuckoo.
  CuckooFeatureIndex` — exact, LRU-scored by the access recency it
  already tracks — kept under ``hot_bytes_budget`` bytes;
* the **cold tier** is a fixed set of feature *bands*; each band owns a
  Bloom filter (configurable false-positive budget ``cold_fpp``) plus a
  bounded FIFO set of candidate record references. Band memory is
  constant, so cold-tier bytes never grow with corpus size;
* crossing the hot budget **demotes** the LRU hot entries: the feature
  enters its band's filter and the record joins the band's candidate
  set. A cold feature looked up ``promotion_hits`` times is **promoted**
  back into the hot tier with the candidates its band returned.

Cold lookups are band-granular: every record that ever demoted a feature
into the band is a potential candidate, and the Bloom filter can fire
for features never demoted at all (counted in ``cold_false_positives``).
Both imprecisions are safe by dbDedup's own argument — the delta stage
verifies every byte, so a wrong candidate costs a little CPU, never
correctness. What the structure guarantees is *negative* accuracy where
it matters: a record removed from both tiers can never be returned
again, which is what keeps delete/update invalidation sound.

Each lookup increments exactly one of ``hot_hits`` / ``cold_hits`` /
``misses`` — the reconciliation identity ``check-metrics`` enforces on
the exported ``index_*`` families. Demotions and promotions accumulate
``maintenance_bytes`` that the engine drains and charges as background
simulation CPU (see :meth:`~repro.core.engine.DedupEngine.
charge_index_maintenance`).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.hashing.murmur import murmur3_32
from repro.index.bloom import BloomFilter, feature_digests
from repro.index.cuckoo import ENTRY_BYTES, CuckooFeatureIndex
from repro.index.spec import IndexSpec

#: Murmur seed of the feature → band assignment hash.
BAND_SEED = 0xBA2D

#: Bytes charged per candidate record reference held by a band (a 4-byte
#: record pointer, same currency as the cuckoo entry's pointer).
BAND_POINTER_BYTES = 4

#: Bytes charged per *hot* entry: the 6-byte cuckoo entry plus the 8-byte
#: source feature a spilling tier must retain (a bare checksum cannot be
#: re-banded, so a real implementation stores the feature alongside).
HOT_ENTRY_BYTES = ENTRY_BYTES + 8

#: Fraction of the budget the spill path drains down to, so the
#: O(entries) LRU scan runs once per ~budget/8 inserted bytes instead of
#: on every insert at the boundary.
SPILL_TARGET_NUM, SPILL_TARGET_DEN = 7, 8

#: Bound on the promotion hit-count map; at the bound the oldest half of
#: the tracked features is dropped (insertion order), keeping promotion
#: state O(1) however many cold features are probed.
MAX_TRACKED_COLD_HITS = 8192


class _Band:
    """One cold-tier feature band: Bloom membership + candidate records."""

    __slots__ = ("bloom", "records", "features")

    def __init__(self, capacity: int, fpp: float) -> None:
        self.bloom = BloomFilter(capacity, fpp)
        #: Insertion-ordered record set (dict keys), FIFO beyond the cap.
        self.records: dict[Hashable, None] = {}
        #: Exact shadow of demoted features — *simulation ground truth*
        #: used only to count true Bloom false positives; a real node
        #: would not store it, so it is never charged to memory_bytes.
        #: None when the index was built with tracking disabled.
        self.features: set[int] | None


class TieredFeatureIndex:
    """Hot/cold feature index with a byte-budgeted exact tier.

    Duck-types the :class:`~repro.index.cuckoo.CuckooFeatureIndex`
    surface the engine, pipeline, and invariant checker consume
    (``lookup`` / ``insert`` / ``lookup_and_insert`` / ``remove_record``
    / ``record_ids`` / ``clear`` / ``memory_bytes`` / ``__len__`` plus
    the traffic counters), and adds the tier machinery described in the
    module docstring.

    Args:
        spec: an :class:`~repro.index.spec.IndexSpec` with
            ``kind="tiered"`` (geometry, budget, fpp, promotion knobs).
        track_false_positives: keep the exact per-band feature shadow
            sets that let the simulator count *true* Bloom false
            positives. Disable for huge synthetic probes (10⁷ features)
            where the shadow would dwarf the structure being measured;
            ``cold_false_positives`` then stays 0.
    """

    def __init__(
        self, spec: IndexSpec, *, track_false_positives: bool = True
    ) -> None:
        if spec.kind != "tiered":
            raise ValueError(f"expected a tiered spec, got kind={spec.kind!r}")
        self.spec = spec
        self.hot = CuckooFeatureIndex(
            num_buckets=spec.num_buckets,
            slots_per_bucket=spec.slots_per_bucket,
            max_candidates=spec.max_candidates,
        )
        self.max_candidates = spec.max_candidates
        self.hot_bytes_budget = spec.hot_bytes_budget
        self._track = track_false_positives
        #: Bands materialize on first demotion so an index that never
        #: spills charges no cold-tier memory.
        self._bands: dict[int, _Band] = {}
        self._cold_hit_counts: dict[int, int] = {}
        # Lookup outcome split: exactly one bumps per lookup.
        self.lookups = 0
        self.hot_hits = 0
        self.cold_hits = 0
        self.misses = 0
        #: Cold Bloom hits for features never demoted into the band
        #: (0 when the ground-truth shadow is disabled).
        self.cold_false_positives = 0
        self.demotions = 0
        self.promotions = 0
        #: Entry bytes moved between tiers since the last drain; the
        #: engine converts these to background CPU seconds.
        self.maintenance_bytes = 0

    # -- cuckoo-surface delegation ----------------------------------------

    @property
    def inserts(self) -> int:
        """Hot-tier insertions (promotion re-inserts included)."""
        return self.hot.inserts

    @property
    def displacements(self) -> int:
        """Hot-tier cuckoo kicks."""
        return self.hot.displacements

    @property
    def lru_evictions(self) -> int:
        """Hot-tier lookup-cap LRU evictions."""
        return self.hot.lru_evictions

    def __len__(self) -> int:
        return self.hot_entries + self.cold_records

    @property
    def hot_entries(self) -> int:
        """Entries resident in the exact hot tier."""
        return len(self.hot)

    @property
    def cold_records(self) -> int:
        """Candidate record references held across all cold bands."""
        return sum(len(band.records) for band in self._bands.values())

    @property
    def hot_bytes(self) -> int:
        """Hot-tier memory: cuckoo entries plus their retained features."""
        return len(self.hot) * HOT_ENTRY_BYTES

    @property
    def cold_bytes(self) -> int:
        """Cold-tier memory: materialized band filters + record pointers."""
        return sum(
            band.bloom.size_bytes + len(band.records) * BAND_POINTER_BYTES
            for band in self._bands.values()
        )

    @property
    def memory_bytes(self) -> int:
        """Total charged index memory across both tiers."""
        return self.hot_bytes + self.cold_bytes

    # -- tier mechanics ----------------------------------------------------

    def _band_of(self, feature: int) -> int:
        raw = (feature & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        return murmur3_32(raw, seed=BAND_SEED) % self.spec.cold_bands

    def _band(self, band_id: int) -> _Band:
        band = self._bands.get(band_id)
        if band is None:
            band = _Band(self.spec.cold_band_features, self.spec.cold_fpp)
            band.features = set() if self._track else None
            self._bands[band_id] = band
        return band

    def _demote(self, feature: int, record: Hashable) -> None:
        band = self._band(self._band_of(feature))
        band.bloom.add(feature)
        if band.features is not None:
            band.features.add(feature)
        if record in band.records:
            # Refresh FIFO position: re-demoted records are recent again.
            del band.records[record]
        band.records[record] = None
        while len(band.records) > self.spec.cold_band_records:
            del band.records[next(iter(band.records))]
        self.demotions += 1
        self.maintenance_bytes += HOT_ENTRY_BYTES

    def _enforce_budget(self) -> None:
        budget = self.hot_bytes_budget
        if budget is None or self.hot_bytes <= budget:
            return
        target = budget * SPILL_TARGET_NUM // SPILL_TARGET_DEN
        excess = self.hot_bytes - target
        count = -(-excess // HOT_ENTRY_BYTES)  # ceil
        for feature, record in self.hot.pop_lru(count):
            self._demote(feature, record)

    def _note_cold_hit(
        self, feature: int, candidates: list[Hashable]
    ) -> None:
        counts = self._cold_hit_counts
        count = counts.get(feature, 0) + 1
        if count < self.spec.promotion_hits:
            if feature not in counts and len(counts) >= MAX_TRACKED_COLD_HITS:
                for stale in list(counts)[: MAX_TRACKED_COLD_HITS // 2]:
                    del counts[stale]
            counts[feature] = count
            return
        # Promote: the feature re-enters the hot tier with the candidates
        # its band vouched for, so the next lookup is exact again.
        counts.pop(feature, None)
        for record in candidates:
            self.hot.insert(feature, record)
            self.maintenance_bytes += HOT_ENTRY_BYTES
        self.promotions += 1
        self._enforce_budget()

    # -- operations --------------------------------------------------------

    def lookup(self, feature: int) -> list[Hashable]:
        """Candidate records for ``feature``: hot tier first, then bands."""
        self.lookups += 1
        matches = self.hot.lookup(feature)
        if matches:
            self.hot_hits += 1
            return matches
        band = self._bands.get(self._band_of(feature))
        if band is None:
            self.misses += 1
            return []
        h1, h2 = feature_digests(feature)
        if not band.bloom.contains_hashed(h1, h2):
            self.misses += 1
            return []
        if band.features is not None and feature not in band.features:
            self.cold_false_positives += 1
        if not band.records:
            self.misses += 1
            return []
        # Newest demotions first: the record list is FIFO-ordered, and
        # recent records are the likeliest delta sources (§3.1.3's
        # recency preference, applied at band granularity).
        candidates = list(band.records)[-self.max_candidates:][::-1]
        self.cold_hits += 1
        self._note_cold_hit(feature, candidates)
        return candidates

    def insert(self, feature: int, record: Hashable) -> None:
        """Register ``record`` under ``feature`` in the hot tier."""
        self.hot.insert(feature, record)
        self._enforce_budget()

    def insert_batch(
        self, features: Sequence[int], record_ids: Sequence[Hashable]
    ) -> None:
        """Bulk insert with vectorized hashing; budget enforced once."""
        self.hot.insert_batch(features, record_ids)
        self._enforce_budget()

    def lookup_and_insert(
        self, feature: int, record: Hashable
    ) -> list[Hashable]:
        """Query then register — the paper's combined per-feature flow."""
        matches = self.lookup(feature)
        self.insert(feature, record)
        return matches

    def drain_maintenance_bytes(self) -> int:
        """Return and reset the pending demotion/promotion byte count."""
        drained = self.maintenance_bytes
        self.maintenance_bytes = 0
        return drained

    # -- invalidation and introspection ------------------------------------

    def remove_record(self, record: Hashable) -> int:
        """Remove ``record`` from both tiers; returns references removed.

        Cold-tier candidates are band-level record references, so one
        removal per band suffices — after it, no lookup can resurrect
        the record regardless of which features it carried.
        """
        removed = self.hot.remove_record(record)
        for band in self._bands.values():
            if record in band.records:
                del band.records[record]
                removed += 1
        return removed

    def record_ids(self) -> set[Hashable]:
        """Every record referenced by either tier (invariant checking)."""
        ids = self.hot.record_ids()
        for band in self._bands.values():
            ids.update(band.records)
        return ids

    def clear(self) -> None:
        """Drop both tiers (governor-driven partition teardown)."""
        self.hot.clear()
        self._bands.clear()
        self._cold_hit_counts.clear()

    def tier_report(self) -> dict:
        """Operator-facing snapshot used by ``DedupClient.index_report``."""
        return {
            "kind": "tiered",
            "hot_entries": self.hot_entries,
            "hot_bytes": self.hot_bytes,
            "hot_bytes_budget": self.hot_bytes_budget,
            "cold_records": self.cold_records,
            "cold_bands_materialized": len(self._bands),
            "cold_bytes": self.cold_bytes,
            "lookups": self.lookups,
            "hot_hits": self.hot_hits,
            "cold_hits": self.cold_hits,
            "misses": self.misses,
            "cold_false_positives": self.cold_false_positives,
            "demotions": self.demotions,
            "promotions": self.promotions,
        }


def build_index(spec: IndexSpec) -> CuckooFeatureIndex | TieredFeatureIndex:
    """Construct the feature index an :class:`IndexSpec` describes."""
    if spec.kind == "tiered":
        return TieredFeatureIndex(spec)
    return CuckooFeatureIndex(
        num_buckets=spec.num_buckets,
        slots_per_bucket=spec.slots_per_bucket,
        max_candidates=spec.max_candidates,
    )


#: Union accepted everywhere a feature index flows (engine, invariants).
FeatureIndex = CuckooFeatureIndex | TieredFeatureIndex
