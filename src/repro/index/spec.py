"""The one index-configuration object the public API accepts.

Before this redesign the feature-index knobs rode as three loose fields
on :class:`~repro.core.config.DedupConfig` (``index_buckets`` /
``index_slots`` / ``max_candidates``) and only ever described the
unbounded cuckoo structure. :class:`IndexSpec` consolidates them and
adds the memory-bounded tiered variant: a frozen, keyword-only record of
*which* index to build and *how big it may get*, nested as
``ClusterSpec.index`` (and ``DedupConfig.index``) and consumed by
:func:`repro.index.tiered.build_index`.

This module is deliberately dependency-free (a dataclass and its
validation, nothing else) so it sits below both :mod:`repro.core` and
:mod:`repro.api` in the layering — the API package re-exports it, the
engine consumes it, and neither import direction inverts.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Index kinds :func:`repro.index.tiered.build_index` understands.
INDEX_KINDS = ("cuckoo", "tiered")


@dataclass(frozen=True, kw_only=True)
class IndexSpec:
    """Frozen, keyword-only description of the feature index.

    Attributes:
        kind: ``"cuckoo"`` — the paper's unbounded in-memory structure
            (§3.1.2) — or ``"tiered"`` — the same cuckoo structure as a
            byte-budgeted hot tier over a constant-memory approximate
            cold tier (Bloom filter per feature band).
        num_buckets / slots_per_bucket: cuckoo geometry (hot tier
            geometry when tiered); buckets round up to a power of two.
        max_candidates: per-feature cap on similar records returned by a
            lookup before LRU eviction kicks in (§3.1.2).
        hot_bytes_budget: tiered only — byte ceiling on the hot tier;
            exceeding it demotes LRU entries into the cold tier. None
            means unbounded (the tiered index then never demotes, and a
            cuckoo index ignores the field entirely).
        cold_fpp: tiered only — target false-positive probability of
            each cold-tier band filter.
        promotion_hits: tiered only — cold lookups of the same feature
            before it is promoted back into the hot tier.
        cold_bands: tiered only — number of cold-tier feature bands.
        cold_band_records: tiered only — candidate record references
            retained per band (FIFO beyond the cap).
        cold_band_features: tiered only — expected distinct features per
            band, the capacity each band filter is sized for.
    """

    kind: str = "cuckoo"
    num_buckets: int = 1 << 16
    slots_per_bucket: int = 4
    max_candidates: int = 8
    hot_bytes_budget: int | None = None
    cold_fpp: float = 0.01
    promotion_hits: int = 2
    cold_bands: int = 128
    cold_band_records: int = 128
    cold_band_features: int = 2048

    def __post_init__(self) -> None:
        if self.kind not in INDEX_KINDS:
            raise ValueError(
                f"index kind must be one of {INDEX_KINDS}, got {self.kind!r}"
            )
        if self.num_buckets < 1:
            raise ValueError(
                f"num_buckets must be >= 1, got {self.num_buckets}"
            )
        if self.slots_per_bucket < 1:
            raise ValueError(
                f"slots_per_bucket must be >= 1, got {self.slots_per_bucket}"
            )
        if self.max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {self.max_candidates}"
            )
        if self.hot_bytes_budget is not None and self.hot_bytes_budget < 1:
            raise ValueError(
                "hot_bytes_budget must be >= 1 or None (unbounded), got "
                f"{self.hot_bytes_budget}"
            )
        if not 0.0 < self.cold_fpp < 1.0:
            raise ValueError(
                f"cold_fpp must be in (0, 1), got {self.cold_fpp}"
            )
        if self.promotion_hits < 1:
            raise ValueError(
                f"promotion_hits must be >= 1, got {self.promotion_hits}"
            )
        if self.cold_bands < 1:
            raise ValueError(
                f"cold_bands must be >= 1, got {self.cold_bands}"
            )
        if self.cold_band_records < 1:
            raise ValueError(
                f"cold_band_records must be >= 1, got {self.cold_band_records}"
            )
        if self.cold_band_features < 1:
            raise ValueError(
                "cold_band_features must be >= 1, got "
                f"{self.cold_band_features}"
            )
