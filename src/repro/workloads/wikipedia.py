"""Wikipedia-style workload: articles under incremental revision (§5.1).

Structure mirrors the real dump's duplication sources: every insert is a
full new version of an article (application-level versioning), almost
always derived from the latest revision by small dispersed edits;
occasionally a revert/derivation from an older revision, which is what
produces the paper's rare overlapped encodings (>95 % of updates are
incremental on the latest version, §3.2.1).

Trace ratios from §5.1: reads:writes = 99.9:0.1, with 99.7 % of reads
going to the latest version of a page and the rest to a specific older
revision.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.workloads.base import Operation, Workload
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator

#: Of the derivation bases, this fraction is the latest revision. §3.2.1
#: observes "> 95%" of updates are incremental; the measured Fig. 11 loss
#: (< 4.5% total) pins actual derivations-from-old — each of which orphans
#: one raw record (Fig. 5) — near the 1% mark.
INCREMENTAL_FRACTION = 0.995

#: §5.1 trace ratios.
READS_PER_WRITE = 999  # 99.9 : 0.1
LATEST_READ_FRACTION = 0.997


class WikipediaWorkload(Workload):
    """Synthetic wiki corpus: few articles, many revisions each."""

    name = "wikipedia"

    def __init__(
        self,
        seed: int = 1,
        target_bytes: int = 2_000_000,
        num_articles: int | None = None,
        median_article_bytes: int = 6000,
        incremental_fraction: float = INCREMENTAL_FRACTION,
    ) -> None:
        super().__init__(seed=seed, target_bytes=target_bytes)
        if not 0.0 < incremental_fraction <= 1.0:
            raise ValueError(
                f"incremental_fraction must be in (0, 1], got "
                f"{incremental_fraction}"
            )
        self.incremental_fraction = incremental_fraction
        # Articles sized so the average chain grows to ~50 revisions —
        # real wiki pages accumulate hundreds, so chains must be long
        # enough that per-chain raw overhead (tail + latest hop bases)
        # amortizes as it does on the real dataset.
        self.num_articles = (
            num_articles
            if num_articles is not None
            else max(3, target_bytes // (median_article_bytes * 50))
        )
        self.median_article_bytes = median_article_bytes

    def _metadata(self, text_gen: TextGenerator, article: int, revision: int) -> str:
        return (
            f"title: Article_{article}\n"
            f"revision: {revision}\n"
            f"user: {text_gen.identifier('user')}\n"
            f"comment: {text_gen.sentence()}\n\n"
        )

    def _record_id(self, article: int, revision: int) -> str:
        return f"wiki/{article}/{revision}"

    def _generate_revisions(self) -> Iterator[tuple[int, int, bytes]]:
        """Yield ``(article, revision_number, content)`` in creation order."""
        rng = random.Random(self.seed)
        text_gen = TextGenerator(self.seed + 1)
        bodies: list[list[str]] = [[] for _ in range(self.num_articles)]
        # Per-article edit hot spot (§ edit locality): most revisions keep
        # churning the same region; occasionally attention moves.
        hot_spots = [rng.random() for _ in range(self.num_articles)]
        produced = 0
        while produced < self.target_bytes:
            article = rng.randrange(self.num_articles)
            revisions = bodies[article]
            if rng.random() < 0.05:
                hot_spots[article] = rng.random()
            if not revisions:
                body = text_gen.document(
                    text_gen.lognormal_size(self.median_article_bytes, sigma=0.8)
                )
            else:
                if rng.random() < self.incremental_fraction or len(revisions) == 1:
                    base = revisions[-1]
                else:
                    base = revisions[rng.randrange(len(revisions) - 1)]
                body = revise(rng, text_gen, base, focus=hot_spots[article])
            revisions.append(body)
            revision = len(revisions) - 1
            content = (self._metadata(text_gen, article, revision) + body).encode()
            produced += len(content)
            yield article, revision, content

    def insert_trace(self) -> Iterator[Operation]:
        for article, revision, content in self._generate_revisions():
            yield Operation(
                kind="insert",
                database=self.name,
                record_id=self._record_id(article, revision),
                content=content,
            )

    def mixed_trace(self) -> Iterator[Operation]:
        """Writes interleaved with 99.9 % reads per the public access trace.

        Read popularity is Zipf-skewed across articles, as the Wikipedia
        access study the paper's trace derives from reports: a few hot
        pages absorb most traffic.
        """
        rng = random.Random(self.seed + 2)
        latest: dict[int, int] = {}
        for article, revision, content in self._generate_revisions():
            yield Operation(
                kind="insert",
                database=self.name,
                record_id=self._record_id(article, revision),
                content=content,
            )
            latest[article] = revision
            known = sorted(latest)
            # Scaled-down read burst per write, preserving the read mix.
            for _ in range(min(READS_PER_WRITE, 20)):
                # Zipf-ish pick: quadratic bias toward low article ids.
                rank = int(len(known) * rng.random() ** 2)
                target_article = known[min(rank, len(known) - 1)]
                newest = latest[target_article]
                if rng.random() < LATEST_READ_FRACTION or newest == 0:
                    target_revision = newest
                else:
                    target_revision = rng.randrange(newest)
                yield Operation(
                    kind="read",
                    database=self.name,
                    record_id=self._record_id(target_article, target_revision),
                )

    def bursty_insert_trace(
        self, burst_seconds: float = 10.0, idle_seconds: float = 10.0,
        inserts_per_burst: int = 200,
    ) -> Iterator[Operation]:
        """Fig. 13b's pattern: full-speed insert bursts with idle gaps."""
        pending = 0
        for op in self.insert_trace():
            yield op
            pending += 1
            if pending >= inserts_per_burst:
                pending = 0
                yield Operation(kind="idle", idle_seconds=idle_seconds)
