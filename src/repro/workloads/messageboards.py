"""vBulletin-style message-board workload: quoted forum posts (§5.1).

"Duplication mainly originates from users quoting others' comments."
Threads accumulate posts; a post quotes zero or more earlier posts of its
thread. The read trace mimics forum browsing: each insertion triggers a
number of *thread reads* — requests for all previous posts in the thread —
derived from the thread's view count divided by its post count.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.workloads.base import Operation, Workload
from repro.workloads.edits import quote
from repro.workloads.text import TextGenerator

#: Probability that a post quotes at least one earlier post.
QUOTE_FRACTION = 0.45

#: Mean posts per thread (geometric).
MEAN_THREAD_LENGTH = 12.0

#: Scaled-down thread reads per insertion.
THREAD_READS_PER_INSERT = 2


class MessageBoardsWorkload(Workload):
    """Synthetic threaded forum corpus."""

    name = "messageboards"

    def __init__(
        self,
        seed: int = 1,
        target_bytes: int = 2_000_000,
        median_post_bytes: int = 500,
    ) -> None:
        super().__init__(seed=seed, target_bytes=target_bytes)
        self.median_post_bytes = median_post_bytes

    def _generate_posts(self) -> Iterator[tuple[int, int, bytes]]:
        """Yield ``(thread_id, post_index, content)`` in creation order."""
        rng = random.Random(self.seed)
        text_gen = TextGenerator(self.seed + 1)
        produced = 0
        next_thread = 0
        # thread id -> list of post bodies
        threads: dict[int, list[str]] = {}
        active: list[int] = []
        while produced < self.target_bytes:
            extend = active and rng.random() < 1.0 - 1.0 / MEAN_THREAD_LENGTH
            if extend:
                thread_id = active[rng.randrange(len(active))]
            else:
                thread_id = next_thread
                next_thread += 1
                threads[thread_id] = []
                active.append(thread_id)
                if len(active) > 48:
                    retired = active.pop(0)
                    # Keep bodies for reads, but stop extending the thread.
                    threads[retired] = threads[retired]
            posts = threads[thread_id]
            new_text = text_gen.document(
                text_gen.lognormal_size(self.median_post_bytes, sigma=1.0)
            )
            if posts and rng.random() < QUOTE_FRACTION:
                quoted = posts[rng.randrange(len(posts))]
                body = quote(quoted) + "\n\n" + new_text
            else:
                body = new_text
            meta = (
                f"forum: board_{thread_id % 7}\n"
                f"thread: {thread_id}\n"
                f"post: {len(posts)}\n"
                f"user: {text_gen.identifier('member')}\n\n"
            )
            content = (meta + body).encode()
            produced += len(content)
            posts.append(body)
            yield thread_id, len(posts) - 1, content

    @staticmethod
    def _record_id(thread_id: int, post_index: int) -> str:
        return f"board/{thread_id}/{post_index}"

    def insert_trace(self) -> Iterator[Operation]:
        for thread_id, post_index, content in self._generate_posts():
            yield Operation(
                kind="insert",
                database=self.name,
                record_id=self._record_id(thread_id, post_index),
                content=content,
            )

    def mixed_trace(self) -> Iterator[Operation]:
        """Each insertion is followed by thread reads of all prior posts."""
        rng = random.Random(self.seed + 2)
        post_counts: dict[int, int] = {}
        for thread_id, post_index, content in self._generate_posts():
            yield Operation(
                kind="insert",
                database=self.name,
                record_id=self._record_id(thread_id, post_index),
                content=content,
            )
            post_counts[thread_id] = post_index + 1
            for _ in range(THREAD_READS_PER_INSERT):
                target_thread = rng.choice(list(post_counts))
                count = post_counts[target_thread]
                # A "thread read" requests every post in the thread, capped
                # to keep simulated traces tractable.
                for index in range(min(count, 8)):
                    yield Operation(
                        kind="read",
                        database=self.name,
                        record_id=self._record_id(target_thread, index),
                    )
