"""Synthetic natural-ish text with realistic entropy.

The compression experiments only care about two properties of the corpus:
the *redundancy structure between records* (created by the edit/quote
models) and the *entropy within a record* (which determines what a block
compressor like Snappy can do). A Zipf-distributed vocabulary of generated
words with sentence/paragraph structure lands block-compression ratios in
the 1.6–2.3× band the paper reports for its real text datasets.
"""

from __future__ import annotations

import bisect
import random
import string

_VOCABULARY_SIZE = 24000
_ZIPF_EXPONENT = 1.0


class TextGenerator:
    """Deterministic text source with a Zipfian vocabulary."""

    def __init__(self, seed: int = 1) -> None:
        self.rng = random.Random(seed)
        vocab_rng = random.Random(0xB00C)  # vocabulary shared across seeds
        self._words = [self._make_word(vocab_rng) for _ in range(_VOCABULARY_SIZE)]
        weights = [1.0 / (rank + 1) ** _ZIPF_EXPONENT for rank in range(_VOCABULARY_SIZE)]
        total = 0.0
        self._cumulative = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total_weight = total

    @staticmethod
    def _make_word(rng: random.Random) -> str:
        length = rng.randint(2, 11)
        return "".join(rng.choice(string.ascii_lowercase) for _ in range(length))

    def word(self) -> str:
        """One Zipf-sampled word."""
        point = self.rng.random() * self._total_weight
        return self._words[bisect.bisect_left(self._cumulative, point)]

    def sentence(self) -> str:
        """One sentence of 4–18 words with light punctuation and numerals."""
        count = self.rng.randint(4, 18)
        words = [self.word() for _ in range(count)]
        # Sprinkle high-entropy tokens (numbers, names, links) so block
        # compressors see realistic text, not a tiny dictionary.
        if self.rng.random() < 0.3:
            words.insert(self.rng.randrange(len(words)), str(self.rng.randint(0, 99999)))
        if self.rng.random() < 0.12:
            words.insert(self.rng.randrange(len(words)), self.identifier("ref-"))
        words[0] = words[0].capitalize()
        return " ".join(words) + self.rng.choice([".", ".", ".", "!", "?"])

    def paragraph(self, approx_bytes: int = 400) -> str:
        """A paragraph of sentences totalling roughly ``approx_bytes``."""
        parts: list[str] = []
        size = 0
        while size < approx_bytes:
            sentence = self.sentence()
            parts.append(sentence)
            size += len(sentence) + 1
        return " ".join(parts)

    def document(self, approx_bytes: int) -> str:
        """A multi-paragraph document of roughly ``approx_bytes``."""
        parts: list[str] = []
        size = 0
        while size < approx_bytes:
            paragraph = self.paragraph(min(600, max(120, approx_bytes // 4)))
            parts.append(paragraph)
            size += len(paragraph) + 2
        return "\n\n".join(parts)

    def identifier(self, prefix: str) -> str:
        """A unique-looking token such as a username or message id."""
        return f"{prefix}{self.rng.randrange(1 << 32):08x}"

    def lognormal_size(self, median: float, sigma: float = 1.0,
                       minimum: int = 64, maximum: int = 1 << 20) -> int:
        """Heavy-tailed record size (log-normal, clamped)."""
        value = int(self.rng.lognormvariate(_ln(median), sigma))
        return max(minimum, min(maximum, value))


def _ln(value: float) -> float:
    import math

    return math.log(value)
