"""Workload generators standing in for the paper's four datasets (§5.1).

Each generator synthesizes a corpus with the *duplication structure* of its
real counterpart — incremental revisions (Wikipedia), quoted replies
(Enron), self-edits and copied answers (Stack Exchange), quoted forum posts
(Message Boards) — plus a read/write trace matching the paper's ratios.
All generators are fully deterministic given a seed.
"""

from repro.workloads.base import Operation, Workload
from repro.workloads.enron import EnronWorkload
from repro.workloads.messageboards import MessageBoardsWorkload
from repro.workloads.oltp import OltpWorkload
from repro.workloads.stackexchange import StackExchangeWorkload
from repro.workloads.wikipedia import WikipediaWorkload

#: The paper's four evaluation datasets.
ALL_WORKLOADS = (
    WikipediaWorkload,
    EnronWorkload,
    StackExchangeWorkload,
    MessageBoardsWorkload,
)

#: Additional workloads beyond the paper's (negative controls etc.).
EXTRA_WORKLOADS = (OltpWorkload,)


def make_workload(name: str, seed: int = 1, target_bytes: int = 2_000_000) -> Workload:
    """Factory by dataset name: the paper's four ('wikipedia', 'enron',
    'stackexchange', 'messageboards') plus 'oltp' (negative control)."""
    for cls in ALL_WORKLOADS + EXTRA_WORKLOADS:
        if cls.name == name:
            return cls(seed=seed, target_bytes=target_bytes)
    raise ValueError(f"unknown workload {name!r}")


from repro.workloads.tenants import (  # noqa: E402 — uses make_workload
    ArrivalProcess,
    OpenLoopDriver,
    TenantSpec,
    TimedOperation,
    compose_tenants,
    derive_seed,
    parse_tenants,
    tenant_operations,
)

__all__ = [
    "Operation",
    "Workload",
    "WikipediaWorkload",
    "EnronWorkload",
    "StackExchangeWorkload",
    "MessageBoardsWorkload",
    "OltpWorkload",
    "ALL_WORKLOADS",
    "EXTRA_WORKLOADS",
    "make_workload",
    "ArrivalProcess",
    "OpenLoopDriver",
    "TenantSpec",
    "TimedOperation",
    "compose_tenants",
    "derive_seed",
    "parse_tenants",
    "tenant_operations",
]
