"""Trace model shared by all workload generators."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass


@dataclass(frozen=True)
class Operation:
    """One client operation in a trace.

    Attributes:
        kind: 'insert', 'read', 'update', 'delete', or 'idle'.
        database: logical database name (the dedup partition key).
        record_id: target record ('' for idle).
        content: payload for writes, None otherwise.
        idle_seconds: quiet time for 'idle' operations.
    """

    kind: str
    database: str = ""
    record_id: str = ""
    content: bytes | None = None
    idle_seconds: float = 0.0


class Workload(ABC):
    """A reproducible dataset + trace generator.

    Subclasses synthesize records until roughly ``target_bytes`` of raw
    insert payload have been produced. ``insert_trace`` is the load used by
    the compression experiments ("load the records as fast as possible");
    ``mixed_trace`` interleaves reads per the paper's per-dataset ratios
    for the performance experiments.
    """

    #: Paper dataset name, e.g. 'wikipedia'.
    name: str = ""

    def __init__(self, seed: int = 1, target_bytes: int = 2_000_000) -> None:
        if target_bytes < 10_000:
            raise ValueError(f"target_bytes too small: {target_bytes}")
        self.seed = seed
        self.target_bytes = target_bytes

    @abstractmethod
    def insert_trace(self) -> Iterator[Operation]:
        """Insert-only trace in creation-time order."""

    @abstractmethod
    def mixed_trace(self) -> Iterator[Operation]:
        """Inserts interleaved with reads per the dataset's R/W ratio."""

    def database_name(self) -> str:
        """Logical database all of this workload's records live in."""
        return self.name
