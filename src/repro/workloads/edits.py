"""Edit and quote models: how one record derives from another.

These produce exactly the duplication patterns §2.1 names:

* :func:`revise` — incremental revisions: "duplicate regions ... are
  usually small (on the order of 10's to 100's of bytes) and spread out
  within a record".
* :func:`quote` — inclusion: replies/forwards/forum posts embedding a
  prior record's body, usually with a quote prefix.
"""

from __future__ import annotations

import random

from repro.workloads.text import TextGenerator


def draw_edit_count(rng: random.Random) -> int:
    """Revision edit-count distribution: mostly minor, heavy tail of rewrites.

    Real revision histories are dominated by 1–2-edit changes, but a
    noticeable minority are substantial rewrites — which is exactly what
    separates coarse (1 KB) from fine (64 B) similarity detection in
    Fig. 1/10: a heavily edited revision keeps no intact 1 KB chunk yet
    still shares plenty of 64 B chunks with its parent.
    """
    if rng.random() < 0.8:
        return min(4, 1 + int(rng.expovariate(1.0 / 0.7)))
    return min(24, 7 + int(rng.expovariate(1.0 / 5.0)))


def revise(
    rng: random.Random,
    text_gen: TextGenerator,
    body: str,
    num_edits: int | None = None,
    grow_bias: float = 0.55,
    focus: float | None = None,
    focus_width: int = 1200,
) -> str:
    """Produce the next revision of ``body`` with small, local edits.

    Each edit is an insertion, deletion, or replacement of tens to a few
    hundred bytes; ``grow_bias`` controls how often edits add text.

    Args:
        focus: optional hot-spot as a fraction of the document (0–1). Most
            edits of most revisions land near it — the edit *locality* real
            wikis exhibit (talk sections, current-events paragraphs). That
            locality is what keeps hop-encoding deltas spanning H revisions
            close in size to adjacent deltas (Fig. 14): repeated edits
            churn the same region instead of accumulating disjoint diffs.
        focus_width: byte width of the hot region around the focus.
    """
    if num_edits is None:
        num_edits = draw_edit_count(rng)
    revised = body
    for _ in range(num_edits):
        if focus is not None and rng.random() < 0.75 and len(revised) > focus_width:
            center = int(len(revised) * focus)
            low = max(0, center - focus_width // 2)
            high = min(len(revised) - 1, center + focus_width // 2)
            position = rng.randint(low, high)
            # Hot-region edits replace rather than grow, so the region
            # churns in place.
            edit_kind = "replace" if rng.random() < 0.8 else "insert"
        else:
            position = rng.randrange(max(1, len(revised)))
            roll = rng.random()
            if roll < grow_bias or len(revised) < 200:
                edit_kind = "insert"
            elif roll < grow_bias + 0.2:
                edit_kind = "delete"
            else:
                edit_kind = "replace"
        # Snap to a word boundary for realism.
        space = revised.find(" ", position)
        if space >= 0:
            position = space + 1
        if edit_kind == "insert" or len(revised) < 200:
            addition = text_gen.sentence()
            revised = revised[:position] + addition + " " + revised[position:]
        elif edit_kind == "delete":
            span = rng.randint(10, 120)
            revised = revised[:position] + revised[position + span :]
        else:
            span = rng.randint(10, 80)
            replacement = text_gen.sentence()
            revised = (
                revised[:position] + replacement + " " + revised[position + span :]
            )
    return revised


def quote(body: str, prefix: str = "> ", depth_limit: int = 6) -> str:
    """Quote ``body`` the way mail clients and forums do.

    Already-deeply-quoted lines beyond ``depth_limit`` are dropped, which
    keeps pathological reply chains from growing without bound (real
    clients truncate too).
    """
    lines = []
    for line in body.splitlines():
        depth = 0
        probe = line
        while probe.startswith(prefix):
            probe = probe[len(prefix) :]
            depth += 1
        if depth >= depth_limit:
            continue
        lines.append(prefix + line)
    return "\n".join(lines)
