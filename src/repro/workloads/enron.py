"""Enron-style email workload: replies and forwards quoting prior mail (§5.1).

Duplication "primarily comes from message forwards and replies that contain
content of previous messages". Threads are built of an original message and
a chain of replies, each embedding the quoted previous body under its new
text, exactly as real clients do.

Trace from §5.1: the sorted corpus is inserted as fast as possible; after
each insertion the message is read once (aggregate R/W of 1:1 — each user's
client fetches a message once and caches it locally).
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.workloads.base import Operation, Workload
from repro.workloads.edits import quote
from repro.workloads.text import TextGenerator

#: Mean number of messages in a thread (geometric).
MEAN_THREAD_LENGTH = 5.0

#: Fraction of follow-ups that are forwards (full quote, no trim).
FORWARD_FRACTION = 0.2


class EnronWorkload(Workload):
    """Synthetic email corpus with reply/forward quoting."""

    name = "enron"

    def __init__(
        self,
        seed: int = 1,
        target_bytes: int = 2_000_000,
        median_body_bytes: int = 900,
        num_users: int = 150,
    ) -> None:
        super().__init__(seed=seed, target_bytes=target_bytes)
        self.median_body_bytes = median_body_bytes
        self.num_users = num_users

    def _headers(self, text_gen: TextGenerator, rng: random.Random,
                 thread: int, position: int) -> str:
        sender = rng.randrange(self.num_users)
        receiver = rng.randrange(self.num_users)
        return (
            f"from: user{sender}@enron.example\n"
            f"to: user{receiver}@enron.example\n"
            f"message-id: <{text_gen.identifier('msg')}@enron.example>\n"
            f"subject: {'Re: ' * min(position, 3)}thread {thread}\n\n"
        )

    def _generate_messages(self) -> Iterator[tuple[str, bytes]]:
        rng = random.Random(self.seed)
        text_gen = TextGenerator(self.seed + 1)
        produced = 0
        thread = 0
        message_seq = 0
        # Open threads: (thread id, last body, messages so far).
        open_threads: list[tuple[int, str, int]] = []
        while produced < self.target_bytes:
            extend = open_threads and rng.random() < 1.0 - 1.0 / MEAN_THREAD_LENGTH
            if extend:
                slot = rng.randrange(len(open_threads))
                thread_id, last_body, count = open_threads[slot]
                new_text = text_gen.document(
                    text_gen.lognormal_size(self.median_body_bytes, sigma=0.9)
                )
                if rng.random() < FORWARD_FRACTION:
                    body = (
                        new_text
                        + "\n\n---------- Forwarded message ----------\n"
                        + last_body
                    )
                else:
                    body = new_text + "\n\n" + quote(last_body)
                open_threads[slot] = (thread_id, body, count + 1)
                position = count + 1
            else:
                thread += 1
                thread_id = thread
                body = text_gen.document(
                    text_gen.lognormal_size(self.median_body_bytes, sigma=0.9)
                )
                open_threads.append((thread_id, body, 1))
                if len(open_threads) > 64:
                    open_threads.pop(0)
                position = 0
            content = (
                self._headers(text_gen, rng, thread_id, position) + body
            ).encode()
            produced += len(content)
            record_id = f"mail/{message_seq}"
            message_seq += 1
            yield record_id, content

    def insert_trace(self) -> Iterator[Operation]:
        for record_id, content in self._generate_messages():
            yield Operation(
                kind="insert", database=self.name, record_id=record_id,
                content=content,
            )

    def mixed_trace(self) -> Iterator[Operation]:
        """1:1 R/W — each message is read right after it is written."""
        for record_id, content in self._generate_messages():
            yield Operation(
                kind="insert", database=self.name, record_id=record_id,
                content=content,
            )
            yield Operation(kind="read", database=self.name, record_id=record_id)
