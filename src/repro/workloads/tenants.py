"""Open-loop multi-tenant traffic: seeded arrivals against the sim clock.

Every experiment before this module was *closed-loop*: the next operation
started the instant the previous one finished, so queueing delay could
not exist and "latency" meant service time only. Production load is
open-loop — clients arrive when they arrive, and an overloaded system
accumulates a queue whose waiting time dominates the tail. This module
supplies the missing half:

* :class:`TenantSpec` — one tenant: a workload mix plus an arrival
  process (Poisson base rate, diurnal sine modulation, burst windows);
* :class:`ArrivalProcess` — the seeded non-homogeneous Poisson sampler
  (Lewis–Shedler thinning), deterministic per ``(seed, tenant)``;
* :func:`compose_tenants` — merge N tenants' timed operations into one
  arrival-ordered schedule;
* :class:`OpenLoopDriver` — replay the schedule against a cluster,
  idling the simulation up to each arrival and recording *sojourn* time
  (completion − arrival = queueing + service) in its own histograms.

All randomness flows through named, seeded ``random.Random`` instances
derived via :func:`derive_seed` (murmur3 of the stream name — stable
across PYTHONHASHSEED), so two same-seed runs are byte-identical.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.hashing.murmur import murmur3_32
from repro.obs.registry import OP_LATENCY_BUCKETS_S, MetricsRegistry
from repro.workloads.base import Operation

#: Tenant label carried by operations with no tenant context.
DEFAULT_TENANT_RATE_OPS_S = 60.0


def derive_seed(base: int, name: str) -> int:
    """A child seed for the named RNG stream, stable across processes.

    Hashing the stream *name* with murmur3 (rather than Python's
    randomized ``hash``) keeps derived seeds identical across
    PYTHONHASHSEED values — the property the byte-identical-bundle
    determinism test pins down.
    """
    return murmur3_32(name.encode("utf-8"), base & 0xFFFFFFFF)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a workload mix plus an arrival-process shape.

    Attributes:
        name: tenant label (becomes the logical database / dedup
            partition and the ``tenant`` metric label).
        workload: source workload name (``wikipedia``/``enron``/
            ``stackexchange``/``messageboards``/``oltp``).
        rate_ops_s: base Poisson arrival rate, operations per simulated
            second.
        diurnal_amplitude: relative amplitude of the sine modulation
            (0 disables it; 0.3 means the rate swings ±30%).
        diurnal_period_s: period of one simulated "day".
        burst_factor: rate multiplier inside a burst window (1 disables
            bursts).
        burst_duration_s: length of each burst window.
        mean_burst_gap_s: mean (exponential) gap between burst windows.
        target_bytes: raw bytes of workload trace to generate.
    """

    name: str
    workload: str
    rate_ops_s: float = DEFAULT_TENANT_RATE_OPS_S
    diurnal_amplitude: float = 0.3
    diurnal_period_s: float = 600.0
    burst_factor: float = 3.0
    burst_duration_s: float = 5.0
    mean_burst_gap_s: float = 120.0
    target_bytes: int = 200_000

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rate_ops_s <= 0:
            raise ValueError(f"rate_ops_s must be > 0, got {self.rate_ops_s}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}"
            )
        if self.burst_factor < 1.0:
            raise ValueError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if self.burst_duration_s <= 0 or self.mean_burst_gap_s <= 0:
            raise ValueError("burst duration and gap must be > 0")


@dataclass(frozen=True)
class TimedOperation:
    """One operation with its open-loop arrival time.

    ``seq`` is the per-tenant sequence number; the global schedule is
    ordered by ``(at_s, tenant, seq)`` so ties break deterministically.
    """

    at_s: float
    tenant: str
    seq: int
    op: Operation

    @property
    def sort_key(self) -> tuple[float, str, int]:
        """Total order of the merged schedule."""
        return (self.at_s, self.tenant, self.seq)


class ArrivalProcess:
    """Seeded non-homogeneous Poisson arrivals for one tenant.

    The instantaneous rate is::

        rate(t) = base · (1 + A·sin(2πt/P)) · boost(t)

    where ``boost(t)`` is ``burst_factor`` inside lazily generated burst
    windows (exponential inter-burst gaps) and 1 elsewhere. Sampling
    uses Lewis–Shedler thinning: candidate arrivals at the envelope rate
    ``λmax = base·(1+A)·burst_factor`` are accepted with probability
    ``rate(t)/λmax``. Candidates are generated in increasing ``t``, so
    the lazy burst schedule only ever advances.
    """

    def __init__(
        self, spec: TenantSpec, base_seed: int, rate_scale: float = 1.0
    ) -> None:
        if rate_scale <= 0:
            raise ValueError(f"rate_scale must be > 0, got {rate_scale}")
        self.spec = spec
        self.rate_ops_s = spec.rate_ops_s * rate_scale
        self._rng = random.Random(
            derive_seed(base_seed, f"arrivals/{spec.name}")
        )
        self._burst_rng = random.Random(
            derive_seed(base_seed, f"bursts/{spec.name}")
        )
        self._burst_start = math.inf
        self._burst_end = 0.0
        self._schedule_next_burst(after=0.0)

    def _schedule_next_burst(self, after: float) -> None:
        if self.spec.burst_factor <= 1.0:
            self._burst_start = math.inf
            self._burst_end = math.inf
            return
        gap = self._burst_rng.expovariate(1.0 / self.spec.mean_burst_gap_s)
        self._burst_start = after + gap
        self._burst_end = self._burst_start + self.spec.burst_duration_s

    def _boost(self, t: float) -> float:
        while t >= self._burst_end:
            self._schedule_next_burst(after=self._burst_end)
        if t >= self._burst_start:
            return self.spec.burst_factor
        return 1.0

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at simulated time ``t``.

        Monotone-``t`` calls only (the lazy burst schedule advances).
        """
        spec = self.spec
        diurnal = 1.0 + spec.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / spec.diurnal_period_s
        )
        return self.rate_ops_s * diurnal * self._boost(t)

    def times(self) -> Iterator[float]:
        """Yield arrival times in increasing order, forever."""
        spec = self.spec
        lam_max = (
            self.rate_ops_s * (1.0 + spec.diurnal_amplitude)
            * spec.burst_factor
        )
        t = 0.0
        while True:
            t += self._rng.expovariate(lam_max)
            if self._rng.random() * lam_max <= self.rate_at(t):
                yield t


def tenant_operations(
    spec: TenantSpec, base_seed: int
) -> list[Operation]:
    """The tenant's trace, rewritten into its own namespace.

    Operations come from the workload's mixed trace with idles removed
    (the open loop supplies its own gaps — a closed-loop idle would
    double-count quiet time). Records are rewritten to
    ``database=tenant`` and ``record_id="tenant/<original>"``: each
    tenant dedups in its own partition and record ids cannot collide
    across tenants, while the id *prefix* keeps locality-preserving
    placement meaningful.
    """
    from repro.workloads import make_workload

    workload = make_workload(
        spec.workload,
        seed=derive_seed(base_seed, f"workload/{spec.name}"),
        target_bytes=spec.target_bytes,
    )
    ops = []
    for op in workload.mixed_trace():
        if op.kind == "idle":
            continue
        ops.append(
            Operation(
                kind=op.kind,
                database=spec.name,
                record_id=f"{spec.name}/{op.record_id}",
                content=op.content,
            )
        )
    return ops


def compose_tenants(
    specs: Sequence[TenantSpec],
    base_seed: int,
    rate_scale: float = 1.0,
) -> list[TimedOperation]:
    """Merge every tenant's timed trace into one arrival-ordered schedule.

    Each tenant's operations (fixed work, from its workload trace) are
    assigned arrival times from its own seeded process; ``rate_scale``
    multiplies every tenant's rate uniformly — the knob the sustainable-
    rate search turns (same work, compressed arrivals).
    """
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")

    def timed(spec: TenantSpec) -> Iterator[TimedOperation]:
        ops = tenant_operations(spec, base_seed)
        arrivals = ArrivalProcess(spec, base_seed, rate_scale)
        for seq, (at_s, op) in enumerate(zip(arrivals.times(), ops)):
            yield TimedOperation(at_s=at_s, tenant=spec.name, seq=seq, op=op)

    streams = [timed(spec) for spec in specs]
    return list(
        heapq.merge(*streams, key=lambda item: item.sort_key)
    )


class OpenLoopDriver:
    """Replay a timed schedule against a cluster, measuring sojourn time.

    The driver owns a *private* metrics registry (separate from the
    cluster's, which on sharded topologies is a per-shard merge): per
    tenant and op kind it records

    * ``op_sojourn_seconds`` — completion − arrival, the client-
      experienced latency including queueing delay and encode-CPU
      stalls;
    * ``op_service_seconds`` — the cluster's service time alone;
    * ``openloop_arrivals_total`` / ``openloop_queued_ops_total`` —
      arrivals, and how many found the system still busy;
    * ``openloop_cpu_stall_seconds_total`` — time operations waited for
      their shard's encode-CPU backlog to clear.

    **CPU contention model.** The cluster charges dedup encode as
    ``background_cpu_seconds`` — off the client's critical path, which
    is dbDedup's design and correct closed-loop. Open-loop it cannot be
    free: each shard's primary is one machine, and background encode
    occupies it between requests. The driver therefore keeps a per-shard
    *CPU backlog* — background seconds generated but not yet executed.
    Idle gaps between arrivals pay the backlog down (that is exactly
    what "encode in the background" means); an operation arriving while
    its shard still owes CPU waits for the backlog first. This is the
    mechanism that makes admission ``defer`` measurable: deferring a
    low-yield stream moves its encode CPU out of dense arrival windows
    and into the gaps, flattening the sojourn tail.

    The model lives entirely in this driver — closed-loop experiments
    and their baselines are untouched.

    ``cpu_scale`` calibrates the machine. The ``CostModel`` charges
    encode at a dedicated modern core's throughput (~400 MB/s gear
    sketching), which makes encode CPU invisible next to millisecond
    disk seeks. Open-loop we model the HPDedup premise instead — a
    primary whose CPU is *shared* with query processing, compaction and
    replication, so each background-encode second occupies the machine
    ``cpu_scale`` times longer than the dedicated-core charge. The scale
    multiplies accrued backlog only; the cluster's own CPU accounting
    (``admission_*_cpu_seconds_total`` etc.) stays in dedicated-core
    units so closed-loop numbers remain comparable across experiments.
    """

    def __init__(self, cluster, cpu_scale: float = 1.0) -> None:
        if cpu_scale < 0:
            raise ValueError(f"cpu_scale must be >= 0, got {cpu_scale}")
        self.cluster = cluster
        self.cpu_scale = float(cpu_scale)
        #: Per-shard machines: a plain cluster is its own single shard.
        self._shards = list(getattr(cluster, "shards", [cluster]))
        self._router = getattr(cluster, "router", None)
        self._cpu_levels = [
            shard.primary.background_cpu_seconds for shard in self._shards
        ]
        self._cpu_backlogs = [0.0] * len(self._shards)
        self.registry = MetricsRegistry()
        labels = ("op", "tenant")
        self._sojourn = self.registry.histogram(
            "op_sojourn_seconds",
            "Open-loop completion minus arrival time (queueing + service)",
            labels, buckets=OP_LATENCY_BUCKETS_S,
        )
        self._service = self.registry.histogram(
            "op_service_seconds",
            "Open-loop service time alone (the cluster-reported latency)",
            labels, buckets=OP_LATENCY_BUCKETS_S,
        )
        self._arrivals = self.registry.counter(
            "openloop_arrivals_total",
            "Operations that arrived, per tenant", ("tenant",),
        )
        self._queued = self.registry.counter(
            "openloop_queued_ops_total",
            "Arrivals that found the system still busy", ("tenant",),
        )
        self._cpu_stalls = self.registry.counter(
            "openloop_cpu_stall_seconds_total",
            "Seconds operations waited on encode-CPU backlog, per tenant",
            ("tenant",),
        )

    def _shard_of(self, op: Operation) -> int:
        if self._router is None:
            return 0
        return self._router.route(op)

    def _accrue_cpu(self) -> None:
        """Fold newly charged background CPU into each shard's backlog."""
        for index, shard in enumerate(self._shards):
            level = shard.primary.background_cpu_seconds
            delta = level - self._cpu_levels[index]
            if delta > 0:
                self._cpu_backlogs[index] += delta * self.cpu_scale
            # A promotion swaps the primary object; resync the level
            # either way so a lower counter never yields a negative
            # delta forever after.
            self._cpu_levels[index] = level

    def _pay_backlogs(self, elapsed: float) -> None:
        """All shard machines work in parallel for ``elapsed`` seconds."""
        for index in range(len(self._cpu_backlogs)):
            backlog = self._cpu_backlogs[index]
            if backlog > 0:
                self._cpu_backlogs[index] = max(0.0, backlog - elapsed)

    def run(self, schedule: Iterable[TimedOperation]) -> int:
        """Execute the schedule; returns the number of operations run."""
        cluster = self.cluster
        clock = cluster.clock
        count = 0
        for item in schedule:
            self._arrivals.labels(item.tenant).inc()
            gap = item.at_s - clock.now
            if gap > 0:
                cluster.execute(Operation(kind="idle", idle_seconds=gap))
                # Deferred-dedup drains during the gap charged new CPU;
                # fold it in, then let the gap pay every backlog down.
                self._accrue_cpu()
                self._pay_backlogs(gap)
            else:
                self._queued.labels(item.tenant).inc()
            shard = self._shard_of(item.op)
            stall = self._cpu_backlogs[shard]
            if stall > 0:
                # The op waits for its machine to finish owed encode
                # work; the other machines keep working meanwhile.
                clock.advance(stall)
                self._cpu_backlogs[shard] = 0.0
                self._cpu_stalls.labels(item.tenant).inc(stall)
                self._pay_backlogs(stall)
            start = clock.now
            service = cluster.execute(item.op)
            # Other machines keep working during this op's service time;
            # only then does the op's own encode CPU join its backlog
            # (the background encode starts after the insert returns).
            self._pay_backlogs(clock.now - start)
            self._accrue_cpu()
            sojourn = clock.now - item.at_s
            if sojourn < service:
                sojourn = service  # float-slice rounding guard
            self._sojourn.labels(item.op.kind, item.tenant).observe(sojourn)
            self._service.labels(item.op.kind, item.tenant).observe(service)
            count += 1
        cluster.finalize()
        return count

    def quantile(
        self, family: str, op: str, tenant: str, q: float
    ) -> float | None:
        """One histogram child's interpolated quantile, None when empty
        and ``math.inf`` is passed through (overflow bucket)."""
        child = self.registry.get(family).labels(op, tenant)
        if child.count == 0:
            return None
        return child.quantile(q)


def parse_tenants(
    spec: str, target_bytes: int | None = None
) -> list[TenantSpec]:
    """Parse a ``--tenants`` value into tenant specs.

    Comma-separated ``workload[:rate_ops_s]`` entries, e.g.
    ``"wikipedia,oltp:120"``. The tenant name is the workload name,
    suffixed with an index when the same workload appears twice
    (``"wikipedia,wikipedia"`` → ``wikipedia``, ``wikipedia2``).
    ``target_bytes`` overrides every tenant's corpus size.
    """
    specs: list[TenantSpec] = []
    seen: dict[str, int] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        workload, _, rate_text = entry.partition(":")
        rate = DEFAULT_TENANT_RATE_OPS_S
        if rate_text:
            rate = float(rate_text)
        count = seen.get(workload, 0) + 1
        seen[workload] = count
        name = workload if count == 1 else f"{workload}{count}"
        kwargs: dict = {}
        if target_bytes is not None:
            kwargs["target_bytes"] = target_bytes
        specs.append(
            TenantSpec(
                name=name, workload=workload, rate_ops_s=rate, **kwargs
            )
        )
    if not specs:
        raise ValueError(f"no tenants in {spec!r}")
    return specs
