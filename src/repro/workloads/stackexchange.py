"""Stack Exchange-style workload: post revisions and copied answers (§5.1).

"Most of the duplication in this data set comes from users revising their
own posts and from copying answers from other discussion threads." Posts
are inserted in temporal order; a revision is a *new record* containing the
edited body (application-level versioning again). Reads are view-count
driven: popular posts are read far more often, with an aggregate R/W ratio
of 99.9:0.1.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.workloads.base import Operation, Workload
from repro.workloads.edits import revise
from repro.workloads.text import TextGenerator

#: Fraction of inserts that are revisions of an earlier post.
REVISION_FRACTION = 0.25

#: Fraction of fresh posts that copy an existing answer wholesale.
COPY_FRACTION = 0.12

#: Scaled-down reads issued per insert (paper ratio 999:1).
READS_PER_INSERT = 20


class StackExchangeWorkload(Workload):
    """Synthetic Q&A corpus."""

    name = "stackexchange"

    def __init__(
        self,
        seed: int = 1,
        target_bytes: int = 2_000_000,
        median_post_bytes: int = 1200,
    ) -> None:
        super().__init__(seed=seed, target_bytes=target_bytes)
        self.median_post_bytes = median_post_bytes

    def _generate_posts(self) -> Iterator[tuple[str, bytes]]:
        rng = random.Random(self.seed)
        text_gen = TextGenerator(self.seed + 1)
        produced = 0
        seq = 0
        bodies: list[str] = []  # post bodies in insertion order
        while produced < self.target_bytes:
            roll = rng.random()
            if bodies and roll < REVISION_FRACTION:
                base = bodies[rng.randrange(len(bodies))]
                body = revise(rng, text_gen, base, num_edits=rng.randint(1, 5))
            elif bodies and roll < REVISION_FRACTION + COPY_FRACTION:
                copied = bodies[rng.randrange(len(bodies))]
                commentary = text_gen.paragraph(200)
                body = f"{commentary}\n\n(copied from another thread:)\n{copied}"
            else:
                body = text_gen.document(
                    text_gen.lognormal_size(self.median_post_bytes, sigma=1.1)
                )
            meta = (
                f"post: {seq}\n"
                f"user: {text_gen.identifier('u')}\n"
                f"tags: {text_gen.word()},{text_gen.word()}\n"
                f"votes: {rng.randint(-3, 200)}\n\n"
            )
            content = (meta + body).encode()
            produced += len(content)
            bodies.append(body)
            if len(bodies) > 2000:
                bodies.pop(0)
            record_id = f"post/{seq}"
            seq += 1
            yield record_id, content

    def insert_trace(self) -> Iterator[Operation]:
        for record_id, content in self._generate_posts():
            yield Operation(
                kind="insert", database=self.name, record_id=record_id,
                content=content,
            )

    def mixed_trace(self) -> Iterator[Operation]:
        """Inserts with Zipf-weighted view-count reads (99.9:0.1 scaled)."""
        rng = random.Random(self.seed + 2)
        inserted: list[str] = []
        for record_id, content in self._generate_posts():
            yield Operation(
                kind="insert", database=self.name, record_id=record_id,
                content=content,
            )
            inserted.append(record_id)
            for _ in range(READS_PER_INSERT):
                # Zipf-ish popularity: quadratic bias toward early (popular)
                # posts, mimicking view-count weighting.
                rank = int(len(inserted) * rng.random() ** 2)
                target = inserted[min(rank, len(inserted) - 1)]
                yield Operation(kind="read", database=self.name, record_id=target)
