"""Trace persistence: record an operation stream to a file and replay it.

Reproducible benchmarking across processes/machines needs the *exact*
operation stream, not just the generator seed (generators evolve; files do
not). The format is a varint-framed binary log::

    magic "DBTR" | version u8 | entries...
    entry := op u8 | varint(len) database | varint(len) record_id
           | varint(len) content            (op codes with payload)
           | f64 idle_seconds               (idle ops)
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.util.varint import decode_uvarint, encode_uvarint
from repro.workloads.base import Operation

MAGIC = b"DBTR"
VERSION = 1

_OPCODES = {"insert": 1, "read": 2, "update": 3, "delete": 4, "idle": 5}
_NAMES = {code: name for name, code in _OPCODES.items()}
_HAS_PAYLOAD = {"insert", "update"}
_F64 = struct.Struct("<d")


def _write_str(out: bytearray, text: str) -> None:
    raw = text.encode()
    out += encode_uvarint(len(raw))
    out += raw


def _read_bytes(buf: bytes, pos: int) -> tuple[bytes, int]:
    length, pos = decode_uvarint(buf, pos)
    if pos + length > len(buf):
        raise ValueError("truncated trace field")
    return buf[pos : pos + length], pos + length


def dump_trace(operations: Iterable[Operation]) -> bytes:
    """Serialize an operation stream."""
    out = bytearray(MAGIC)
    out.append(VERSION)
    for op in operations:
        code = _OPCODES.get(op.kind)
        if code is None:
            raise ValueError(f"cannot serialize operation kind {op.kind!r}")
        out.append(code)
        _write_str(out, op.database)
        _write_str(out, op.record_id)
        if op.kind in _HAS_PAYLOAD:
            payload = op.content if op.content is not None else b""
            out += encode_uvarint(len(payload))
            out += payload
        elif op.kind == "idle":
            out += _F64.pack(op.idle_seconds)
    return bytes(out)


def load_trace(blob: bytes) -> Iterator[Operation]:
    """Deserialize a trace blob back into operations (lazy).

    Raises:
        ValueError: on bad magic/version or truncation.
    """
    if blob[:4] != MAGIC:
        raise ValueError("not a dbDedup trace (bad magic)")
    if blob[4] != VERSION:
        raise ValueError(f"unsupported trace version {blob[4]}")
    pos = 5
    end = len(blob)
    while pos < end:
        code = blob[pos]
        pos += 1
        kind = _NAMES.get(code)
        if kind is None:
            raise ValueError(f"unknown trace opcode {code}")
        database_raw, pos = _read_bytes(blob, pos)
        record_raw, pos = _read_bytes(blob, pos)
        content = None
        idle = 0.0
        if kind in _HAS_PAYLOAD:
            payload, pos = _read_bytes(blob, pos)
            content = payload
        elif kind == "idle":
            if pos + _F64.size > end:
                raise ValueError("truncated idle duration")
            (idle,) = _F64.unpack_from(blob, pos)
            pos += _F64.size
        yield Operation(
            kind=kind,
            database=database_raw.decode(),
            record_id=record_raw.decode(),
            content=content,
            idle_seconds=idle,
        )


def save_trace(operations: Iterable[Operation], path: str | Path) -> int:
    """Write a trace file; returns its size in bytes."""
    blob = dump_trace(operations)
    Path(path).write_bytes(blob)
    return len(blob)


def load_trace_file(path: str | Path) -> Iterator[Operation]:
    """Read a trace file back as an operation stream."""
    return load_trace(Path(path).read_bytes())
