"""OLTP-style workload: the negative control (§2.1).

"Typical examples include most OLTP workloads, where many records fit into
one database page and most redundancies among fields can be eliminated by
block-level compression schemes." This generator produces small structured
records (orders) with per-record unique values and in-place updates —
little cross-record redundancy for similarity dedup to find, but enough
field-name repetition that block compression still works.

Its role in the suite is to exercise the §3.4 governor: a cluster fed this
workload should *disable* dedup for the database and stop paying for it.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.workloads.base import Operation, Workload

_STATUSES = ("pending", "paid", "packed", "shipped", "delivered", "returned")


class OltpWorkload(Workload):
    """Small structured order records with read-modify-write traffic."""

    name = "oltp"

    def __init__(
        self,
        seed: int = 1,
        target_bytes: int = 2_000_000,
        update_fraction: float = 0.3,
    ) -> None:
        super().__init__(seed=seed, target_bytes=target_bytes)
        if not 0.0 <= update_fraction < 1.0:
            raise ValueError(
                f"update_fraction must be in [0, 1), got {update_fraction}"
            )
        self.update_fraction = update_fraction

    def _order(self, rng: random.Random, order_id: int, status: str) -> bytes:
        lines = [
            f"order_id: {order_id}",
            f"customer: cust-{rng.randrange(1 << 48):012x}",
            f"status: {status}",
            f"total_cents: {rng.randrange(100, 1_000_000)}",
            f"created_at: 2017-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
        ]
        for item in range(rng.randint(1, 5)):
            lines.append(
                f"item_{item}: sku-{rng.randrange(1 << 32):08x} "
                f"qty {rng.randint(1, 9)} price {rng.randrange(100, 50_000)}"
            )
        return "\n".join(lines).encode()

    def insert_trace(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        produced = 0
        order_id = 0
        while produced < self.target_bytes:
            content = self._order(rng, order_id, "pending")
            produced += len(content)
            yield Operation(
                kind="insert", database=self.name,
                record_id=f"order/{order_id}", content=content,
            )
            order_id += 1

    def mixed_trace(self) -> Iterator[Operation]:
        """Inserts, point reads, and status-update rewrites."""
        rng = random.Random(self.seed + 1)
        produced = 0
        order_id = 0
        live: list[int] = []
        while produced < self.target_bytes:
            roll = rng.random()
            if live and roll < self.update_fraction:
                target = rng.choice(live)
                content = self._order(
                    rng, target, rng.choice(_STATUSES)
                )
                yield Operation(
                    kind="update", database=self.name,
                    record_id=f"order/{target}", content=content,
                )
            elif live and roll < self.update_fraction + 0.3:
                target = rng.choice(live)
                yield Operation(
                    kind="read", database=self.name, record_id=f"order/{target}"
                )
            else:
                content = self._order(rng, order_id, "pending")
                produced += len(content)
                yield Operation(
                    kind="insert", database=self.name,
                    record_id=f"order/{order_id}", content=content,
                )
                live.append(order_id)
                if len(live) > 4096:
                    live.pop(0)
                order_id += 1
