"""Traditional chunk-based exact deduplication (§2.2, the trad-dedup bars).

The classic backup-system design, implemented the way the paper implemented
it inside MongoDB for comparison: each record is Rabin-chunked, every chunk
is identified by its SHA-1 digest, and a *global* index of all digests
detects exact duplicates. Duplicate chunks store a 20-byte reference in the
record recipe instead of their bytes.

Its two failure modes on database workloads are exactly what Fig. 1/10
show: at backup-style chunk sizes (4 KB) the small dispersed duplicate
regions of database records are invisible, and at small chunk sizes (64 B)
the full-index memory explodes (24 bytes per unique chunk, vs dbDedup's
≤ K entries per record).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chunking.cdc import ContentDefinedChunker
from repro.index.exact import ExactChunkIndex

#: Recipe cost per duplicate chunk: a 20-byte digest reference.
RECIPE_REF_BYTES = 20


@dataclass
class TradDedupStats:
    """Byte accounting for the exact-dedup baseline."""

    records: int = 0
    bytes_in: int = 0
    chunks_seen: int = 0
    chunks_duplicate: int = 0
    stored_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        """Original bytes over stored bytes (1.0 = no compression)."""
        return self.bytes_in / self.stored_bytes if self.stored_bytes else 1.0

    @property
    def duplicate_chunk_ratio(self) -> float:
        """Fraction of observed chunks that were duplicates."""
        return self.chunks_duplicate / self.chunks_seen if self.chunks_seen else 0.0


class TradDedupEngine:
    """Exact chunk-based dedup over a stream of records.

    Args:
        chunk_size: average Rabin chunk size (the paper evaluates 4 KB —
            the backup-industry norm — and 64 B).
    """

    def __init__(self, chunk_size: int = 4096) -> None:
        self.chunker = ContentDefinedChunker(avg_size=chunk_size)
        self.index = ExactChunkIndex()
        self.stats = TradDedupStats()

    @property
    def index_memory_bytes(self) -> int:
        """Index memory at 24 bytes per unique chunk."""
        return self.index.memory_bytes

    def ingest(self, content: bytes) -> int:
        """Dedup one record; returns its stored (post-dedup) size."""
        stored = 0
        self.stats.records += 1
        self.stats.bytes_in += len(content)
        for chunk in self.chunker.chunks(content):
            self.stats.chunks_seen += 1
            if self.index.observe(chunk.data):
                self.stats.chunks_duplicate += 1
                stored += RECIPE_REF_BYTES
            else:
                stored += len(chunk.data)
        self.stats.stored_bytes += stored
        return stored

    def ingest_all(self, contents) -> TradDedupStats:
        """Dedup a whole record stream; returns the accumulated stats."""
        for content in contents:
            self.ingest(content)
        return self.stats
