"""Baseline systems the paper compares against."""

from repro.baselines.trad_dedup import TradDedupEngine, TradDedupStats

__all__ = ["TradDedupEngine", "TradDedupStats"]
