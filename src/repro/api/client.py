"""The public client facade: :func:`open_cluster` and :class:`DedupClient`.

Callers describe a deployment with one :class:`~repro.api.ClusterSpec`
and get back a :class:`DedupClient` whose methods are ordinary CRUD plus
the lifecycle hooks experiments need (``run``, ``checkpoint``,
``stats``, ``check_invariants``). Whether the deployment is a plain
single-primary :class:`~repro.db.cluster.Cluster` or a hash-sharded
:class:`~repro.db.sharding.ShardedCluster` is an implementation detail
selected by ``spec.shards``; both expose the same operation surface, so
the client never branches on topology.
"""

from __future__ import annotations

from typing import Iterable

from repro.api.spec import ClusterSpec
from repro.db.cluster import Cluster, RunResult
from repro.db.errors import NodeUnavailableError
from repro.db.sharding import ShardedCluster
from repro.workloads.base import Operation


def open_cluster(spec: ClusterSpec | None = None, **overrides) -> "DedupClient":
    """Build a running deployment from a spec; the public entry point.

    Call with a :class:`ClusterSpec`, with keyword overrides applied on
    top of the defaults (``open_cluster(shards=4, trace=True)``), or with
    both (overrides win). ``spec.shards == 1`` yields a plain cluster,
    anything larger a sharded topology.
    """
    if spec is None:
        spec = ClusterSpec(**overrides)
    elif overrides:
        spec = ClusterSpec(**{**spec.__dict__, **overrides})
    if spec.shards == 1:
        cluster = Cluster.from_spec(spec)
    else:
        cluster = ShardedCluster.from_spec(spec)
    return DedupClient(cluster, spec)


class DedupClient:
    """Operation facade over a (possibly sharded) running deployment.

    Obtain one from :func:`open_cluster`; the constructor is public for
    wrapping an existing cluster (e.g. one built by a benchmark helper).
    All mutation latencies are simulated seconds.
    """

    def __init__(
        self, cluster: Cluster | ShardedCluster, spec: ClusterSpec | None = None
    ) -> None:
        self._cluster = cluster
        self._spec = spec

    # -- introspection --------------------------------------------------------

    @property
    def cluster(self) -> Cluster | ShardedCluster:
        """The underlying deployment (escape hatch for experiment code)."""
        return self._cluster

    @property
    def spec(self) -> ClusterSpec | None:
        """The spec this client was opened with (None when wrapped)."""
        return self._spec

    @property
    def shards(self) -> int:
        """Number of shards (1 for a plain cluster)."""
        if isinstance(self._cluster, ShardedCluster):
            return len(self._cluster.shards)
        return 1

    @property
    def clock(self):
        """The deployment's simulated clock."""
        return self._cluster.clock

    @property
    def registry(self):
        """Metrics registry (merged, shard-labeled view when sharded)."""
        return self._cluster.registry

    @property
    def tracer(self):
        """The deployment's tracer."""
        return self._cluster.tracer

    # -- CRUD -----------------------------------------------------------------

    @staticmethod
    def _unavailable(fault: NodeUnavailableError) -> NodeUnavailableError:
        """Re-frame a node-level outage as a client-actionable error.

        The type (and ``retriable`` flag) are preserved; the message
        gains the contract the caller cares about: nothing was applied,
        and a retry is safe once failover promotes a replacement. With
        automatic failover enabled the cluster absorbs outages silently
        — this error only reaches a client when failover is disabled or
        no candidate could be promoted.
        """
        wrapped = NodeUnavailableError(fault.node_name, fault.role)
        wrapped.args = (
            f"{fault.args[0]} — the operation was not applied and is safe "
            "to retry; enable automatic promotion with "
            "ClusterSpec(failover_enabled=True) to absorb outages without "
            "client errors",
        )
        return wrapped

    def insert(self, database: str, record_id: str, content: bytes) -> float:
        """Insert one record; returns the client latency in seconds."""
        try:
            return self._cluster.execute(
                Operation("insert", database, record_id, content)
            )
        except NodeUnavailableError as fault:
            raise self._unavailable(fault) from fault

    def insert_many(
        self, records: Iterable[tuple[str, str, bytes]]
    ) -> float:
        """Insert records as one client batch; returns the batch latency.

        On a sharded deployment the batch splits per shard and the
        sub-batches run concurrently in simulated time.
        """
        ops = [
            Operation("insert", database, record_id, content)
            for database, record_id, content in records
        ]
        if not ops:
            return 0.0
        try:
            return self._cluster.execute_insert_batch(ops)
        except NodeUnavailableError as fault:
            raise self._unavailable(fault) from fault

    def read(self, database: str, record_id: str) -> bytes | None:
        """Read one record's content (None when absent)."""
        try:
            content, _latency = self._cluster.client_read(database, record_id)
        except NodeUnavailableError as fault:
            raise self._unavailable(fault) from fault
        return content

    def update(self, database: str, record_id: str, content: bytes) -> float:
        """Update one record; returns the client latency in seconds."""
        try:
            return self._cluster.execute(
                Operation("update", database, record_id, content)
            )
        except NodeUnavailableError as fault:
            raise self._unavailable(fault) from fault

    def delete(self, database: str, record_id: str) -> float:
        """Delete one record; returns the client latency in seconds."""
        try:
            return self._cluster.execute(
                Operation("delete", database, record_id)
            )
        except NodeUnavailableError as fault:
            raise self._unavailable(fault) from fault

    # -- lifecycle ------------------------------------------------------------

    def run(
        self,
        operations: Iterable[Operation],
        timeline_bucket_s: float | None = None,
    ) -> RunResult:
        """Execute a workload trace end to end; see :meth:`Cluster.run
        <repro.db.cluster.Cluster.run>`."""
        if timeline_bucket_s is None:
            return self._cluster.run(operations)
        return self._cluster.run(operations, timeline_bucket_s)

    def finalize(self) -> None:
        """Drain replication links and write-back caches."""
        self._cluster.finalize()

    def checkpoint(self, path) -> int:
        """Checkpoint the oplog(s) under ``path``; returns bytes truncated."""
        return self._cluster.checkpoint(path)

    # -- admission ------------------------------------------------------------

    def _primaries(self):
        if isinstance(self._cluster, ShardedCluster):
            return [shard.primary for shard in self._cluster.shards]
        return [self._cluster.primary]

    def drain_deferred(self, max_records: int | None = None) -> int:
        """Force a synchronous out-of-line dedup pass on every primary.

        Deferred records normally drain during simulated idleness (and
        unconditionally at :meth:`finalize`); this forces the pass now,
        ignoring the idleness signal. Returns the number of records
        drained across all shards.
        """
        drained = 0
        for primary in self._primaries():
            drained += primary.drain_deferred_dedup(
                max_records=max_records, force=True
            )
        return drained

    def cleanup(
        self, *, dry_run: bool = False, max_records: int | None = None
    ) -> dict:
        """Run (or just plan) a rollback-safe GC batch on every primary.

        With ``dry_run`` each shard returns its
        :class:`~repro.core.gc.GcPlan` (reclaimable bytes, chains to
        re-root, pages to compact) without touching the store; otherwise
        each shard runs one plan → dry-run → apply → post-validate batch
        and returns its :class:`~repro.core.gc.GcReport`. The idleness
        gate is bypassed — this is the operator-initiated path behind
        ``repro cleanup``.
        """
        shards = {}
        for index, primary in enumerate(self._primaries()):
            if dry_run:
                shards[index] = {"plan": primary.collect_garbage(dry_run=True)}
            else:
                shards[index] = {
                    "report": primary.collect_garbage(max_records=max_records)
                }
        return {"dry_run": dry_run, "shards": shards}

    def audit_report(
        self,
        *,
        database: str | None = None,
        reason: str | None = None,
        limit: int | None = None,
    ) -> dict:
        """Per-shard dedup audit trail: summary plus matching entries.

        Entries (:class:`~repro.core.audit.AuditEntry`) are newest-first
        and filterable by ``database`` and decision ``reason``; the
        summary aggregates records, reasons, raw and saved bytes. After a
        crash or failover the entries are rebuilt from the oplog
        (``rebuilt=True``) while the audit counters survive on the
        shared registry.
        """
        shards = {}
        for index, primary in enumerate(self._primaries()):
            engine = primary.engine
            if engine is None:
                shards[index] = {"summary": None, "entries": []}
                continue
            audit = engine.audit
            shards[index] = {
                "summary": audit.summary(),
                "entries": audit.query(
                    database=database, reason=reason, limit=limit
                ),
            }
        return {"shards": shards}

    def admission_report(self) -> dict:
        """Per-shard admission snapshot: mode, decision counts by
        stream, deferred-queue depth, bypassed streams, and the
        inline/out-of-line CPU split."""
        shards = {}
        for index, primary in enumerate(self._primaries()):
            engine = primary.engine
            if engine is None:
                shards[index] = {"mode": None}
                continue
            admission = engine.admission
            decisions: dict[str, dict[str, int]] = {}
            for (decision, stream), count in sorted(
                admission.decision_counts.items()
            ):
                decisions.setdefault(stream, {})[decision] = count
            shards[index] = {
                "mode": admission.mode,
                "decisions": decisions,
                "deferred_queue_depth": admission.pending_total,
                "deferred_discarded": admission.deferred_discarded_total,
                "outofline_records": admission.outofline_records_total,
                "outofline_bytes": admission.outofline_bytes_total,
                "bypassed_streams": sorted(admission.disabled_databases),
                "inline_cpu_seconds": engine.inline_cpu_seconds,
                "outofline_cpu_seconds": engine.outofline_cpu_seconds,
            }
        return {"shards": shards}

    def index_report(self) -> dict:
        """Per-shard feature-index snapshot.

        For every shard: the effective index kind, and per database
        partition the tier occupancy (entries, bytes, budget), amortized
        bytes per live record, the lookup outcome split (hot / cold /
        miss), and the cold-tier false-positive counter. Cuckoo
        partitions report the same shape with an empty cold tier.
        """
        shards = {}
        for index, primary in enumerate(self._primaries()):
            engine = primary.engine
            if engine is None:
                shards[index] = {"kind": None}
                continue
            partitions = {}
            for database, part in sorted(engine.index_partitions()):
                report = getattr(part, "tier_report", None)
                if report is not None:
                    body = report()
                else:
                    body = {
                        "kind": "cuckoo",
                        "hot_entries": len(part),
                        "hot_bytes": part.memory_bytes,
                        "hot_bytes_budget": None,
                        "cold_records": 0,
                        "cold_bands_materialized": 0,
                        "cold_bytes": 0,
                        "lookups": part.lookups,
                        "hot_hits": part.hot_hits,
                        "cold_hits": 0,
                        "misses": part.misses,
                        "cold_false_positives": 0,
                        "demotions": 0,
                        "promotions": 0,
                    }
                live = len(
                    engine._partition_records.get(database, ())
                )
                body["bytes_per_record"] = (
                    part.memory_bytes / live if live else 0.0
                )
                partitions[database] = body
            shards[index] = {
                "kind": engine.index_spec.kind,
                "maintenance_cpu_seconds":
                    engine.index_maintenance_cpu_seconds,
                "partitions": partitions,
            }
        return {"shards": shards}

    # -- health ---------------------------------------------------------------

    def stats(self) -> dict:
        """Topology summary: byte counters, compression ratios, and —
        when sharded — the router's cross-shard accounting."""
        return self._cluster.summary_stats()

    def replicas_converged(self) -> bool:
        """True when every replica matches its primary."""
        return self._cluster.replicas_converged()

    def check_invariants(self, *, drain: bool = True, strict: bool = True):
        """Run the full invariant sweep; returns the
        :class:`~repro.db.invariants.InvariantReport`."""
        from repro.db.invariants import check_cluster, check_sharded_cluster

        if isinstance(self._cluster, ShardedCluster):
            return check_sharded_cluster(
                self._cluster, drain=drain, strict=strict
            )
        return check_cluster(self._cluster, drain=drain, strict=strict)
