"""Public client API: describe a deployment, open it, operate on it.

This package is the supported entry point of the reproduction::

    from repro.api import ClusterSpec, open_cluster

    client = open_cluster(ClusterSpec(shards=4, placement="prefix"))
    client.insert("wiki", "wiki/7/1", b"...")
    print(client.stats()["storage_compression_ratio"])

Everything under :mod:`repro.db`, :mod:`repro.core` etc. is internal;
see ``docs/API.md``.
"""

from repro.api.client import DedupClient, open_cluster
from repro.api.spec import ClusterSpec
from repro.db.errors import NodeUnavailableError
from repro.index.spec import IndexSpec

__all__ = [
    "ClusterSpec",
    "DedupClient",
    "IndexSpec",
    "NodeUnavailableError",
    "open_cluster",
]
