"""The one configuration object the public API accepts.

Before the API redesign, deployment knobs were duplicated across three
constructor signatures (``Cluster``, ``PrimaryNode``, ``DedupEngine``)
and every caller re-wired them by hand. :class:`ClusterSpec` is the
single consolidated, frozen, keyword-only description of a deployment;
:func:`repro.api.open_cluster` turns it into a running single-primary
:class:`~repro.db.cluster.Cluster` or hash-sharded
:class:`~repro.db.sharding.ShardedCluster` depending on ``shards``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import DedupConfig
from repro.db.cluster import ClusterConfig
from repro.index.spec import IndexSpec
from repro.db.failover import (
    DEFAULT_FAILOVER_TIMEOUT_S,
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_REJOIN_DELAY_S,
)
from repro.db.replication import DEFAULT_BATCH_BYTES
from repro.db.sharding import PLACEMENTS
from repro.sim.costs import CostModel


@dataclass(frozen=True, kw_only=True)
class ClusterSpec:
    """Frozen, keyword-only description of a deployment.

    Deployment-shape fields mirror
    :class:`~repro.db.cluster.ClusterConfig` one-to-one (see that class
    for semantics); the spec adds the topology axis (``shards``,
    ``placement``), the cost model, and the observability knobs that
    previously rode as loose constructor kwargs.

    Attributes:
        dedup: dbDedup engine parameters (defaults to :class:`DedupConfig`).
        dedup_enabled: False for the no-dedup baselines.
        index: the feature-index description
            (:class:`~repro.index.spec.IndexSpec`): kind (``"cuckoo"``
            or ``"tiered"``), geometry, and the tiered memory knobs
            (``hot_bytes_budget`` / ``cold_fpp`` / ``promotion_hits``).
            None keeps ``dedup``'s index configuration (which itself
            defaults to an unbounded cuckoo index). This is the
            sanctioned way to configure the index — the flat
            ``DedupConfig`` knobs it replaces are deprecated.
        admission_mode: convenience override of
            ``dedup.admission_mode`` — ``"inline"``, ``"hybrid"`` or
            ``"governor"``; None keeps the dedup config's value.
        admission_inline_threshold: override of
            ``dedup.admission_inline_threshold`` (hybrid yield score at
            or above which a stream dedups inline).
        admission_bypass_threshold: override of
            ``dedup.admission_bypass_threshold`` (``<= 0`` disables
            permanent bypass in hybrid mode).
        admission_queue_records: override of
            ``dedup.admission_queue_records`` (deferred-queue bound).
        chunker_impl: convenience override of ``dedup.chunker_impl`` —
            ``"scalar"``, ``"vectorized"`` or ``"auto"``; None keeps
            the dedup config's value. Both lanes produce byte-identical
            boundaries and sketches (the scalar lane is the
            differential-testing oracle), so this knob only moves CPU.
        gc_enabled: convenience override of ``dedup.gc_enabled`` —
            True runs the online garbage collector during idle slices;
            None keeps the dedup config's value (off by default).
        gc_reclaim_threshold_bytes: override of
            ``dedup.gc_reclaim_threshold_bytes`` (reclaimable-bytes
            gate before an idle slice runs a GC batch).
        gc_max_batch_records: override of
            ``dedup.gc_max_batch_records`` (re-encodes per GC batch).
        block_compression: page compressor: 'none', 'snappy', 'zlib'.
        batch_compression: oplog-batch compressor before transfer.
        use_writeback_cache: False disables the encode write-back cache.
        oplog_batch_bytes: replication batching threshold.
        page_size: storage page size in bytes.
        insert_batch_size: client insert coalescing factor (>= 1).
        num_secondaries: replicas per shard (>= 1).
        read_preference: 'primary' or 'secondary'.
        physical_storage: use the slotted-page/buffer-pool engine.
        failover_enabled: automatic promotion of a caught-up secondary
            when the primary dies (per shard). False restores the old
            behavior: operations against a dead primary raise
            :class:`~repro.db.errors.NodeUnavailableError`.
        heartbeat_interval_s: how often the failover monitor samples
            node health (simulated seconds).
        failover_timeout_s: how long the primary must stay unresponsive
            before a secondary is promoted.
        rejoin_delay_s: grace period before a revived old primary is
            rolled back and re-admitted as a secondary.
        shards: number of independent shards (1 = plain cluster).
        placement: 'hash' (uniform) or 'prefix' (locality-preserving) —
            see :class:`~repro.db.sharding.ShardRouter`.
        costs: cost model (defaults to :class:`CostModel`).
        trace: enable sim-clock span tracing.
        sample_every_s: sampler cadence in simulated seconds.
        sample_every_ops: sampler cadence in client operations.
    """

    dedup: DedupConfig = field(default_factory=DedupConfig)
    dedup_enabled: bool = True
    index: IndexSpec | None = None
    admission_mode: str | None = None
    admission_inline_threshold: float | None = None
    admission_bypass_threshold: float | None = None
    admission_queue_records: int | None = None
    chunker_impl: str | None = None
    gc_enabled: bool | None = None
    gc_reclaim_threshold_bytes: int | None = None
    gc_max_batch_records: int | None = None
    block_compression: str = "none"
    batch_compression: str = "none"
    use_writeback_cache: bool = True
    oplog_batch_bytes: int = DEFAULT_BATCH_BYTES
    page_size: int = 32 * 1024
    insert_batch_size: int = 1
    num_secondaries: int = 1
    read_preference: str = "primary"
    physical_storage: bool = False
    failover_enabled: bool = True
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S
    failover_timeout_s: float = DEFAULT_FAILOVER_TIMEOUT_S
    rejoin_delay_s: float = DEFAULT_REJOIN_DELAY_S
    shards: int = 1
    placement: str = "hash"
    costs: CostModel | None = None
    trace: bool = False
    sample_every_s: float | None = None
    sample_every_ops: int | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, "
                f"got {self.placement!r}"
            )
        # Delegate the per-shard validation (batch size, secondaries,
        # read preference) to ClusterConfig so a bad spec fails at
        # construction, not first use.
        self.to_cluster_config()

    def to_cluster_config(self) -> ClusterConfig:
        """The per-shard :class:`ClusterConfig` this spec describes."""
        overrides = {
            name: value
            for name, value in (
                ("admission_mode", self.admission_mode),
                ("admission_inline_threshold", self.admission_inline_threshold),
                ("admission_bypass_threshold", self.admission_bypass_threshold),
                ("admission_queue_records", self.admission_queue_records),
                ("chunker_impl", self.chunker_impl),
                ("gc_enabled", self.gc_enabled),
                ("gc_reclaim_threshold_bytes", self.gc_reclaim_threshold_bytes),
                ("gc_max_batch_records", self.gc_max_batch_records),
                ("index", self.index),
            )
            if value is not None
        }
        dedup = replace(self.dedup, **overrides) if overrides else self.dedup
        return ClusterConfig(
            dedup=dedup,
            dedup_enabled=self.dedup_enabled,
            block_compression=self.block_compression,
            batch_compression=self.batch_compression,
            use_writeback_cache=self.use_writeback_cache,
            oplog_batch_bytes=self.oplog_batch_bytes,
            page_size=self.page_size,
            insert_batch_size=self.insert_batch_size,
            num_secondaries=self.num_secondaries,
            read_preference=self.read_preference,
            physical_storage=self.physical_storage,
            failover_enabled=self.failover_enabled,
            heartbeat_interval_s=self.heartbeat_interval_s,
            failover_timeout_s=self.failover_timeout_s,
            rejoin_delay_s=self.rejoin_delay_s,
        )
