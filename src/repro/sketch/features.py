"""Top-K consistent-sampling similarity sketch (§3.1.1).

A record's sketch is the K largest MurmurHash values of its
content-defined (gear) chunks.
Consistent sampling (always keep the top-K by magnitude) characterizes
similarity better than random sampling: two records that share content tend
to share chunks, and the *same* shared chunks survive the magnitude cut in
both records. Two records are deemed similar if their sketches intersect.

Indexing at most K features per record is what bounds dbDedup's index
memory regardless of chunk size — the property Fig. 1/10 turn on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chunking.cdc import ContentDefinedChunker
from repro.hashing.murmur import murmur3_32

#: Paper default: "We find K = 8 strikes a reasonable trade-off between
#: compression ratio and memory usage."
DEFAULT_TOP_K = 8


@dataclass(frozen=True)
class FeatureSketch:
    """Similarity sketch of one record.

    Attributes:
        features: up to K chunk hashes, sorted descending by magnitude.
        chunk_count: how many chunks the record produced (before sampling).
    """

    features: tuple[int, ...]
    chunk_count: int

    def shares_feature_with(self, other: "FeatureSketch") -> bool:
        """True if the two sketches have at least one feature in common."""
        return bool(set(self.features) & set(other.features))


class SketchExtractor:
    """Extract :class:`FeatureSketch` objects from raw record bytes.

    Args:
        chunker: content-defined chunker controlling feature granularity.
            Smaller average chunks → finer similarity detection at the same
            index budget (K entries per record).
        top_k: sketch size K.
        seed: MurmurHash seed; all cooperating nodes must agree on it.
    """

    def __init__(
        self,
        chunker: ContentDefinedChunker | None = None,
        top_k: int = DEFAULT_TOP_K,
        seed: int = 0x5EED,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.chunker = chunker if chunker is not None else ContentDefinedChunker()
        self.top_k = top_k
        self.seed = seed

    def sketch(self, data: bytes) -> FeatureSketch:
        """Chunk ``data``, hash each chunk, keep the K largest hashes.

        Duplicate hash values within one record are collapsed — a record
        full of one repeated chunk yields a single feature, which is the
        behaviour that makes sketch intersection meaningful.
        """
        return self._from_boundaries(data, self.chunker.boundaries(data))

    def sketch_many(self, datas: list[bytes]) -> list[FeatureSketch]:
        """Sketch a whole batch of records, amortizing the chunking pass.

        Returns exactly ``[self.sketch(d) for d in datas]`` — same chunk
        boundaries, same features — but the gear boundary sweep runs once
        over the concatenated batch
        (:meth:`~repro.chunking.cdc.ContentDefinedChunker.boundaries_many`),
        which is markedly cheaper than per-record sweeps when records are
        small relative to numpy's fixed per-call overhead. Because both
        chunker lanes emit identical boundaries, the sketches — and every
        downstream similarity decision — are lane-independent too.
        """
        return [
            self._from_boundaries(data, cuts)
            for data, cuts in zip(datas, self.chunker.boundaries_many(datas))
        ]

    def _from_boundaries(self, data: bytes, cuts: list[int]) -> FeatureSketch:
        """Top-K murmur features over the chunks the cut list describes."""
        start = 0
        hashes = set()
        for end in cuts:
            hashes.add(murmur3_32(data[start:end], self.seed))
            start = end
        top = sorted(hashes, reverse=True)[: self.top_k]
        return FeatureSketch(features=tuple(top), chunk_count=len(cuts))
