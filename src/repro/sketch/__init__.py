"""Similarity sketches: top-K consistent sampling of chunk hashes."""

from repro.sketch.features import FeatureSketch, SketchExtractor

__all__ = ["FeatureSketch", "SketchExtractor"]
