"""Page-level storage accounting with block compression.

Operational DBMSs compress at page granularity (WiredTiger/Snappy in the
paper's setup). This store assigns records to fixed-capacity pages as they
arrive and reports both the logical (post-dedup) size and the physical
size after running the block compressor over each page — the two bar
segments of Fig. 1/10.

Pages are recompressed lazily: mutations mark a page dirty and the
compressed size is recomputed only when measured, because the simulated
experiments only need sizes, not page images, on every write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.block import BlockCompressor, NullCompressor


@dataclass
class _Page:
    index: int
    record_ids: list[str] = field(default_factory=list)
    used: int = 0
    dirty: bool = True
    compressed_size: int = 0


class PageStore:
    """Maps record ids to pages and measures per-page compression."""

    def __init__(
        self,
        page_size: int = 32 * 1024,
        compressor: BlockCompressor | None = None,
    ) -> None:
        if page_size < 1024:
            raise ValueError(f"page_size must be >= 1024, got {page_size}")
        self.page_size = page_size
        self.compressor = compressor if compressor is not None else NullCompressor()
        self._pages: list[_Page] = []
        self._page_of: dict[str, int] = {}
        self._payloads: dict[str, bytes] = {}
        #: Monotonic bytes ever written into pages (places + rewrites).
        self.bytes_written_total = 0
        #: Monotonic bytes reclaimed from pages (removals + shrinks);
        #: ``written - reclaimed == logical_bytes`` at all times.
        self.bytes_reclaimed_total = 0
        #: Pages returned to the allocator by :meth:`compact`.
        self.pages_freed_total = 0

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._payloads

    @property
    def page_count(self) -> int:
        """Number of pages allocated so far."""
        return len(self._pages)

    def place(self, record_id: str, payload: bytes) -> int:
        """Place a new record; returns its page index.

        Records larger than a page get a private run of pages, like any
        real slotted-page store handles overflow.
        """
        if record_id in self._page_of:
            return self.update(record_id, payload)
        if not self._pages or self._pages[-1].used + len(payload) > self.page_size:
            self._pages.append(_Page(index=len(self._pages)))
        page = self._pages[-1]
        page.record_ids.append(record_id)
        page.used += len(payload)
        page.dirty = True
        self._page_of[record_id] = page.index
        self._payloads[record_id] = payload
        self.bytes_written_total += len(payload)
        return page.index

    def update(self, record_id: str, payload: bytes) -> int:
        """Replace a record's payload in place (write-back or update)."""
        page_index = self._page_of[record_id]
        page = self._pages[page_index]
        page.used += len(payload) - len(self._payloads[record_id])
        page.dirty = True
        self.bytes_written_total += len(payload)
        self.bytes_reclaimed_total += len(self._payloads[record_id])
        self._payloads[record_id] = payload
        return page_index

    def remove(self, record_id: str) -> None:
        """Drop a record (space is reclaimed within its page)."""
        page_index = self._page_of.pop(record_id, None)
        if page_index is None:
            return
        page = self._pages[page_index]
        page.record_ids.remove(record_id)
        removed = self._payloads.pop(record_id)
        page.used -= len(removed)
        page.dirty = True
        self.bytes_reclaimed_total += len(removed)

    def compact(self) -> tuple[int, int]:
        """Repack records into dense pages, freeing the emptied ones.

        Record order is preserved (current page order), so a store with
        no slack is untouched. Returns ``(pages_freed, bytes_moved)``;
        ``bytes_moved`` counts payloads that changed page and is what a
        caller charges as migration I/O.
        """
        order = [
            record_id
            for page in self._pages
            for record_id in page.record_ids
        ]
        moved = 0
        new_pages: list[_Page] = []
        new_page_of: dict[str, int] = {}
        for record_id in order:
            payload = self._payloads[record_id]
            if (
                not new_pages
                or new_pages[-1].used + len(payload) > self.page_size
            ):
                new_pages.append(_Page(index=len(new_pages)))
            page = new_pages[-1]
            page.record_ids.append(record_id)
            page.used += len(payload)
            if self._page_of[record_id] != page.index:
                moved += len(payload)
            new_page_of[record_id] = page.index
        freed = len(self._pages) - len(new_pages)
        self._pages = new_pages
        self._page_of = new_page_of
        self.pages_freed_total += freed
        return freed, moved

    @property
    def logical_bytes(self) -> int:
        """Bytes stored before block compression (post-dedup payloads)."""
        return sum(page.used for page in self._pages)

    def physical_bytes(self) -> int:
        """Bytes after block-compressing every page (lazy, cached)."""
        total = 0
        for page in self._pages:
            if page.dirty:
                image = b"".join(
                    self._payloads[record_id] for record_id in page.record_ids
                )
                page.compressed_size = len(self.compressor.compress(image)) if image else 0
                page.dirty = False
            total += page.compressed_size
        return total
