"""Self-verifying cluster invariants.

Every chaos test ends the same way: inject faults, let recovery run,
then call :func:`check_cluster` and demand a clean report. The checks
encode the safety argument of the whole reproduction —

* **decode round-trip** — every live record decodes through its full
  encoding chain without error; deduplication may lose *compression*
  (dropped write-backs, crashes, repairs) but never *bytes*;
* **structure** — base pointers reference existing records, chains are
  acyclic, raw records carry no base pointer;
* **reference counts** — each record's ``ref_count`` equals its stored
  dependents plus the pending write-back entries holding it as a base;
* **tombstones** — a deferred-deleted record only exists while someone
  still decodes through it;
* **checksums** — every stored payload matches its page checksum and
  the quarantine is empty (all detected corruption was repaired);
* **index liveness** — feature-index entries only point at live records;
* **index tiers** — a tiered feature index keeps its hot tier within the
  configured byte budget, charges memory consistently across tiers, and
  resolves every lookup to exactly one outcome (hot hit, cold hit, or
  miss);
* **oplog ground truth** — replaying a node's oplog from scratch yields
  byte-identical client-visible contents (skipped after checkpoint
  truncation, when the log alone no longer covers history);
* **convergence** — once replication drains, secondaries hold the same
  live records with the same contents as the primary;
* **single primary / rollback completeness** — after failover settles,
  exactly one available node holds the primary role, inserts dropped by
  a divergence rollback leave no zombie records on any node, and the
  promoted primary's deferred index rebuild has drained;
* **hop bound** — decode chains respect the hop policy's nominal depth
  bound. This one is *conditional*: dropped write-backs, unprofitable
  deltas and overlapped (Fig. 5) encodings all legitimately leave
  longer chains, so the check only arms when none of those occurred
  (:attr:`InvariantReport.hop_bound_checked` records whether it ran).

:func:`check_cluster` suspends any installed fault plan, drains
replication and write-backs, scrubs remaining corruption, and runs every
check on every node — raising :class:`ClusterInvariantError` with the
full report unless told otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from zlib import crc32

from repro.db.database import Database
from repro.db.errors import CorruptChain, CorruptPage, DatabaseError
from repro.db.record import RecordForm
from repro.db.recovery import replay_oplog
from repro.encoding.policies import HopEncodingPolicy

#: Violations kept per report; past this the run is broken enough.
MAX_VIOLATIONS = 200


@dataclass(frozen=True)
class InvariantViolation:
    """One broken safety property.

    Attributes:
        node: which node ("primary", "secondary0", ...) it was found on.
        check: the invariant's short name (e.g. ``"decode"``).
        detail: human-readable description.
        record_id: offending record, when the violation is per-record.
    """

    node: str
    check: str
    detail: str
    record_id: str | None = None

    def __str__(self) -> str:
        where = f"{self.node}/{self.record_id}" if self.record_id else self.node
        return f"[{self.check}] {where}: {self.detail}"


@dataclass
class InvariantReport:
    """Outcome of an invariant sweep over one database or a whole cluster."""

    violations: list[InvariantViolation] = field(default_factory=list)
    nodes_checked: int = 0
    records_checked: int = 0
    #: True when the conditional hop-depth bound was armed and verified.
    hop_bound_checked: bool = False
    #: True when at least one node's oplog ground truth was replayed.
    oplog_checked: bool = False
    #: True when replica convergence was compared.
    convergence_checked: bool = False

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def add(
        self, node: str, check: str, detail: str, record_id: str | None = None
    ) -> None:
        """Record one violation (capped at :data:`MAX_VIOLATIONS`)."""
        if len(self.violations) < MAX_VIOLATIONS:
            self.violations.append(
                InvariantViolation(node, check, detail, record_id)
            )

    def summary(self) -> str:
        """Multi-line human-readable report."""
        checks = []
        if self.oplog_checked:
            checks.append("oplog")
        if self.convergence_checked:
            checks.append("convergence")
        if self.hop_bound_checked:
            checks.append("hop-bound")
        scope = (
            f"{self.nodes_checked} node(s), {self.records_checked} record(s)"
            + (f", extra checks: {', '.join(checks)}" if checks else "")
        )
        if self.ok:
            return f"cluster invariants OK — {scope}"
        lines = [
            f"cluster invariants FAILED — {len(self.violations)} "
            f"violation(s) over {scope}"
        ]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


class ClusterInvariantError(DatabaseError):
    """A safety property does not hold; carries the full report."""

    def __init__(self, report: InvariantReport) -> None:
        super().__init__(report.summary())
        self.report = report


# -- per-database checks -----------------------------------------------------


def check_database(
    db: Database,
    *,
    node: str = "node",
    planner=None,
    oplog=None,
    index_partitions=None,
    report: InvariantReport | None = None,
) -> InvariantReport:
    """Run every node-local invariant on one record store.

    Args:
        db: the store to verify.
        node: label used in violation messages.
        planner: the node's :class:`~repro.core.planner.WritebackPlanner`
            (primary engine's or secondary re-encoder's) — enables the
            conditional hop-bound check.
        oplog: the node's :class:`~repro.db.oplog.Oplog` — enables the
            replay ground-truth check (skipped when truncated).
        index_partitions: ``(database, index)`` pairs for the liveness
            check (primary only).
        report: accumulate into an existing report instead of a new one.
    """
    report = report if report is not None else InvariantReport()
    report.nodes_checked += 1
    _check_structure(db, node, report)
    _check_ref_counts(db, node, report)
    _check_checksums(db, node, report)
    _check_decodes(db, node, report)
    if index_partitions is not None:
        _check_index_liveness(db, node, index_partitions, report)
        _check_index_tiers(node, index_partitions, report)
    if oplog is not None:
        _check_oplog_ground_truth(db, node, oplog, report)
    if planner is not None:
        _check_hop_bound(db, node, planner, report)
    return report


def _check_structure(db: Database, node: str, report: InvariantReport) -> None:
    """Base pointers resolve, chains terminate, raw records have no base."""
    for record_id, record in db.records.items():
        report.records_checked += 1
        if record.form is RecordForm.RAW and record.base_id is not None:
            report.add(
                node, "structure",
                f"raw record carries base pointer {record.base_id!r}",
                record_id,
            )
        if record.form is RecordForm.DELTA:
            if record.base_id is None:
                report.add(
                    node, "structure", "delta record has no base", record_id
                )
                continue
            if record.base_id not in db.records:
                report.add(
                    node, "structure",
                    f"dangling base {record.base_id!r}", record_id,
                )
        # Walk the chain to catch cycles (bounded by the record count).
        seen = {record_id}
        cursor = record
        while cursor.form is RecordForm.DELTA and cursor.base_id in db.records:
            if cursor.base_id in seen:
                report.add(
                    node, "structure",
                    f"base-pointer cycle through {cursor.base_id!r}",
                    record_id,
                )
                break
            seen.add(cursor.base_id)
            cursor = db.records[cursor.base_id]


def _check_ref_counts(db: Database, node: str, report: InvariantReport) -> None:
    """ref_count == stored dependents + pending write-back references."""
    expected: dict[str, int] = {record_id: 0 for record_id in db.records}
    for record in db.records.values():
        if record.base_id is not None and record.base_id in expected:
            expected[record.base_id] += 1
    for entry in db.writeback_cache.pending_entries():
        if entry.base_id in expected:
            expected[entry.base_id] += 1
    for record_id, record in db.records.items():
        if record.ref_count != expected[record_id]:
            report.add(
                node, "refcount",
                f"ref_count={record.ref_count}, expected "
                f"{expected[record_id]} (dependents + pending write-backs)",
                record_id,
            )
        if record.deleted and record.ref_count <= 0:
            report.add(
                node, "tombstone",
                "deleted record retained with no referents", record_id,
            )


def _check_checksums(db: Database, node: str, report: InvariantReport) -> None:
    """Stored payloads verify against their page checksums; no quarantine."""
    for record_id, record in db.records.items():
        expected = db._checksums.get(record_id)
        if expected is None:
            report.add(node, "checksum", "record has no checksum", record_id)
        elif crc32(record.payload) != expected:
            report.add(
                node, "checksum", "stored payload fails checksum", record_id
            )
    for record_id in sorted(db.quarantine):
        report.add(
            node, "checksum", "record still quarantined (unrepaired)",
            record_id,
        )


def _check_decodes(db: Database, node: str, report: InvariantReport) -> None:
    """Every live record decodes through its chain without error."""
    for record_id in sorted(db.records):
        record = db.records.get(record_id)
        if record is None or record.deleted:
            continue
        try:
            content, _ = db.read(record.database, record_id)
        except (CorruptChain, CorruptPage, DatabaseError) as fault:
            report.add(node, "decode", f"read failed: {fault}", record_id)
            continue
        if content is None:
            report.add(node, "decode", "live record read as missing", record_id)


def _check_index_liveness(
    db: Database, node: str, index_partitions, report: InvariantReport
) -> None:
    """Feature-index entries point only at live (non-deleted) records."""
    live = {
        record_id
        for record_id, record in db.records.items()
        if not record.deleted
    }
    for database, index in index_partitions:
        for record_id in index.record_ids() - live:
            report.add(
                node, "index",
                f"partition {database!r} references dead record", record_id,
            )


def _check_index_tiers(
    node: str, index_partitions, report: InvariantReport
) -> None:
    """Tier accounting holds on every feature-index partition.

    Duck-typed so both index kinds pass through: a plain cuckoo index
    has no budget and no cold tier, so only the lookup-outcome identity
    applies to it. For tiered partitions:

    * the hot tier never exceeds ``hot_bytes_budget`` at rest — demotion
      is synchronous with the insert that crossed the budget, so there
      is no window where the checker may observe an over-budget tier;
    * total charged memory is exactly the sum of the two tiers' charges;
    * every lookup resolved to exactly one of hot hit / cold hit / miss
      (the same identity ``check-metrics`` enforces on the exported
      families, verified here at the source).
    """
    for database, index in index_partitions:
        lookups = getattr(index, "lookups", None)
        if lookups is not None:
            outcomes = (
                getattr(index, "hot_hits", 0)
                + getattr(index, "cold_hits", 0)
                + getattr(index, "misses", 0)
            )
            if lookups != outcomes:
                report.add(
                    node, "index-tier",
                    f"partition {database!r}: lookups={lookups} != "
                    f"hot+cold+miss={outcomes}",
                )
        budget = getattr(index, "hot_bytes_budget", None)
        if budget is not None:
            hot_bytes = index.hot_bytes
            if hot_bytes > budget:
                report.add(
                    node, "index-tier",
                    f"partition {database!r}: hot tier {hot_bytes} B "
                    f"exceeds budget {budget} B",
                )
        hot_bytes = getattr(index, "hot_bytes", None)
        cold_bytes = getattr(index, "cold_bytes", None)
        if hot_bytes is not None and cold_bytes is not None:
            if index.memory_bytes != hot_bytes + cold_bytes:
                report.add(
                    node, "index-tier",
                    f"partition {database!r}: memory_bytes="
                    f"{index.memory_bytes} != hot {hot_bytes} + "
                    f"cold {cold_bytes}",
                )


def _check_oplog_ground_truth(
    db: Database, node: str, oplog, report: InvariantReport
) -> None:
    """A from-scratch oplog replay reproduces the node's visible contents.

    The oplog is the write-ahead record of everything the node accepted,
    so its replay is the ground truth the store must agree with —
    byte-for-byte, per record. Skipped when a checkpoint truncated the
    log (history is then split between snapshot and log).
    """
    if oplog.truncated_before > 0:
        return
    report.oplog_checked = True
    replayed, _ = replay_oplog(oplog.entries())
    live = {
        record_id: record
        for record_id, record in db.records.items()
        if not record.deleted
    }
    replayed_live = {
        record_id
        for record_id, record in replayed.records.items()
        if not record.deleted
    }
    for record_id in sorted(set(live) - replayed_live):
        report.add(
            node, "oplog", "live record absent from oplog replay", record_id
        )
    for record_id in sorted(replayed_live - set(live)):
        report.add(
            node, "oplog", "oplog replay yields record the store lost",
            record_id,
        )
    for record_id in sorted(replayed_live & set(live)):
        record = live[record_id]
        expected, _ = replayed.read(record.database, record_id)
        try:
            actual, _ = db.read(record.database, record_id)
        except (CorruptChain, CorruptPage, DatabaseError):
            continue  # already reported by the decode check
        if actual != expected:
            report.add(
                node, "oplog",
                f"content diverges from oplog replay "
                f"({len(actual or b'')} vs {len(expected or b'')} bytes)",
                record_id,
            )


def _check_hop_bound(
    db: Database, node: str, planner, report: InvariantReport
) -> None:
    """Decode depth respects the hop policy's bound — when it must.

    The bound is only guaranteed while every planned write-back landed:
    a dropped cache entry, an unprofitable delta, or an overlapped
    (Fig. 5) chain fork each legitimately leave a record further from
    its raw base. The check therefore arms only when none of those
    escape hatches fired; ``report.hop_bound_checked`` says whether it
    did.
    """
    policy = planner.policy
    if not isinstance(policy, HopEncodingPolicy):
        return
    if (
        db.writeback_cache.discarded > 0
        or len(db.writeback_cache) > 0
        or planner.unprofitable_skips > 0
        or planner.overlapped_encodings > 0
        or db.io_failures > 0
    ):
        return
    report.hop_bound_checked = True
    hop = policy.hop_distance
    for record_id, record in db.records.items():
        if record.deleted:
            continue
        try:
            chain_id, _ = planner.chains.position_of(record_id)
        except KeyError:
            continue  # unique record / rebuilt post-crash: raw, depth 0
        length = len(planner.chains.records_of_chain(chain_id))
        bound = (hop - 1) * (policy.hop_levels(length) + 2) + 2
        try:
            depth = db.decode_cost(record_id)
        except DatabaseError:
            continue  # structural breakage is reported elsewhere
        if depth > bound:
            report.add(
                node, "hop-bound",
                f"decode depth {depth} exceeds bound {bound} "
                f"(chain length {length}, H={hop})",
                record_id,
            )


# -- cluster-level check -----------------------------------------------------


def check_cluster(
    cluster, *, drain: bool = True, strict: bool = True
) -> InvariantReport:
    """Verify every safety property across a whole cluster.

    Suspends the installed fault plan (so verification reads are not
    themselves faulted), optionally drains replication, write-backs and
    the corruption quarantine, runs :func:`check_database` on every
    node, then compares replica contents against the primary.

    Args:
        cluster: a :class:`~repro.db.cluster.Cluster`.
        drain: finalize replication and scrub quarantined corruption
            before checking (chaos tests want this; set False to inspect
            a cluster mid-flight, which skips the convergence check).
        strict: raise :class:`ClusterInvariantError` on any violation
            instead of returning the failing report.

    Returns:
        The :class:`InvariantReport` (always, when ``strict`` is False).
    """
    plan = getattr(cluster, "fault_plan", None)
    was_active = plan.suspend() if plan is not None else False
    try:
        if drain:
            cluster.finalize()
            cluster.scrub()
            # Repairs may re-raise records raw; nothing further to drain.
        report = InvariantReport()
        primary = cluster.primary
        check_database(
            primary.db,
            node="primary",
            planner=primary.engine.planner if primary.engine else None,
            oplog=primary.oplog,
            index_partitions=(
                primary.engine.index_partitions() if primary.engine else None
            ),
            report=report,
        )
        for position, secondary in enumerate(cluster.secondaries):
            check_database(
                secondary.db,
                node=f"secondary{position}",
                planner=(
                    secondary.reencoder.planner if secondary.reencoder else None
                ),
                oplog=secondary.oplog,
                report=report,
            )
        if drain:
            _check_convergence(cluster, report)
            if getattr(cluster, "failover", None) is not None:
                _check_single_primary(cluster, report)
                _check_rollback_completeness(cluster, report)
        if strict and not report.ok:
            raise ClusterInvariantError(report)
        return report
    finally:
        if plan is not None and was_active:
            plan.resume()


def check_sharded_cluster(
    cluster, *, drain: bool = True, strict: bool = True
) -> InvariantReport:
    """Verify a sharded topology: every shard, plus the routing globals.

    Runs :func:`check_cluster` on each shard (violations prefixed with
    ``shard<N>/``) and then the topology-level checks no single shard
    can see:

    * **placement** — every record lives on exactly the shard the
      router's placement function assigns its id to (records never
      migrate);
    * **disjointness** — no record id is stored on two shards;
    * **routing accounting** — the router's per-shard insert counts sum
      to the inserts the shards actually accepted.

    Args:
        cluster: a :class:`~repro.db.sharding.ShardedCluster`.
        drain: finalize replication and scrub before checking.
        strict: raise :class:`ClusterInvariantError` on any violation.
    """
    report = InvariantReport()
    for index, shard in enumerate(cluster.shards):
        shard_report = check_cluster(shard, drain=drain, strict=False)
        report.nodes_checked += shard_report.nodes_checked
        report.records_checked += shard_report.records_checked
        report.hop_bound_checked |= shard_report.hop_bound_checked
        report.oplog_checked |= shard_report.oplog_checked
        report.convergence_checked |= shard_report.convergence_checked
        for violation in shard_report.violations:
            report.add(
                f"shard{index}/{violation.node}",
                violation.check,
                violation.detail,
                violation.record_id,
            )
    _check_placement(cluster, report)
    if strict and not report.ok:
        raise ClusterInvariantError(report)
    return report


def _check_placement(cluster, report: InvariantReport) -> None:
    """Records sit on their routed shard; no id exists on two shards."""
    router = cluster.router
    owner: dict[str, int] = {}
    for index, shard in enumerate(cluster.shards):
        node = f"shard{index}/primary"
        for record_id in sorted(shard.primary.db.records):
            expected = router.shard_of(record_id)
            if expected != index:
                report.add(
                    node, "placement",
                    f"record routed to shard {expected} but stored here",
                    record_id,
                )
            previous = owner.setdefault(record_id, index)
            if previous != index:
                report.add(
                    node, "placement",
                    f"record also stored on shard {previous}", record_id,
                )
    routed = sum(router.counts)
    accepted = sum(shard.inserts for shard in cluster.shards)
    if routed != accepted:
        report.add(
            "router", "placement",
            f"router counted {routed} inserts, shards accepted {accepted}",
        )


def _check_single_primary(cluster, report: InvariantReport) -> None:
    """Exactly one node holds the primary role, and it is up.

    After failover settles there must be one available primary — the
    write path has somewhere to go — and every replica must identify as
    a secondary (a demoted node that still believed it was primary would
    accept divergent writes). A node still awaiting rejoin is fine: it
    holds no role until the rejoin completes or is blocked.
    """
    primary = cluster.primary
    if not getattr(primary, "is_available", True):
        report.add(
            "primary", "single-primary",
            "no available primary after failover settled",
        )
    if getattr(primary.db, "node_role", "primary") != "primary":
        report.add(
            "primary", "single-primary",
            f"primary's store carries role {primary.db.node_role!r}",
        )
    for position, secondary in enumerate(cluster.secondaries):
        role = getattr(secondary.db, "node_role", "secondary")
        if role != "secondary":
            report.add(
                f"secondary{position}", "single-primary",
                f"replica's store carries role {role!r}",
            )


def _check_rollback_completeness(cluster, report: InvariantReport) -> None:
    """Rolled-back inserts leave no zombies behind.

    Every insert a rollback dropped (recorded per failover event) must
    be gone from every node — unless the surviving history independently
    contains that record id, in which case the live copy is the
    authoritative one, not a leftover. The promoted primary's deferred
    index rebuild must also have drained: an entry still in the backlog
    would mean reads can dedup against records the index never saw.
    """
    failover = cluster.failover
    rolled_back: set[str] = set()
    for event in failover.events:
        rolled_back.update(event.rolled_back_inserts)
    if rolled_back:
        authorized = {
            entry.record_id
            for entry in cluster.primary.oplog.entries()
            if entry.op == "insert"
        }
        for name, node in cluster.nodes():
            for record_id in sorted(rolled_back - authorized):
                record = node.db.records.get(record_id)
                if record is not None and not record.deleted:
                    report.add(
                        name, "rollback",
                        "rolled-back insert still live (zombie record)",
                        record_id,
                    )
    backlog = getattr(cluster.primary, "index_backlog_len", 0)
    if backlog:
        report.add(
            "primary", "promoted-index",
            f"deferred index rebuild backlog not drained "
            f"({backlog} record(s) pending)",
        )
    _check_deferred_drained(cluster, report)


def _check_deferred_drained(cluster, report: InvariantReport) -> None:
    """After a drain, no record still awaits its out-of-line dedup pass.

    ``Cluster.finalize`` force-drains the admission queue; an entry left
    behind would mean the run's storage state never converges with the
    all-inline equivalent (the inline ≡ hybrid property the admission
    subsystem promises).
    """
    primary = cluster.primary
    if not getattr(primary, "is_available", True):
        return  # a crashed primary cannot drain; convergence checks cover it
    pending = getattr(primary, "deferred_queue_len", 0)
    if pending:
        report.add(
            "primary", "admission",
            f"deferred dedup queue not drained ({pending} record(s) "
            "pending after finalize)",
        )


def _check_convergence(cluster, report: InvariantReport) -> None:
    """After drain, secondaries mirror the primary's live contents."""
    head = cluster.primary.oplog.next_seq
    for position, link in enumerate(cluster.links):
        if link.cursor < head:
            report.add(
                f"secondary{position}", "convergence",
                f"replication cursor {link.cursor} behind oplog head {head}",
            )
    report.convergence_checked = True
    primary_db = cluster.primary.db
    primary_live = {
        record_id
        for record_id, record in primary_db.records.items()
        if not record.deleted
    }
    for position, secondary in enumerate(cluster.secondaries):
        node = f"secondary{position}"
        secondary_live = {
            record_id
            for record_id, record in secondary.db.records.items()
            if not record.deleted
        }
        for record_id in sorted(primary_live - secondary_live):
            report.add(node, "convergence", "missing replicated record",
                       record_id)
        for record_id in sorted(secondary_live - primary_live):
            report.add(node, "convergence", "record absent on primary",
                       record_id)
        for record_id in sorted(primary_live & secondary_live):
            record = primary_db.records[record_id]
            try:
                expected, _ = primary_db.read(record.database, record_id)
                actual, _ = secondary.db.read(record.database, record_id)
            except (CorruptChain, CorruptPage, DatabaseError):
                continue  # reported by the per-node checks
            if expected != actual:
                report.add(
                    node, "convergence",
                    f"content diverges from primary "
                    f"({len(actual or b'')} vs {len(expected or b'')} bytes)",
                    record_id,
                )
