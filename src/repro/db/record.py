"""Stored-record model with the §4.1 lifecycle state.

A record is stored either RAW (its full content) or DELTA (a backward
delta plus a base pointer). Reference counts track how many other records
use it as a decode base; deletes and updates of referenced records are
deferred exactly as §4.1 describes (mark-deleted, append-update) so that
encoding chains are never corrupted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RecordForm(enum.Enum):
    """How a record's payload is stored."""

    RAW = "raw"
    DELTA = "delta"


@dataclass
class StoredRecord:
    """One record's on-disk state.

    Attributes:
        record_id: unique id within the node.
        database: logical database (dedup is partitioned by this).
        form: RAW or DELTA.
        payload: raw content, or the serialized backward delta.
        base_id: decode base when ``form == DELTA``.
        raw_size: size of the original content — the numerator of every
            compression ratio.
        ref_count: number of records whose stored delta decodes from this
            one.
        deleted: tombstone flag; a deleted record keeps its payload while
            ``ref_count > 0`` so dependents still decode (§4.1 Delete).
        pending_updates: client updates appended while ``ref_count > 0``;
            the last one is the record's current content (§4.1 Update).
    """

    record_id: str
    database: str
    form: RecordForm
    payload: bytes
    base_id: str | None = None
    raw_size: int = 0
    ref_count: int = 0
    deleted: bool = False
    pending_updates: list[bytes] = field(default_factory=list)

    @property
    def stored_size(self) -> int:
        """Bytes this record occupies on disk (payload + appended updates)."""
        return len(self.payload) + sum(len(update) for update in self.pending_updates)

    @property
    def is_raw(self) -> bool:
        """True when the record is stored unencoded."""
        return self.form is RecordForm.RAW

    @property
    def current_content_is_pending(self) -> bool:
        """True when the latest client content lives in ``pending_updates``."""
        return bool(self.pending_updates)
