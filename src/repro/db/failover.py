"""Automatic replica-set failover: detection, election, rollback, resync.

dbDedup rides its host DBMS's replica sets (§4.1 runs on MongoDB), and a
replica set is only worth the name if it survives losing its primary.
This module adds that machinery to the simulated cluster:

* **detection** — a passive heartbeat monitor on the *simulated* clock.
  :meth:`FailoverManager.tick` runs after client operations and idle
  slices; it never advances time and never consumes randomness, so a
  fault-free run with failover enabled is bit-identical to one without.
  A primary that stays unavailable for ``failover_timeout_s`` is
  declared dead.
* **election** — the most-caught-up available secondary wins (highest
  local oplog head; ties break to the lowest replica index), the same
  rule MongoDB's priority-equal elections reduce to.
* **promotion** — the winner keeps its store and local oplog and becomes
  the new primary via :meth:`PrimaryNode.from_secondary
  <repro.db.node.PrimaryNode.from_secondary>`. Its dedup feature index
  is rebuilt *deferred/incrementally* (a slice per insert, more when
  idle) — recovery work moved off the critical path, the hybrid
  inline/out-of-line idea: until the backlog drains, new writes miss
  dedup opportunities, costing compression but never bytes.
* **divergence rollback** — when the old primary rejoins, its log and
  the new primary's are compared seq-by-seq via per-entry checksums;
  everything from the first mismatch (or the shorter head) onward is an
  unreplicated suffix the rest of the set never acknowledged. It is
  truncated, and the node rebuilds its store by replaying the retained
  prefix — the lost-write window every asynchronous-replication system
  accepts, made explicit and counted.
* **catch-up resync** — the rejoined (or lagging) replica's new
  :class:`~repro.db.replication.ReplicationLink` is seeked to the
  divergence point and ordinary at-least-once shipping replays the new
  primary's history from there. No bespoke transfer path: resync *is*
  replication.

:class:`ShardedCluster <repro.db.sharding.ShardedCluster>` needs nothing
special — each shard owns a manager and fails over independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.node import PrimaryNode, SecondaryNode
from repro.db.oplog import Oplog

#: Default heartbeat observation cadence (simulated seconds).
DEFAULT_HEARTBEAT_INTERVAL_S = 0.25

#: Default unavailability span after which the primary is declared dead.
DEFAULT_FAILOVER_TIMEOUT_S = 1.0

#: Default wait before a demoted old primary rejoins as a secondary.
DEFAULT_REJOIN_DELAY_S = 2.0

#: Sync rounds attempted during an immediate catch-up resync; leftovers
#: (possible only under delivery-fault injection) drain at finalize.
RESYNC_ROUNDS = 8


def divergence_point(local: Oplog, authority: Oplog) -> int | None:
    """First seq where ``local`` stops agreeing with ``authority``.

    Compares per-entry checksums over the seq range both logs retain.
    Returns the seq the local node must roll back to (== its own head
    when the logs agree and it is merely behind), or None when the logs
    have no comparable overlap (one was checkpoint-truncated past the
    other's head) — the node then needs a snapshot, not a resync.
    """
    start = max(local.truncated_before, authority.truncated_before)
    limit = min(local.next_seq, authority.next_seq)
    if local.next_seq < authority.truncated_before:
        return None  # authority cannot even ship from local's head
    for seq in range(start, limit):
        ours = local.entry_at(seq)
        theirs = authority.entry_at(seq)
        if ours is None or theirs is None or ours.checksum != theirs.checksum:
            return seq
    return limit


@dataclass(frozen=True)
class FailoverEvent:
    """One entry of the failover event log (the chaos-CI artifact).

    Attributes:
        kind: ``promote``, ``rejoin``, ``rejoin-blocked``, ``restart``,
            or ``rollback``.
        at_s: simulated time the event completed.
        node: the node acted on (stable node name).
        detail: human-readable summary.
        time_to_promote_s: outage span, on ``promote`` events.
        divergence_seq: agreed log prefix end, on rollback/rejoin events.
        rolled_back: oplog entries dropped, on rollback/rejoin events.
        rolled_back_inserts: record ids of dropped *insert* entries —
            what the rollback-completeness invariant audits for zombies.
        resync_bytes: catch-up wire bytes shipped, on rejoin events.
    """

    kind: str
    at_s: float
    node: str
    detail: str = ""
    time_to_promote_s: float | None = None
    divergence_seq: int | None = None
    rolled_back: int = 0
    rolled_back_inserts: tuple[str, ...] = ()
    resync_bytes: int = 0

    def to_line(self) -> str:
        """One log line, stable enough to diff across seeded runs."""
        parts = [f"t={self.at_s:.4f}", self.kind, f"node={self.node}"]
        if self.time_to_promote_s is not None:
            parts.append(f"time_to_promote_s={self.time_to_promote_s:.4f}")
        if self.divergence_seq is not None:
            parts.append(f"divergence_seq={self.divergence_seq}")
        if self.rolled_back:
            parts.append(f"rolled_back={self.rolled_back}")
        if self.resync_bytes:
            parts.append(f"resync_bytes={self.resync_bytes}")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


@dataclass
class FailoverConfig:
    """Knobs the cluster passes through from its configuration."""

    enabled: bool = True
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S
    failover_timeout_s: float = DEFAULT_FAILOVER_TIMEOUT_S
    rejoin_delay_s: float = DEFAULT_REJOIN_DELAY_S

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be > 0, got "
                f"{self.heartbeat_interval_s}"
            )
        if self.failover_timeout_s < self.heartbeat_interval_s:
            raise ValueError(
                "failover_timeout_s must be >= heartbeat_interval_s "
                f"({self.failover_timeout_s} < {self.heartbeat_interval_s})"
            )
        if self.rejoin_delay_s < 0:
            raise ValueError(
                f"rejoin_delay_s must be >= 0, got {self.rejoin_delay_s}"
            )


class FailoverManager:
    """Heartbeat monitor + election + promotion driver for one cluster.

    Owned by :class:`~repro.db.cluster.Cluster`; the cluster calls
    :meth:`tick` from its operation hooks and :meth:`settle` at the top
    of ``finalize()`` so invariant sweeps always see a completed
    topology (promotion done, rejoin done, index backlog drained).
    """

    def __init__(self, cluster, config: FailoverConfig) -> None:
        self.cluster = cluster
        self.config = config
        self.events: list[FailoverEvent] = []
        #: Promotions performed (``failovers_total``).
        self.failovers = 0
        #: Oplog entries dropped by divergence rollbacks.
        self.rollback_entries = 0
        #: Catch-up wire bytes shipped through rejoin resyncs.
        self.resync_bytes = 0
        #: Downed secondaries revived by the supervisor.
        self.supervised_restarts = 0
        #: Client operations that had to wait out a promotion.
        self.stalled_ops = 0
        self.last_time_to_promote_s: float | None = None
        #: Demoted old primary waiting out ``rejoin_delay_s``.
        self.awaiting_rejoin: PrimaryNode | None = None
        self._rejoin_due_s: float | None = None
        self._primary_down_at: float | None = None
        self._secondary_down_at: dict[str, float] = {}
        self._last_tick_s = float("-inf")

    # -- heartbeat loop ------------------------------------------------------

    def tick(self) -> None:
        """One passive heartbeat observation (safe to call every op).

        Reads the simulated clock but never advances it, and uses no
        randomness — a fault-free run is byte-identical with or without
        failover enabled. At most one observation per
        ``heartbeat_interval_s`` does any work.
        """
        if not self.config.enabled:
            return
        now = self.cluster.clock.now
        if now - self._last_tick_s < self.config.heartbeat_interval_s:
            return
        self._last_tick_s = now
        self._observe_secondaries(now)
        self._observe_primary(now)
        if (
            self.awaiting_rejoin is not None
            and self._rejoin_due_s is not None
            and now >= self._rejoin_due_s
        ):
            self._rejoin(now)

    def settle(self) -> None:
        """Force-complete every pending transition (finalize-time).

        Revives downed secondaries, promotes immediately if the primary
        is dead, performs any pending rejoin without waiting out the
        delay, and drains the promoted node's index backlog — so drains,
        invariant sweeps and convergence checks operate on a quiescent,
        fully-formed replica set.
        """
        if not self.config.enabled:
            return
        now = self.cluster.clock.now
        for secondary in list(self.cluster.secondaries):
            if not secondary.is_available:
                self._restart_secondary(secondary, now)
        if not self.cluster.primary.is_available:
            self._promote(now)
        if self.awaiting_rejoin is not None:
            self._rejoin(now)
        primary = self.cluster.primary
        if primary.is_available and hasattr(primary, "drain_index_backlog"):
            primary.drain_index_backlog()

    def event_log(self) -> str:
        """The failover event log as text (uploaded by chaos CI)."""
        return "\n".join(event.to_line() for event in self.events)

    # -- observation ---------------------------------------------------------

    def _observe_primary(self, now: float) -> None:
        if self.cluster.primary.is_available:
            self._primary_down_at = None
            return
        if self._primary_down_at is None:
            self._primary_down_at = now
            return
        if now - self._primary_down_at >= self.config.failover_timeout_s:
            self._promote(now)

    def _observe_secondaries(self, now: float) -> None:
        for secondary in list(self.cluster.secondaries):
            name = secondary.node_name
            if secondary.is_available:
                self._secondary_down_at.pop(name, None)
                continue
            down_at = self._secondary_down_at.setdefault(name, now)
            if now - down_at >= self.config.failover_timeout_s:
                self._restart_secondary(secondary, now)

    def _restart_secondary(self, secondary: SecondaryNode, now: float) -> None:
        """Supervised revival: replay the replica's local log in place."""
        secondary.restart()
        self.supervised_restarts += 1
        self._secondary_down_at.pop(secondary.node_name, None)
        self.events.append(
            FailoverEvent(
                kind="restart",
                at_s=now,
                node=secondary.node_name,
                detail="supervised secondary restart from local oplog",
            )
        )

    # -- promotion -----------------------------------------------------------

    def _promote(self, now: float) -> bool:
        """Elect and promote the most-caught-up available secondary."""
        cluster = self.cluster
        candidates = [
            (index, secondary)
            for index, secondary in enumerate(cluster.secondaries)
            if secondary.is_available
        ]
        if not candidates:
            return False  # nothing to elect yet; supervisor may revive one
        index, winner = max(
            candidates, key=lambda pair: (pair[1].oplog.next_seq, -pair[0])
        )
        old = cluster.primary
        outage = now - self._primary_down_at if self._primary_down_at else 0.0
        with cluster.tracer.span(
            "failover", old=old.node_name, new=winner.node_name
        ):
            cluster.secondaries.pop(index)
            cluster.links.pop(index)
            new_primary = PrimaryNode.from_secondary(
                winner, use_writeback_cache=cluster.config.use_writeback_cache
            )
            cluster.primary = new_primary
            cluster.links = [
                self._relink(secondary, now)
                for secondary in cluster.secondaries
            ]
        self.failovers += 1
        self.last_time_to_promote_s = outage
        self._primary_down_at = None
        self.awaiting_rejoin = old
        self._rejoin_due_s = now + self.config.rejoin_delay_s
        self.events.append(
            FailoverEvent(
                kind="promote",
                at_s=now,
                node=winner.node_name,
                detail=(
                    f"replaces {old.node_name}; deferred index backlog="
                    f"{getattr(new_primary, 'index_backlog_len', 0)}"
                ),
                time_to_promote_s=outage,
            )
        )
        return True

    def _relink(self, secondary: SecondaryNode, now: float):
        """Point one surviving secondary at the new primary.

        The common case is a clean prefix (the secondary simply lags):
        its new link starts at its own head and catch-up is plain
        shipping. A checksum mismatch means this replica applied history
        the winner never had (decode-fallback skew or reordering) — it
        rolls back to the agreed prefix first, same routine as a
        rejoining old primary.
        """
        cluster = self.cluster
        primary = cluster.primary
        point = divergence_point(secondary.oplog, primary.oplog)
        if point is None:  # pragma: no cover — live replicas never truncate
            point = min(secondary.oplog.next_seq, primary.oplog.next_seq)
        if point < secondary.oplog.next_seq:
            with cluster.tracer.span("rollback", node=secondary.node_name):
                dropped = secondary.rollback_to(point)
            self.rollback_entries += len(dropped)
            self.events.append(
                FailoverEvent(
                    kind="rollback",
                    at_s=now,
                    node=secondary.node_name,
                    detail="divergent replica realigned to new primary",
                    divergence_seq=point,
                    rolled_back=len(dropped),
                    rolled_back_inserts=tuple(
                        entry.record_id
                        for entry in dropped
                        if entry.op == "insert"
                    ),
                )
            )
        link = cluster._make_link(secondary)
        link.seek(point)
        return link

    # -- rejoin --------------------------------------------------------------

    def _rejoin(self, now: float) -> bool:
        """Bring the demoted old primary back as a rolled-back secondary."""
        old = self.awaiting_rejoin
        if old is None:
            return False
        cluster = self.cluster
        primary = cluster.primary
        point = (
            divergence_point(old.oplog, primary.oplog)
            if old.oplog.truncated_before == 0
            else None
        )
        if point is None:
            # The documented restart()/rejoin contract: history truncated
            # at a checkpoint cannot be rebuilt from the log alone — the
            # node stays out until re-seeded from a checkpoint snapshot.
            self.awaiting_rejoin = None
            self._rejoin_due_s = None
            self.events.append(
                FailoverEvent(
                    kind="rejoin-blocked",
                    at_s=now,
                    node=old.node_name,
                    detail=(
                        "oplog truncated at a checkpoint; rejoin needs "
                        "the checkpoint snapshot"
                    ),
                )
            )
            return False
        old_head = old.oplog.next_seq
        with cluster.tracer.span("failover", phase="rejoin", node=old.node_name):
            with cluster.tracer.span("rollback", node=old.node_name):
                dropped = old.oplog.truncate_from(point)
                rejoined = SecondaryNode.from_demoted_primary(old)
            self.rollback_entries += len(dropped)
            cluster.secondaries.append(rejoined)
            link = cluster._make_link(rejoined)
            link.seek(point)
            cluster.links.append(link)
            resync = 0
            with cluster.tracer.span("resync", node=rejoined.node_name):
                for _ in range(RESYNC_ROUNDS):
                    resync += link.sync()
                    if link.cursor >= primary.oplog.next_seq:
                        break
            self.resync_bytes += resync
        self.awaiting_rejoin = None
        self._rejoin_due_s = None
        self.events.append(
            FailoverEvent(
                kind="rejoin",
                at_s=now,
                node=rejoined.node_name,
                detail=(
                    f"rolled back unreplicated suffix "
                    f"[{point}, {old_head}) and resynced"
                ),
                divergence_seq=point,
                rolled_back=len(dropped),
                rolled_back_inserts=tuple(
                    entry.record_id for entry in dropped if entry.op == "insert"
                ),
                resync_bytes=resync,
            )
        )
        return True


__all__ = [
    "FailoverConfig",
    "FailoverEvent",
    "FailoverManager",
    "divergence_point",
    "DEFAULT_HEARTBEAT_INTERVAL_S",
    "DEFAULT_FAILOVER_TIMEOUT_S",
    "DEFAULT_REJOIN_DELAY_S",
]
