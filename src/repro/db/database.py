"""Node-local record store with §4.1's CRUD + encoding-chain semantics.

One :class:`Database` instance is a node's whole data store (it can hold
records of many logical databases, like a MongoDB instance). It owns

* the page store (block-compression accounting),
* the lossy write-back cache and its idle-triggered flushing,
* reference counts, deferred deletes, append-style updates, and the
  read-path garbage collection that splices deleted records out of
  encoding chains.

All disk traffic is charged to the simulated disk so the queue-length
idleness signal and the latency numbers mean something.
"""

from __future__ import annotations

from typing import Sequence
from zlib import crc32

from repro.cache.source_cache import SourceRecordCache
from repro.cache.writeback import LossyWriteBackCache, WriteBackEntry
from repro.compression.block import BlockCompressor
from repro.db.errors import CorruptChain, CorruptPage, RecordExists, RecordNotFound
from repro.db.pagestore import PageStore
from repro.db.record import RecordForm, StoredRecord
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.decode import apply_delta
from repro.delta.instructions import deserialize, serialize
from repro.sim.clock import SimClock
from repro.sim.disk import SimDisk
from repro.sim.faults import TransientIOError

#: Attempts before a transiently failing disk request is abandoned. The
#: data is already safe in memory structures; only the simulated I/O
#: accounting is lost, so giving up degrades latency numbers, not data.
IO_RETRY_LIMIT = 6

#: Base backoff between transient-I/O retries (doubles per attempt).
IO_RETRY_BACKOFF_S = 0.001


class Database:
    """Record store for one node."""

    def __init__(
        self,
        clock: SimClock | None = None,
        disk: SimDisk | None = None,
        page_size: int = 32 * 1024,
        block_compressor: BlockCompressor | None = None,
        writeback_capacity: int = 8 * 1024 * 1024,
        record_cache: SourceRecordCache | None = None,
        idle_queue_threshold: int = 0,
        page_store=None,
        node_role: str = "node",
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.disk = disk if disk is not None else SimDisk(self.clock)
        # Default: the accounting page store. Pass a
        # repro.storage.HeapFileStore for the full physical engine.
        self.pages = (
            page_store
            if page_store is not None
            else PageStore(page_size=page_size, compressor=block_compressor)
        )
        self.writeback_cache = LossyWriteBackCache(writeback_capacity)
        self.record_cache = record_cache
        self.idle_queue_threshold = idle_queue_threshold
        self.records: dict[str, StoredRecord] = {}
        self.writeback_cache.on_drop = self._on_writeback_drop
        # GC re-encoding runs rarely; default compressor parameters suffice.
        self._gc_compressor = DeltaCompressor()
        self.writebacks_applied = 0
        self.gc_splices = 0
        self.decode_base_fetches = 0
        #: Which cluster role owns this store ("primary"/"secondary") —
        #: fault rules target roles (see :mod:`repro.sim.faults`).
        self.node_role = node_role
        #: Optional fault injector with an ``on_page_read`` hook.
        self.fault_injector = None
        #: crc32 of each record's stored payload, written alongside it.
        self._checksums: dict[str, int] = {}
        #: Records whose storage failed checksum verification, awaiting
        #: repair from a healthy replica (see ``Cluster.repair_record``).
        self.quarantine: set[str] = set()
        self.corrupt_reads_detected = 0
        self.corrupt_reads_recovered = 0
        self.io_retries = 0
        self.io_failures = 0

    # -- client-facing CRUD (§4.1) -------------------------------------------

    def insert(self, database: str, record_id: str, content: bytes) -> float:
        """Store a new record raw; returns the disk latency to absorb.

        Raises:
            RecordExists: on duplicate live record ids.
        """
        if record_id in self.records:
            # Tombstoned ids stay reserved too: their chains may still need
            # the old content.
            raise RecordExists(record_id)
        record = StoredRecord(
            record_id=record_id,
            database=database,
            form=RecordForm.RAW,
            payload=content,
            raw_size=len(content),
        )
        self.records[record_id] = record
        self.pages.place(record_id, content)
        self._note_checksum(record)
        return self._disk_request("write", len(content))

    def insert_many(
        self, items: Sequence[tuple[str, str, bytes]]
    ) -> float:
        """Store a batch of new records raw; returns the summed disk latency.

        ``items`` is ``(database, record_id, content)`` triples. The batch
        is validated before anything is stored, so a duplicate id —
        against existing records or within the batch itself — raises
        :class:`RecordExists` with the store untouched (atomic admission,
        unlike a half-applied loop of :meth:`insert`).
        """
        seen: set[str] = set()
        for _, record_id, _ in items:
            if record_id in self.records or record_id in seen:
                raise RecordExists(record_id)
            seen.add(record_id)
        latency = 0.0
        for database, record_id, content in items:
            record = StoredRecord(
                record_id=record_id,
                database=database,
                form=RecordForm.RAW,
                payload=content,
                raw_size=len(content),
            )
            self.records[record_id] = record
            self.pages.place(record_id, content)
            self._note_checksum(record)
            latency += self._disk_request("write", len(content))
        return latency

    def read(self, database: str, record_id: str) -> tuple[bytes | None, float]:
        """Client read: ``(content, latency)``; content is None for deleted
        or missing records (reads of deleted records return empty, §4.1)."""
        record = self.records.get(record_id)
        if record is None or record.deleted:
            return None, 0.0
        content, latency = self._materialize(record, charge_foreground=True)
        return content, latency

    def update(self, record_id: str, content: bytes) -> float:
        """Replace a record's content (full-record update semantics).

        If other records decode from this one, the new content is appended
        and the old payload retained so dependents still decode; otherwise
        the record is rewritten raw in place.
        """
        record = self._live_record(record_id)
        # §4.1: pending write-backs for this record are superseded.
        self.writeback_cache.invalidate(record_id)
        if self.record_cache is not None:
            self.record_cache.invalidate(record_id)
        if record.ref_count > 0:
            record.pending_updates.append(content)
            self.pages.update(record_id, self._disk_image(record))
            return self._disk_request("write", len(content))
        old_base = record.base_id
        record.form = RecordForm.RAW
        record.payload = content
        record.base_id = None
        record.raw_size = len(content)
        record.pending_updates.clear()
        self.pages.update(record_id, content)
        self._note_checksum(record)
        if old_base is not None:
            self._release_base(old_base)
        return self._disk_request("write", len(content))

    def delete(self, record_id: str) -> float:
        """Delete a record, deferring if others decode from it (§4.1)."""
        record = self._live_record(record_id)
        self.writeback_cache.invalidate(record_id)
        if self.record_cache is not None:
            self.record_cache.invalidate(record_id)
        if record.ref_count > 0:
            record.deleted = True
            return 0.0
        return self._remove(record)

    # -- dedup integration ------------------------------------------------------

    def schedule_writebacks(self, entries) -> None:
        """Queue backward/hop deltas in the lossy write-back cache.

        Each queued entry takes a *pending reference* on its base record:
        the delta was computed against the base's current bytes, so until
        the entry is flushed or dropped, client updates to the base must
        append (preserving the old payload) rather than rewrite in place.
        The cache's drop callback releases the reference for entries that
        leave without being applied.
        """
        for entry in entries:
            record = self.records.get(entry.record_id)
            base = self.records.get(entry.base_id)
            if record is None or base is None or record.pending_updates:
                continue  # superseded by a client write; drop silently
            base.ref_count += 1
            self.writeback_cache.put(entry)

    def _on_writeback_drop(self, entry: WriteBackEntry) -> None:
        """Release the pending base reference of a dropped entry."""
        self._release_base(entry.base_id)

    def flush_writebacks_if_idle(self, max_flushes: int | None = None) -> int:
        """Apply pending write-backs while the disk queue is idle (§3.3.2)."""
        applied = 0
        while self.disk.is_idle(self.idle_queue_threshold):
            if max_flushes is not None and applied >= max_flushes:
                break
            entry = self.writeback_cache.flush_most_valuable()
            if entry is None:
                break
            if self.apply_writeback(entry):
                applied += 1
            self._release_base(entry.base_id)  # the pending reference
        return applied

    def drain_writebacks(self) -> int:
        """Apply every pending write-back regardless of disk load."""
        applied = 0
        for entry in self.writeback_cache.drain():
            if self.apply_writeback(entry):
                applied += 1
            self._release_base(entry.base_id)  # the pending reference
        return applied

    def apply_writeback(self, entry: WriteBackEntry) -> bool:
        """Replace a record's stored form with its backward delta.

        Skipped (returns False) when the record or its base vanished or the
        record took client updates meanwhile — losing a write-back is
        always safe, that is the cache's whole premise.
        """
        record = self.records.get(entry.record_id)
        base = self.records.get(entry.base_id)
        if record is None or base is None or record.pending_updates:
            return False
        old_base = record.base_id
        record.form = RecordForm.DELTA
        record.payload = entry.payload
        record.base_id = entry.base_id
        base.ref_count += 1
        self.pages.update(entry.record_id, self._disk_image(record))
        self._note_checksum(record)
        self._disk_request("write", len(entry.payload))  # background write
        if old_base is not None:
            self._release_base(old_base)
        self.writebacks_applied += 1
        return True

    # -- RecordProvider protocol (engine-facing) ---------------------------------

    def fetch_content(self, record_id: str) -> bytes | None:
        """Raw content for the dedup engine; charges background disk reads.

        A corrupt page along the decode path reads as *unavailable* (the
        engine then treats the record as a cache miss and encodes less
        aggressively) — background dedup must never turn detected
        corruption into a failed client write. The record is already
        quarantined for the repair path by the time this returns.
        """
        record = self.records.get(record_id)
        if record is None:
            return None
        try:
            content, _ = self._materialize(record, charge_foreground=False)
        except CorruptPage:
            return None
        return content

    def stored_size(self, record_id: str) -> int:
        """Bytes the record occupies on disk (0 if unknown)."""
        record = self.records.get(record_id)
        return record.stored_size if record is not None else 0

    def decode_stored_content(self, record_id: str) -> bytes | None:
        """What a record's *stored* chain decodes to, for GC validation.

        Unlike :meth:`read`/:meth:`fetch_content` this ignores the
        record's own pending client updates and bypasses the record
        cache — it answers "what do dependents' deltas decode against",
        which is the byte identity garbage collection must preserve.
        Charges background disk reads; returns None when a page along
        the chain is corrupt (the GC batch then skips or rolls back).

        Raises:
            CorruptChain: on cycles or dangling base pointers.
        """
        record = self.records.get(record_id)
        if record is None:
            return None
        chain: list[StoredRecord] = []
        cursor = record
        seen: set[str] = set()
        while True:
            if cursor.record_id in seen:
                raise CorruptChain(f"cycle at {cursor.record_id!r}")
            seen.add(cursor.record_id)
            chain.append(cursor)
            if cursor.form is RecordForm.RAW:
                break
            base = self.records.get(cursor.base_id)
            if base is None:
                raise CorruptChain(
                    f"{cursor.record_id!r} has dangling base "
                    f"{cursor.base_id!r}"
                )
            cursor = base
        content: bytes | None = None
        try:
            for rec in reversed(chain):
                payload = self._read_payload(rec)
                self._charge_read(rec.stored_size, foreground=False)
                if rec.form is RecordForm.RAW:
                    content = payload
                else:
                    content = apply_delta(content, deserialize(payload))
        except CorruptPage:
            return None
        return content

    # -- measurements ------------------------------------------------------------

    @property
    def live_records(self) -> int:
        """Number of non-deleted records."""
        return sum(1 for record in self.records.values() if not record.deleted)

    @property
    def logical_raw_bytes(self) -> int:
        """Original (pre-dedup) bytes of all live records."""
        return sum(
            len(record.pending_updates[-1]) if record.pending_updates else record.raw_size
            for record in self.records.values()
            if not record.deleted
        )

    @property
    def stored_bytes(self) -> int:
        """Post-dedup, pre-block-compression storage footprint."""
        return self.pages.logical_bytes

    @property
    def stored_bytes_total(self) -> int:
        """Monotonic bytes ever written to storage.

        With :attr:`reclaimed_bytes_total` this fixes the tombstone
        accounting drift: ``stored_bytes_total - reclaimed_bytes_total
        == stored_bytes`` at all times, so savings reports can subtract
        deleted records' bytes instead of overstating dedup.
        """
        return getattr(self.pages, "bytes_written_total", 0)

    @property
    def reclaimed_bytes_total(self) -> int:
        """Monotonic bytes reclaimed from storage (deletes, shrinking
        rewrites, GC). Never exceeds :attr:`stored_bytes_total`."""
        return getattr(self.pages, "bytes_reclaimed_total", 0)

    @property
    def tombstone_bytes(self) -> int:
        """Stored bytes held by deferred-deleted records awaiting GC."""
        return sum(
            record.stored_size
            for record in self.records.values()
            if record.deleted
        )

    def physical_bytes(self) -> int:
        """Post-dedup, post-block-compression storage footprint."""
        return self.pages.physical_bytes()

    def decode_cost(self, record_id: str) -> int:
        """Number of base records a read of ``record_id`` must retrieve."""
        record = self.records.get(record_id)
        if record is None:
            raise RecordNotFound(record_id)
        steps = 0
        seen = set()
        while record.form is RecordForm.DELTA:
            if record.record_id in seen:
                raise CorruptChain(f"cycle at {record.record_id!r}")
            seen.add(record.record_id)
            steps += 1
            record = self.records[record.base_id]
        return steps

    # -- internals ---------------------------------------------------------------

    def _live_record(self, record_id: str) -> StoredRecord:
        record = self.records.get(record_id)
        if record is None or record.deleted:
            raise RecordNotFound(record_id)
        return record

    def _disk_image(self, record: StoredRecord) -> bytes:
        """What the page store holds for a record (payload + pendings)."""
        if record.pending_updates:
            return record.payload + b"".join(record.pending_updates)
        return record.payload

    def _materialize(
        self, record: StoredRecord, charge_foreground: bool
    ) -> tuple[bytes, float]:
        """Decode a record's current content, charging disk traffic.

        Walks the base-pointer chain; every record fetched from storage is
        one disk read (the record cache short-circuits the walk). Deleted
        records encountered along the path are spliced out (§4.1 GC).
        """
        if record.pending_updates:
            latency = self._charge_read(len(record.pending_updates[-1]), charge_foreground)
            return record.pending_updates[-1], latency

        # Collect the chain from the queried record up to a raw base or a
        # cache hit.
        chain: list[StoredRecord] = []
        cursor = record
        latency = 0.0
        cached_content: bytes | None = None
        seen: set[str] = set()
        while True:
            if cursor.record_id in seen:
                raise CorruptChain(f"cycle at {cursor.record_id!r}")
            seen.add(cursor.record_id)
            # The cache shortcut is only sound for records whose client
            # content equals their stored decode content. A record with
            # pending updates breaks that: the engine's fetch path admits
            # the *updated* content (what dedup wants), while dependents'
            # deltas decode against the retained old payload.
            if (
                self.record_cache is not None
                and chain
                and not cursor.pending_updates
            ):
                cached = self.record_cache.peek(cursor.record_id)
                if cached is not None:
                    cached_content = cached
                    break
            chain.append(cursor)
            latency += self._charge_read(cursor.stored_size, charge_foreground)
            if cursor.form is RecordForm.RAW:
                break
            base = self.records.get(cursor.base_id)
            if base is None:
                raise CorruptChain(
                    f"{cursor.record_id!r} has dangling base {cursor.base_id!r}"
                )
            self.decode_base_fetches += 1
            cursor = base

        # Decode top-down: last element is raw (or decodes from cache).
        contents: dict[str, bytes] = {}
        base_content = cached_content
        for rec in reversed(chain):
            payload = self._read_payload(rec)
            if rec.form is RecordForm.RAW:
                base_content = payload
            else:
                insts = deserialize(payload)
                base_content = apply_delta(base_content, insts)
            contents[rec.record_id] = base_content
            # §4.1: decoded bases go through the source record cache, so a
            # second read of any record on this path skips the chain walk.
            if (
                self.record_cache is not None
                and not rec.deleted
                and not rec.pending_updates
            ):
                self.record_cache.admit(rec.record_id, base_content)

        self._gc_along_path(chain, contents)
        result = contents[record.record_id]
        if record.pending_updates:
            result = record.pending_updates[-1]
        return result, latency

    def _charge_read(self, nbytes: int, foreground: bool) -> float:
        wait = self._disk_request("read", nbytes)
        return wait if foreground else 0.0

    def _disk_request(self, kind: str, nbytes: int) -> float:
        """Submit one disk request, retrying transient fault injections.

        Transient errors back off exponentially (the backoff is charged
        as extra latency). After :data:`IO_RETRY_LIMIT` failures the
        request is abandoned — only simulated accounting is lost, the
        in-memory data structures are already consistent.
        """
        delay = 0.0
        for attempt in range(IO_RETRY_LIMIT):
            try:
                return delay + self.disk.submit(kind, nbytes)
            except TransientIOError:
                self.io_retries += 1
                delay += IO_RETRY_BACKOFF_S * (2**attempt)
        self.io_failures += 1
        return delay

    # -- page checksums and quarantine (fault tolerance) -------------------------

    def _note_checksum(self, record: StoredRecord) -> None:
        """Record the checksum written alongside a (re)written payload."""
        self._checksums[record.record_id] = crc32(record.payload)
        self.quarantine.discard(record.record_id)

    def _read_payload(self, record: StoredRecord) -> bytes:
        """A record's payload as read from storage, checksum-verified.

        The fault injector may corrupt the returned bytes. A mismatch
        against the stored checksum triggers one re-read: if the storage
        copy still verifies, the corruption was transient (a bad DMA, a
        bit flip on the wire) and the clean bytes are returned. If the
        storage copy itself is corrupt, the record is quarantined and the
        read fails — the repair path must restore it from a replica.
        """
        payload = record.payload
        if self.fault_injector is not None:
            payload = self.fault_injector.on_page_read(self, record, payload)
        expected = self._checksums.get(record.record_id)
        if expected is None or crc32(payload) == expected:
            return payload
        self.corrupt_reads_detected += 1
        if crc32(record.payload) == expected:
            # Transient read-path corruption: the re-read heals it.
            self.corrupt_reads_recovered += 1
            self._charge_read(record.stored_size, foreground=False)
            return record.payload
        self.quarantine.add(record.record_id)
        raise CorruptPage(record.record_id)

    def verify_checksums(self) -> list[str]:
        """Scrub pass: verify every stored payload against its checksum.

        Corrupt records are quarantined and returned; the caller repairs
        them from a healthy replica (``Cluster.repair_record``).
        """
        corrupt = []
        for record_id, record in self.records.items():
            expected = self._checksums.get(record_id)
            if expected is not None and crc32(record.payload) != expected:
                self.quarantine.add(record_id)
                corrupt.append(record_id)
        return corrupt

    def dependents_of(self, record_id: str) -> list[str]:
        """Records whose stored delta decodes directly from ``record_id``."""
        return [
            other_id
            for other_id, other in self.records.items()
            if other.base_id == record_id
        ]

    def restore_record_raw(self, record_id: str, content: bytes) -> bool:
        """Repair a quarantined record: rewrite it raw with known-good bytes.

        Used by the quarantine path after corruption. The record leaves
        its encoding chain (its old base reference is released) and any
        pending write-back for it is invalidated — compression is lost,
        data is not. Returns False when the record no longer exists.
        """
        record = self.records.get(record_id)
        if record is None:
            return False
        self.writeback_cache.invalidate(record_id)
        if self.record_cache is not None:
            self.record_cache.invalidate(record_id)
        old_base = record.base_id
        record.form = RecordForm.RAW
        record.payload = content
        record.base_id = None
        record.raw_size = len(content)
        record.pending_updates.clear()
        self.pages.update(record_id, content)
        self._note_checksum(record)
        self._disk_request("write", len(content))
        if old_base is not None:
            self._release_base(old_base)
        return True

    def _gc_along_path(
        self, chain: list[StoredRecord], contents: dict[str, bytes]
    ) -> None:
        """§4.1 GC: splice deleted records out of the decode path.

        For a deleted record B with dependent X (X.base == B), re-encode X
        directly against B's base C and drop B once nothing references it.
        """
        for position in range(len(chain) - 1):
            dependent = chain[position]
            middle = chain[position + 1]
            if not middle.deleted or middle.form is not RecordForm.DELTA:
                continue
            # Consecutive tombstones: an earlier iteration's splice may
            # have reaped either record already (``_remove`` cascades
            # through ``_release_base``); the chain list is stale then.
            if (
                dependent.record_id not in self.records
                or middle.record_id not in self.records
            ):
                continue
            grandbase = self.records.get(middle.base_id)
            if grandbase is None or grandbase.record_id not in contents:
                # Base decoded from the record cache: skip the splice this
                # time; a later uncached read will do it.
                continue
            insts = self._gc_compressor.compress(
                contents[grandbase.record_id], contents[dependent.record_id]
            )
            dependent.payload = serialize(insts)
            dependent.base_id = grandbase.record_id
            grandbase.ref_count += 1
            self.pages.update(dependent.record_id, self._disk_image(dependent))
            self._note_checksum(dependent)
            self._disk_request("write", len(dependent.payload))
            middle.ref_count -= 1
            self.gc_splices += 1
            if middle.ref_count <= 0:
                self._remove(middle)

    def _release_base(self, base_id: str) -> None:
        """Decrement a base's refcount; reap it if it was tomb-stoned."""
        base = self.records.get(base_id)
        if base is None:
            return
        base.ref_count -= 1
        if base.deleted and base.ref_count <= 0:
            self._remove(base)

    def _remove(self, record: StoredRecord) -> float:
        """Physically remove a record and release its own base."""
        self.pages.remove(record.record_id)
        self.records.pop(record.record_id, None)
        self._checksums.pop(record.record_id, None)
        self.quarantine.discard(record.record_id)
        if self.record_cache is not None:
            self.record_cache.invalidate(record.record_id)
        if record.base_id is not None:
            self._release_base(record.base_id)
        return 0.0
