"""Primary and secondary nodes (§4.1, Fig. 8).

The primary serves client writes: records land raw in storage and in the
oplog; the dedup encoder runs *off the critical path* (charged as
background CPU, not client latency), replacing oplog payloads with forward
deltas and queueing backward write-backs. The secondary replays shipped
oplog batches through the re-encoder so both replicas converge.
"""

from __future__ import annotations

from repro.core.config import DedupConfig
from repro.core.engine import DedupEngine
from repro.core.gc import GarbageCollector
from repro.core.reencoder import SecondaryReencoder
from repro.compression.block import BlockCompressor
from repro.db.database import Database
from repro.db.errors import NodeUnavailableError
from repro.db.oplog import Oplog, OplogEntry
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer, TracingObserver
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.disk import SimDisk
from repro.util.deprecation import positional_shim


def _physical_store(page_size: int, block_compressor, disk: SimDisk):
    """Build the slotted-page engine variant of the page store."""
    from repro.storage.heapfile import HeapFileStore

    return HeapFileStore(
        page_size=page_size, compressor=block_compressor, disk=disk
    )


def _install_node_collectors(registry: MetricsRegistry, node) -> None:
    """Export a node's storage-layer counters, labeled by node name.

    Collectors close over the *node*, not its current database: a crash
    restart swaps ``node.db`` (and the write-back cache with it) for a
    fresh instance, and the lazy read-through keeps pointing at whichever
    store is live. Counters on replaced components therefore reset on
    restart — exactly what happens to the volatile state they count.
    """
    label = ("node",)
    key = (node.node_name,)

    def export(make, name, help_text, kind="counter"):
        family = getattr(registry, kind)(name, help_text, label)
        family.collect(lambda: {key: float(make())})

    disk = lambda attr: (lambda: getattr(node.db.disk, attr))
    export(disk("reads"), "disk_reads_total", "Simulated disk read requests")
    export(disk("writes"), "disk_writes_total", "Simulated disk write requests")
    export(disk("bytes_read"), "disk_bytes_read_total", "Bytes read from disk")
    export(
        disk("bytes_written"), "disk_bytes_written_total",
        "Bytes written to disk",
    )
    export(
        lambda: node.db.disk.queue_length(), "disk_queue_depth",
        "Outstanding disk requests", kind="gauge",
    )

    wb = lambda attr: (lambda: getattr(node.db.writeback_cache, attr))
    export(
        wb("flushed"), "writeback_cache_flushed_total",
        "Write-back entries applied to storage",
    )
    export(
        wb("discarded"), "writeback_cache_discarded_total",
        "Write-back entries dropped by the byte budget",
    )
    export(
        wb("discarded_savings"), "writeback_cache_discarded_savings_bytes_total",
        "Storage savings lost with discarded write-backs",
    )
    export(
        wb("invalidated"), "writeback_cache_invalidated_total",
        "Write-back entries superseded by client writes or newer deltas",
    )
    export(
        wb("used_bytes"), "writeback_cache_used_bytes",
        "Bytes held by pending write-back entries", kind="gauge",
    )

    db = lambda attr: (lambda: getattr(node.db, attr))
    export(
        db("writebacks_applied"), "db_writebacks_applied_total",
        "Backward/hop deltas written back to storage",
    )
    export(
        db("gc_splices"), "db_gc_splices_total",
        "Deleted records spliced out of decode chains",
    )
    export(
        db("decode_base_fetches"), "db_decode_base_fetches_total",
        "Base records fetched while decoding delta chains",
    )
    export(
        db("io_retries"), "db_io_retries_total",
        "Disk requests retried after transient fault injection",
    )
    export(
        db("io_failures"), "db_io_failures_total",
        "Disk requests abandoned after exhausting retries",
    )
    export(
        db("corrupt_reads_detected"), "db_corrupt_reads_detected_total",
        "Checksum mismatches caught on the read path",
    )
    export(
        db("corrupt_reads_recovered"), "db_corrupt_reads_recovered_total",
        "Corrupt reads healed by re-reading storage",
    )
    export(
        lambda: len(node.db.quarantine), "db_quarantined_records",
        "Records awaiting repair from a healthy replica", kind="gauge",
    )
    export(
        lambda: node.crashes, "node_crashes_total",
        "Simulated process crashes",
    )
    export(
        lambda: node.background_cpu_seconds, "node_background_cpu_seconds_total",
        "Background CPU consumed off the client critical path",
    )

    pool = lambda attr: (
        lambda: getattr(getattr(node.db.pages, "pool", None), attr, 0)
    )
    export(
        pool("hits"), "bufferpool_hits_total",
        "Buffer-pool page requests served from memory",
    )
    export(
        pool("misses"), "bufferpool_misses_total",
        "Buffer-pool page requests that hit the device",
    )
    export(
        pool("evictions"), "bufferpool_evictions_total",
        "Buffer-pool frames evicted to make room",
    )

    # Cumulative storage accounting: written minus reclaimed equals the
    # live logical footprint by construction — the check-metrics identity
    # reclaimed_bytes_total <= stored_bytes_total rides on these.
    export(
        db("stored_bytes_total"), "stored_bytes_total",
        "Bytes ever written into the record store (cumulative)",
    )
    export(
        db("reclaimed_bytes_total"), "reclaimed_bytes_total",
        "Bytes reclaimed from the record store by deletes, updates and GC",
    )

    # GC families read through node.gc lazily: restart swaps the
    # collector alongside the database it serves (secondaries have none,
    # so the getattr guard reads 0 there).
    gc = lambda attr: (lambda: getattr(getattr(node, "gc", None), attr, 0))
    export(
        gc("reclaimed_bytes"), "gc_reclaimed_bytes_total",
        "Stored bytes reclaimed by applied GC batches",
    )
    export(
        gc("reroots_applied"), "gc_reroots_total",
        "Delta chains re-rooted past a dead base",
    )
    export(
        gc("promotions"), "gc_promotions_total",
        "Dependents promoted to RAW while re-rooting",
    )
    export(
        gc("tombstones_removed"), "gc_tombstones_removed_total",
        "Tombstoned records physically removed by GC",
    )
    export(
        gc("pages_freed"), "gc_pages_freed_total",
        "Pages freed by GC-driven compaction",
    )
    export(
        gc("compaction_bytes_moved"), "gc_compaction_bytes_moved_total",
        "Live bytes migrated while compacting pages",
    )
    export(
        gc("cpu_seconds"), "gc_cpu_seconds_total",
        "Background CPU spent planning and applying GC batches",
    )

    batches_family = registry.counter(
        "gc_batches_total", "GC batches by outcome", ("node", "outcome")
    )

    def _gc_batches() -> dict[tuple[str, str], float]:
        collector = getattr(node, "gc", None)
        if collector is None:
            return {}
        return {
            (node.node_name, outcome): float(count)
            for outcome, count in collector.batches.items()
        }

    batches_family.collect(_gc_batches)


class PrimaryNode:
    """Write-serving node with the dbDedup encoder attached."""

    @positional_shim(
        (
            "clock", "costs", "config", "dedup_enabled", "block_compressor",
            "inline_block_compression", "use_writeback_cache", "page_size",
            "physical_storage", "registry", "tracer", "node_name",
        ),
        "PrimaryNode",
        "positional PrimaryNode(...) arguments are deprecated; pass them "
        "by keyword (clusters are best built via repro.api.open_cluster)",
    )
    def __init__(
        self,
        *,
        clock: SimClock,
        costs: CostModel | None = None,
        config: DedupConfig | None = None,
        dedup_enabled: bool = True,
        block_compressor: BlockCompressor | None = None,
        inline_block_compression: bool = False,
        use_writeback_cache: bool = True,
        page_size: int = 32 * 1024,
        physical_storage: bool = False,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        node_name: str = "primary",
    ) -> None:
        self.clock = clock
        self.costs = costs if costs is not None else CostModel()
        self.config = config if config is not None else DedupConfig()
        self.dedup_enabled = dedup_enabled
        self.inline_block_compression = inline_block_compression
        self.use_writeback_cache = use_writeback_cache
        self._block_compressor = block_compressor
        self._page_size = page_size
        self._physical_storage = physical_storage
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.node_name = node_name
        self.engine = self._build_engine() if dedup_enabled else None
        self.db = self._build_database()
        self.gc = GarbageCollector(self.db, self.costs)
        self.oplog = Oplog()
        self.background_cpu_seconds = 0.0
        self.crashes = 0
        self._crashed = False
        #: Record ids still awaiting feature-index registration after a
        #: promotion — the deferred (out-of-line) rebuild drained by
        #: :meth:`drain_index_backlog`.
        self._index_backlog: list[str] = []
        if self.registry is not None:
            _install_node_collectors(self.registry, self)

    @classmethod
    def from_secondary(
        cls, secondary: "SecondaryNode", *, use_writeback_cache: bool = True
    ) -> "PrimaryNode":
        """Promote a caught-up secondary: adopt its store and local oplog.

        The promoted node keeps the secondary's record store (every
        replicated byte) and its local oplog (the write-ahead history new
        secondaries resync from) — nothing is copied or replayed. What a
        secondary does *not* have is the primary-side dedup machinery:
        the feature index, chain bookkeeping and source cache. Rebuilding
        those inline would stall the first post-failover writes for the
        whole corpus, so the rebuild is deferred — record ids queue on an
        index backlog consumed incrementally (a slice per insert, more
        when idle) by :meth:`drain_index_backlog`. Until a record is
        re-indexed, new writes simply miss dedup opportunities against it
        — costing compression, never correctness.
        """
        node = cls(
            clock=secondary.clock,
            costs=secondary.costs,
            config=secondary.config,
            dedup_enabled=secondary.dedup_enabled,
            block_compressor=secondary._block_compressor,
            inline_block_compression=secondary._block_compressor is not None,
            use_writeback_cache=use_writeback_cache,
            page_size=secondary._page_size,
            physical_storage=secondary._physical_storage,
            registry=secondary.registry,
            tracer=secondary.tracer,
            node_name=secondary.node_name,
        )
        node.db = secondary.db
        node.db.node_role = "primary"
        node.gc = GarbageCollector(node.db, node.costs)
        if node.engine is not None:
            # The store's decode cache becomes the engine's source cache
            # (same invalidation contract the constructor wires).
            node.db.record_cache = node.engine.source_cache
        node.oplog = secondary.oplog
        node.crashes = secondary.crashes
        node.background_cpu_seconds = secondary.background_cpu_seconds
        if node.engine is not None:
            order: list[str] = []
            seen: set[str] = set()
            for entry in node.oplog.entries():
                if entry.op == "insert" and entry.record_id not in seen:
                    seen.add(entry.record_id)
                    order.append(entry.record_id)
            node._index_backlog = sorted(set(node.db.records) - seen) + order
            # The audit trail's queryable entries are volatile engine
            # state; rebuild them from the adopted oplog (counters stay
            # untouched — the shared registry already holds them).
            node.engine.audit.rebuild_from_oplog(
                node.oplog.entries(), node.db.records
            )
        return node

    @property
    def is_available(self) -> bool:
        """False while the simulated process is down."""
        return not self._crashed

    def _require_available(self) -> None:
        if self._crashed:
            raise NodeUnavailableError(self.node_name, "primary")

    @property
    def index_backlog_len(self) -> int:
        """Records still awaiting deferred post-promotion indexing."""
        return len(self._index_backlog)

    def drain_index_backlog(self, max_records: int | None = None) -> int:
        """Consume part of the deferred post-promotion index rebuild.

        Re-indexes up to ``max_records`` backlog records (all of them
        when None) through the engine's restart-path rebuild, charging
        the sketching CPU as background work. Returns records indexed.
        """
        if self.engine is None or not self._index_backlog:
            return 0
        if max_records is None:
            max_records = len(self._index_backlog)
        chunk = self._index_backlog[:max_records]
        self._index_backlog = self._index_backlog[max_records:]
        charged = sum(
            len(self.db.records[record_id].payload)
            for record_id in chunk
            if record_id in self.db.records
        )
        self.background_cpu_seconds += charged * self.costs.cpu_chunk_byte_s
        # Tiered rebuilds can spill while repopulating; that maintenance
        # CPU accumulates on the engine and is background work here too.
        before = self.engine.index_maintenance_cpu_seconds
        indexed = self.engine.rebuild_from(self.db, order=chunk)
        self.background_cpu_seconds += (
            self.engine.index_maintenance_cpu_seconds - before
        )
        return indexed

    def _build_engine(self) -> DedupEngine:
        """A dedup engine sharing the node's registry and tracer."""
        return DedupEngine(
            config=self.config,
            costs=self.costs,
            observers=(TracingObserver(self.tracer),),
            registry=self.registry,
        )

    def _build_database(self, disk: SimDisk | None = None) -> Database:
        """Wire a fresh record store (initial boot and post-crash restart)."""
        disk = disk if disk is not None else SimDisk(self.clock, self.costs)
        disk.tracer = self.tracer
        return Database(
            clock=self.clock,
            disk=disk,
            page_size=self._page_size,
            block_compressor=self._block_compressor,
            writeback_capacity=self.config.writeback_cache_bytes,
            record_cache=self.engine.source_cache if self.engine else None,
            idle_queue_threshold=self.config.idle_queue_threshold,
            page_store=_physical_store(
                self._page_size, self._block_compressor, disk
            )
            if self._physical_storage
            else None,
            node_role="primary",
        )

    # -- crash/recovery (§4.4) ------------------------------------------------

    def crash(self) -> None:
        """Simulated process crash: volatile state (record store, engine
        index, write-back cache) is lost; the oplog — the write-ahead
        record of every accepted operation — survives on durable storage.
        Call :meth:`restart` to recover."""
        self.crashes += 1
        self._crashed = True

    def restart(self, snapshot_path=None):
        """Recover from a crash by replaying the oplog.

        Rebuilds the record store by replaying every retained oplog entry
        (optionally seeded from a checkpoint snapshot when earlier history
        was truncated) — everything lands raw and re-compresses over time,
        losing nothing but transient disk space. The dedup engine is then
        rebuilt and its feature index repopulated from the recovered
        records in original insert order, so the restarted node finds
        similar records exactly as the pre-crash node would have.

        Returns the :class:`~repro.db.recovery.ReplayReport`.

        Raises:
            ValueError: when the oplog was truncated at a checkpoint and
                no snapshot is given — the lost history is unrecoverable
                from the log alone.
        """
        from repro.db.recovery import replay_oplog

        if self.oplog.truncated_before > 0 and snapshot_path is None:
            raise ValueError(
                "oplog history was truncated at a checkpoint; restart "
                "needs the checkpoint snapshot"
            )
        fault_injector = self.db.fault_injector
        disk = self.db.disk  # the device outlives the process
        if self.dedup_enabled:
            # A shared registry sees the rebuilt engine's collectors
            # shadow the dead engine's — restarted state reads fresh.
            self.engine = self._build_engine()
        db = self._build_database(disk)
        db.fault_injector = fault_injector
        if snapshot_path is not None:
            from repro.db.snapshot import load_snapshot

            load_snapshot(snapshot_path, into=db)
        _, report = replay_oplog(self.oplog.entries(), into=db)
        self.db = db
        self.gc = GarbageCollector(db, self.costs)
        if self.engine is not None:
            order: list[str] = []
            seen: set[str] = set()
            for entry in self.oplog.entries():
                if entry.op == "insert" and entry.record_id not in seen:
                    seen.add(entry.record_id)
                    order.append(entry.record_id)
            order = sorted(set(db.records) - seen) + order
            before = self.engine.index_maintenance_cpu_seconds
            self.engine.rebuild_from(db, order=order)
            self.background_cpu_seconds += (
                self.engine.index_maintenance_cpu_seconds - before
            )
            # Recover the queryable audit entries from the WAL; the
            # registry-backed audit counters survived the crash on the
            # shared registry and must not be re-incremented.
            self.engine.audit.rebuild_from_oplog(
                self.oplog.entries(), db.records
            )
        self._crashed = False
        return report

    # -- client operations (return the latency the client observes) ----------

    #: Backlog records re-indexed per client insert after a promotion —
    #: the deferred rebuild rides along on foreground traffic without
    #: stalling it (plus larger slices whenever the node goes idle).
    INDEX_REBUILD_SLICE = 8

    def insert(self, database: str, record_id: str, content: bytes) -> float:
        """Insert a record; dedup encode happens off the critical path."""
        self._require_available()
        self.drain_index_backlog(self.INDEX_REBUILD_SLICE)
        latency = self.costs.request_overhead_s
        if self.inline_block_compression:
            # Inline page compression (the Snappy configuration) costs CPU
            # on the write path, unlike dbDedup's background encode.
            latency += len(content) * self.costs.cpu_compress_byte_s
        latency += self.db.insert(database, record_id, content)

        if self.engine is None:
            self.oplog.append(
                self.clock.now, "insert", database, record_id, payload=content
            )
            return latency

        result = self.engine.encode(database, record_id, content, provider=self.db)
        self._absorb_drained(result)
        self.background_cpu_seconds += result.cpu_seconds
        if result.deduped:
            self.oplog.append(
                self.clock.now,
                "insert",
                database,
                record_id,
                payload=result.forward_payload,
                base_id=result.source_id,
                encoded=True,
            )
            self._apply_writebacks(result)
        else:
            # Deferred records also land here: raw in storage, raw in the
            # oplog (the WAL must cover the record *now*; out-of-line
            # dedup later changes only the stored form, never the log).
            self.oplog.append(
                self.clock.now, "insert", database, record_id, payload=content
            )
        self.db.flush_writebacks_if_idle(max_flushes=4)
        return latency

    def insert_batch(
        self, items: list[tuple[str, str, bytes]]
    ) -> float:
        """Insert a batch of records in one client request.

        ``items`` is ``(database, record_id, content)`` triples in insert
        order. Storage admission is batched (one request overhead for the
        whole batch) and the dedup encoder runs
        :meth:`~repro.core.engine.DedupEngine.encode_batch`, amortizing
        the vectorized sketch pass; oplog entries, write-back scheduling,
        and chain bookkeeping are identical to the per-record path and in
        the same order, so replicas replay the stream unchanged.
        """
        self._require_available()
        self.drain_index_backlog(self.INDEX_REBUILD_SLICE)
        latency = self.costs.request_overhead_s
        if self.inline_block_compression:
            total_bytes = sum(len(content) for _, _, content in items)
            latency += total_bytes * self.costs.cpu_compress_byte_s
        latency += self.db.insert_many(items)

        if self.engine is None:
            for database, record_id, content in items:
                self.oplog.append(
                    self.clock.now, "insert", database, record_id,
                    payload=content,
                )
            return latency

        results = self.engine.encode_batch(items, provider=self.db)
        for (database, record_id, content), result in zip(items, results):
            self._absorb_drained(result)
            self.background_cpu_seconds += result.cpu_seconds
            if result.deduped:
                self.oplog.append(
                    self.clock.now,
                    "insert",
                    database,
                    record_id,
                    payload=result.forward_payload,
                    base_id=result.source_id,
                    encoded=True,
                )
                self._apply_writebacks(result)
            else:
                self.oplog.append(
                    self.clock.now, "insert", database, record_id,
                    payload=content,
                )
        self.db.flush_writebacks_if_idle(max_flushes=4 * len(items))
        return latency

    def _apply_writebacks(self, result) -> None:
        """Schedule (or, in the ablation, immediately apply) write-backs."""
        if self.use_writeback_cache:
            self.db.schedule_writebacks(result.writebacks)
        else:
            # Ablation for Fig. 13b: write deltas back immediately; the
            # extra queued writes delay subsequent foreground requests.
            for entry in result.writebacks:
                self.db.apply_writeback(entry)

    def _absorb_drained(self, result) -> None:
        """Process deferred-drain results riding along on an encode.

        Drained records were stored (and oplogged) raw at insert time, so
        only their storage-side effects remain: write-backs and the CPU
        they burned. No oplog entries — replicas already have the bytes.
        """
        for drained in result.drained:
            self.background_cpu_seconds += drained.cpu_seconds
            if drained.deduped:
                self._apply_writebacks(drained)

    def read(self, database: str, record_id: str) -> tuple[bytes | None, float]:
        """Client read, decoding if the record is delta-encoded."""
        self._require_available()
        content, disk_latency = self.db.read(database, record_id)
        return content, self.costs.request_overhead_s + disk_latency

    def update(self, database: str, record_id: str, content: bytes) -> float:
        """Replace a record's content."""
        self._require_available()
        latency = self.costs.request_overhead_s + self.db.update(record_id, content)
        if self.engine is not None:
            # A queued deferred copy holds the pre-update bytes; dedup-
            # processing them now would index stale content.
            self.engine.invalidate_deferred(record_id)
        self.oplog.append(
            self.clock.now, "update", database, record_id, payload=content
        )
        return latency

    def delete(self, database: str, record_id: str) -> float:
        """Delete a record."""
        self._require_available()
        latency = self.costs.request_overhead_s + self.db.delete(record_id)
        if self.engine is not None:
            # Per-record engine bookkeeping (insertion sequence) must not
            # outlive the record, or it leaks one entry per deletion.
            self.engine.forget_record(database, record_id)
            self.engine.invalidate_deferred(record_id)
        self.oplog.append(self.clock.now, "delete", database, record_id)
        return latency

    #: Deferred records dedup-processed per idle tick — bounded so one
    #: tick never monopolizes the simulated idle window.
    DEFERRED_DRAIN_SLICE = 32

    def on_idle(self) -> int:
        """Drain background work while the client is quiet (Fig. 13b)."""
        if self._crashed:
            return 0
        self.drain_index_backlog(8 * self.INDEX_REBUILD_SLICE)
        drained = self.drain_deferred_dedup(
            max_records=self.DEFERRED_DRAIN_SLICE
        )
        collected = self.maybe_collect_garbage()
        return self.db.flush_writebacks_if_idle() + drained + collected

    def maybe_collect_garbage(self) -> int:
        """Run one GC batch when idle and worth the trip (§3.3.2 gating).

        Three gates, all cheap: the config opt-in (``gc_enabled``), the
        idleness signal (disk queue at or below ``idle_queue_threshold``
        — the same signal the write-back flusher uses), and a
        reclaimable-bytes floor (``gc_reclaim_threshold_bytes``) so idle
        slices do not burn planning CPU on a clean store. Returns the
        units of GC work done (re-roots + tombstones + pages freed).
        """
        if (
            not self.config.gc_enabled
            or self._crashed
            or not self.db.disk.is_idle(self.config.idle_queue_threshold)
        ):
            return 0
        plan = self.gc.plan()
        if plan.estimated_reclaim_bytes < self.config.gc_reclaim_threshold_bytes:
            return 0
        report = self.gc.run(
            plan=plan, max_records=self.config.gc_max_batch_records
        )
        self.background_cpu_seconds += report.cpu_seconds
        return (
            report.reroots_applied
            + report.tombstones_removed
            + report.pages_freed
        )

    def collect_garbage(self, *, dry_run: bool = False, max_records=None):
        """Run (or just plan) a GC batch on demand, ignoring idleness.

        With ``dry_run`` returns the :class:`~repro.core.gc.GcPlan`
        without touching the store; otherwise runs the rollback-safe
        batch and returns its :class:`~repro.core.gc.GcReport`.
        """
        self._require_available()
        plan = self.gc.plan()
        if dry_run:
            return plan
        report = self.gc.run(
            plan=plan,
            max_records=(
                max_records
                if max_records is not None
                else self.config.gc_max_batch_records
            ),
        )
        self.background_cpu_seconds += report.cpu_seconds
        return report

    def drain_deferred_dedup(
        self, max_records: int | None = None, force: bool = False
    ) -> int:
        """Run out-of-line dedup passes over queued deferred records.

        Gated on §3.3.2's idleness signal (disk queue at or below
        ``idle_queue_threshold``) unless ``force`` is set — the finalize
        path forces a full drain so a run's storage state converges with
        the all-inline equivalent. Returns the records processed.
        """
        if self.engine is None or self._crashed:
            return 0
        if not force and not self.db.disk.is_idle(
            self.config.idle_queue_threshold
        ):
            return 0
        results = self.engine.drain_deferred(
            self.db, max_records=max_records
        )
        for result in results:
            self.background_cpu_seconds += result.cpu_seconds
            if result.deduped:
                self._apply_writebacks(result)
        return len(results)

    @property
    def deferred_queue_len(self) -> int:
        """Records awaiting an out-of-line dedup pass (0 without dedup)."""
        if self.engine is None:
            return 0
        return self.engine.pending_deferred()

    def checkpoint(self, path, replica_cursors: list[int] | None = None) -> int:
        """Durability checkpoint: snapshot the store, truncate the oplog.

        Writes a snapshot file and discards oplog entries every consumer
        has seen — the minimum of the per-replica cursors (if given) and
        the built-in sync cursor. Recovery is then snapshot + replay of
        the retained tail. Returns the number of oplog entries discarded.
        """
        from repro.db.snapshot import save_snapshot

        save_snapshot(self.db, path)
        if replica_cursors:
            safe = min(replica_cursors)
        else:
            safe = self.oplog.synced_seq
        return self.oplog.truncate_before(safe)

    def compact_storage(self, max_records: int | None = None):
        """Run a background compaction pass (extension, see
        :mod:`repro.core.maintenance`): re-encode orphaned raw records
        against the best similar record the index still knows.

        Returns the :class:`~repro.core.maintenance.CompactionReport`, or
        None when dedup is disabled on this node.
        """
        if self.engine is None:
            return None
        from repro.core.maintenance import BackgroundCompactor

        report = BackgroundCompactor(self.engine, self.db).compact(max_records)
        self.db.flush_writebacks_if_idle()
        return report


class SecondaryNode:
    """Replica that replays oplog batches through the re-encoder."""

    @positional_shim(
        (
            "clock", "costs", "config", "dedup_enabled", "block_compressor",
            "page_size", "physical_storage", "registry", "tracer", "node_name",
        ),
        "SecondaryNode",
        "positional SecondaryNode(...) arguments are deprecated; pass "
        "them by keyword (clusters are best built via repro.api.open_cluster)",
    )
    def __init__(
        self,
        *,
        clock: SimClock,
        costs: CostModel | None = None,
        config: DedupConfig | None = None,
        dedup_enabled: bool = True,
        block_compressor: BlockCompressor | None = None,
        page_size: int = 32 * 1024,
        physical_storage: bool = False,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        node_name: str = "secondary",
    ) -> None:
        self.clock = clock
        self.costs = costs if costs is not None else CostModel()
        self.config = config if config is not None else DedupConfig()
        self.dedup_enabled = dedup_enabled
        self._block_compressor = block_compressor
        self._page_size = page_size
        self._physical_storage = physical_storage
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.node_name = node_name
        self.reencoder = (
            SecondaryReencoder(self.config, self.costs) if dedup_enabled else None
        )
        self.db = self._build_database()
        self.oplog = Oplog()
        self.background_cpu_seconds = 0.0
        self.decode_fallbacks = 0
        self.crashes = 0
        self._crashed = False
        if self.registry is not None:
            _install_node_collectors(self.registry, self)
            self.registry.counter(
                "secondary_decode_fallbacks_total",
                "Encoded entries applied raw because the base was missing",
                ("node",),
            ).collect(lambda: {(self.node_name,): float(self.decode_fallbacks)})

    @classmethod
    def from_demoted_primary(cls, node: PrimaryNode) -> "SecondaryNode":
        """Rebuild a rolled-back old primary as a secondary replica.

        Called by the failover manager after the rejoining node's oplog
        suffix was truncated at the divergence point: the retained log is
        replayed into a fresh store on the node's surviving disk, and the
        node re-enters the replica set with a clean re-encoder (existing
        chains stay as stored; future encoded entries start new ones).

        Raises:
            ValueError: when the node's oplog history was truncated at a
                checkpoint — same contract as :meth:`PrimaryNode.restart`;
                the rejoin then needs the checkpoint snapshot.
        """
        if node.oplog.truncated_before > 0:
            raise ValueError(
                "oplog history was truncated at a checkpoint; rejoin "
                "needs the checkpoint snapshot"
            )
        secondary = cls(
            clock=node.clock,
            costs=node.costs,
            config=node.config,
            dedup_enabled=node.dedup_enabled,
            block_compressor=node._block_compressor,
            page_size=node._page_size,
            physical_storage=node._physical_storage,
            registry=node.registry,
            tracer=node.tracer,
            node_name=node.node_name,
        )
        secondary.oplog = node.oplog
        secondary.crashes = node.crashes
        secondary.background_cpu_seconds = node.background_cpu_seconds
        secondary._adopt_disk(node.db)
        return secondary

    @property
    def is_available(self) -> bool:
        """False while the simulated process is down."""
        return not self._crashed

    def _adopt_disk(self, old_db: Database) -> None:
        """Replay the local oplog into a fresh store on an existing disk.

        Shared by the rejoin path and the divergence rollback: the log
        (already truncated to the agreed prefix) is the ground truth, so
        replaying it yields exactly the retained client-visible state.
        Fault-plan hooks carry over to the rebuilt store.
        """
        from repro.db.recovery import replay_oplog

        fault_injector = old_db.fault_injector
        disk = old_db.disk
        db = self._build_database(disk)
        db.fault_injector = fault_injector
        if fault_injector is not None and hasattr(
            fault_injector, "_disk_interceptor"
        ):
            disk.interceptor = fault_injector._disk_interceptor(db)
        replay_oplog(self.oplog.entries(), into=db)
        self.db = db

    def rollback_to(self, seq: int) -> list[OplogEntry]:
        """Divergence rollback: drop local history from ``seq`` onward.

        Truncates the local oplog's suffix and rebuilds the store by
        replaying the retained prefix. Returns the dropped entries (the
        writes this replica is giving up); empty when already aligned.
        """
        dropped = self.oplog.truncate_from(seq)
        if not dropped:
            return dropped
        if self.dedup_enabled:
            self.reencoder = SecondaryReencoder(self.config, self.costs)
        self._adopt_disk(self.db)
        return dropped

    def _build_database(self, disk: SimDisk | None = None) -> Database:
        """Wire a fresh record store (initial boot and post-crash restart)."""
        disk = disk if disk is not None else SimDisk(self.clock, self.costs)
        disk.tracer = self.tracer
        return Database(
            clock=self.clock,
            disk=disk,
            page_size=self._page_size,
            block_compressor=self._block_compressor,
            writeback_capacity=self.config.writeback_cache_bytes,
            record_cache=(
                self.reencoder.planner.source_cache if self.reencoder else None
            ),
            idle_queue_threshold=self.config.idle_queue_threshold,
            page_store=_physical_store(
                self._page_size, self._block_compressor, disk
            )
            if self._physical_storage
            else None,
            node_role="secondary",
        )

    # -- crash/recovery (§4.4) ------------------------------------------------

    def crash(self) -> None:
        """Simulated process crash; the replica's own oplog survives."""
        self.crashes += 1
        self._crashed = True

    def restart(self):
        """Recover by replaying the replica's local oplog.

        The secondary appends every shipped entry to its own log before
        applying it, so replaying that log (forward deltas decode against
        already-replayed bases, the same path the live replica uses)
        reconverges it to the pre-crash client-visible state. A fresh
        re-encoder starts with empty chain bookkeeping: subsequent
        encoded entries simply start new chains, which changes storage
        forms but never contents.

        Returns the :class:`~repro.db.recovery.ReplayReport`.
        """
        from repro.db.recovery import replay_oplog

        fault_injector = self.db.fault_injector
        disk = self.db.disk
        if self.dedup_enabled:
            self.reencoder = SecondaryReencoder(self.config, self.costs)
        db = self._build_database(disk)
        db.fault_injector = fault_injector
        _, report = replay_oplog(self.oplog.entries(), into=db)
        self.db = db
        self._crashed = False
        return report

    def apply_batch(self, entries: list[OplogEntry], primary: PrimaryNode) -> None:
        """Replay one replication batch (§4.1 secondary-side flow)."""
        for entry in entries:
            if entry.op == "insert":
                self._apply_insert(entry, primary)
                continue
            self.oplog.append(
                entry.timestamp,
                entry.op,
                entry.database,
                entry.record_id,
                payload=entry.payload,
                base_id=entry.base_id,
                encoded=entry.encoded,
            )
            if entry.op == "update":
                self.db.update(entry.record_id, entry.payload)
            elif entry.op == "delete":
                self.db.delete(entry.record_id)
        self.db.flush_writebacks_if_idle()

    def _apply_insert(self, entry: OplogEntry, primary: PrimaryNode) -> None:
        # The local oplog records each insert *as applied* (encoded only
        # when the forward delta actually decoded here), so a post-crash
        # replay of the local log never depends on a base this replica
        # never had.
        if not entry.encoded or self.reencoder is None:
            self.oplog.append(
                entry.timestamp, "insert", entry.database, entry.record_id,
                payload=entry.payload,
            )
            self.db.insert(entry.database, entry.record_id, entry.payload)
            if self.reencoder is not None:
                self.reencoder.apply_raw(entry.record_id, entry.payload)
            return
        outcome = self.reencoder.apply_encoded(
            entry.record_id, entry.base_id, entry.payload, provider=self.db
        )
        if outcome is None:
            # §4.1 footnote 4: base missing locally — ask the primary for
            # the raw record instead of decoding.
            self.decode_fallbacks += 1
            content, _ = primary.db.read(entry.database, entry.record_id)
            if content is None:
                return
            self.oplog.append(
                entry.timestamp, "insert", entry.database, entry.record_id,
                payload=content,
            )
            self.db.insert(entry.database, entry.record_id, content)
            return
        self.oplog.append(
            entry.timestamp, "insert", entry.database, entry.record_id,
            payload=entry.payload, base_id=entry.base_id, encoded=True,
        )
        self.background_cpu_seconds += outcome.cpu_seconds
        # Re-encode CPU lands on the open replica_apply span (if any).
        self.tracer.add_cost("cpu_s", outcome.cpu_seconds)
        self.db.insert(entry.database, entry.record_id, outcome.content)
        self.db.schedule_writebacks(outcome.writebacks)
