"""Crash recovery: rebuild node state by replaying the oplog.

The oplog is the write-ahead record of everything a node accepted; a node
that lost its data files (or a fresh replica seeded from a peer's log)
reconstructs its database by replaying entries in sequence. Forward-encoded
insert entries decode against the already-replayed base record — the same
path the live secondary uses — so a replayed node converges to the same
client-visible contents as the original.

Replay intentionally does *not* reproduce the storage-side encodings: a
recovering node stores everything raw and lets the background write-back
machinery re-compress over time, which is simpler and loses nothing but
transient disk space. ``tests/db/test_recovery.py`` pins both properties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.db.errors import RecordExists, RecordNotFound
from repro.db.oplog import OplogEntry
from repro.delta.decode import apply_delta
from repro.delta.instructions import deserialize


@dataclass
class ReplayReport:
    """What a replay did — and what it could not do."""

    applied: int = 0
    skipped: int = 0
    decode_failures: int = 0


def replay_oplog(entries: list[OplogEntry], into: Database | None = None
                 ) -> tuple[Database, ReplayReport]:
    """Rebuild a database from oplog entries (oldest first).

    Returns the database and a report. Entries that cannot apply (e.g. a
    delete of a record an earlier truncation removed) are counted, not
    fatal — recovery should salvage everything salvageable.
    """
    db = into if into is not None else Database()
    report = ReplayReport()
    contents: dict[str, bytes] = {}

    for entry in entries:
        if entry.op == "insert":
            if entry.encoded:
                base = contents.get(entry.base_id)
                if base is None:
                    base = db.fetch_content(entry.base_id)
                if base is None:
                    report.decode_failures += 1
                    continue
                try:
                    content = apply_delta(base, deserialize(entry.payload))
                except (ValueError, TypeError):
                    report.decode_failures += 1
                    continue
            else:
                content = entry.payload
            try:
                db.insert(entry.database, entry.record_id, content)
            except RecordExists:
                report.skipped += 1
                continue
            contents[entry.record_id] = content
            report.applied += 1
        elif entry.op == "update":
            try:
                db.update(entry.record_id, entry.payload)
            except RecordNotFound:
                report.skipped += 1
                continue
            contents[entry.record_id] = entry.payload
            report.applied += 1
        elif entry.op == "delete":
            try:
                db.delete(entry.record_id)
            except RecordNotFound:
                report.skipped += 1
                continue
            contents.pop(entry.record_id, None)
            report.applied += 1
        else:
            report.skipped += 1
    return db, report
