"""Durable snapshots of a node's record store.

A downstream user of the library needs to persist state between runs; the
paper's MongoDB host has its own durability, so this module is the
reproduction's stand-in: a compact binary snapshot of every stored record
— including delta-encoded forms, base pointers, reference counts,
tombstones and pending updates — that restores to a byte-identical
:class:`~repro.db.database.Database`.

Format (little-endian, varint-framed)::

    magic "DBDD" | version u8 | record count varint | records...

    record := varint(len) record_id
            | varint(len) database
            | u8 flags        (bit0: DELTA, bit1: deleted, bit2: has base)
            | varint raw_size | varint ref_count
            | [varint(len) base_id]          if has base
            | varint(len) payload
            | varint n_pending , n x (varint(len) bytes)
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.db.database import Database
from repro.db.record import RecordForm, StoredRecord
from repro.util.varint import decode_uvarint, encode_uvarint

MAGIC = b"DBDD"
VERSION = 1


def _write_bytes(out: io.BytesIO, data: bytes) -> None:
    out.write(encode_uvarint(len(data)))
    out.write(data)


def _read_bytes(buf: bytes, pos: int) -> tuple[bytes, int]:
    length, pos = decode_uvarint(buf, pos)
    if pos + length > len(buf):
        raise ValueError("truncated snapshot field")
    return buf[pos : pos + length], pos + length


def dump_database(db: Database) -> bytes:
    """Serialize every record of ``db`` into a snapshot blob."""
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(bytes([VERSION]))
    out.write(encode_uvarint(len(db.records)))
    for record in db.records.values():
        _write_bytes(out, record.record_id.encode())
        _write_bytes(out, record.database.encode())
        flags = 0
        if record.form is RecordForm.DELTA:
            flags |= 0x01
        if record.deleted:
            flags |= 0x02
        if record.base_id is not None:
            flags |= 0x04
        out.write(bytes([flags]))
        out.write(encode_uvarint(record.raw_size))
        out.write(encode_uvarint(record.ref_count))
        if record.base_id is not None:
            _write_bytes(out, record.base_id.encode())
        _write_bytes(out, record.payload)
        out.write(encode_uvarint(len(record.pending_updates)))
        for update in record.pending_updates:
            _write_bytes(out, update)
    return out.getvalue()


def load_database(blob: bytes, into: Database | None = None) -> Database:
    """Restore a snapshot blob into a (new or provided) database.

    Raises:
        ValueError: on bad magic, unsupported version, or truncation.
    """
    if blob[:4] != MAGIC:
        raise ValueError("not a dbDedup snapshot (bad magic)")
    if blob[4] != VERSION:
        raise ValueError(f"unsupported snapshot version {blob[4]}")
    db = into if into is not None else Database()
    if db.records:
        raise ValueError("refusing to load a snapshot into a non-empty database")

    count, pos = decode_uvarint(blob, 5)
    for _ in range(count):
        record_id_raw, pos = _read_bytes(blob, pos)
        database_raw, pos = _read_bytes(blob, pos)
        flags = blob[pos]
        pos += 1
        raw_size, pos = decode_uvarint(blob, pos)
        ref_count, pos = decode_uvarint(blob, pos)
        base_id = None
        if flags & 0x04:
            base_raw, pos = _read_bytes(blob, pos)
            base_id = base_raw.decode()
        payload, pos = _read_bytes(blob, pos)
        n_pending, pos = decode_uvarint(blob, pos)
        pending = []
        for _ in range(n_pending):
            update, pos = _read_bytes(blob, pos)
            pending.append(update)
        record = StoredRecord(
            record_id=record_id_raw.decode(),
            database=database_raw.decode(),
            form=RecordForm.DELTA if flags & 0x01 else RecordForm.RAW,
            payload=payload,
            base_id=base_id,
            raw_size=raw_size,
            ref_count=ref_count,
            deleted=bool(flags & 0x02),
            pending_updates=pending,
        )
        db.records[record.record_id] = record
        db.pages.place(record.record_id, db._disk_image(record))
        db._note_checksum(record)
    if pos != len(blob):
        raise ValueError("trailing bytes after snapshot records")
    return db


def save_snapshot(db: Database, path: str | Path) -> int:
    """Write a snapshot file; returns its size in bytes."""
    blob = dump_database(db)
    Path(path).write_bytes(blob)
    return len(blob)


def load_snapshot(path: str | Path, into: Database | None = None) -> Database:
    """Read a snapshot file back into a database."""
    return load_database(Path(path).read_bytes(), into=into)
