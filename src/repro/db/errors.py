"""Database error types."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for database-layer errors."""


class RecordNotFound(DatabaseError):
    """Operation referenced a record id that does not exist."""

    def __init__(self, record_id: str) -> None:
        super().__init__(f"record {record_id!r} not found")
        self.record_id = record_id


class RecordExists(DatabaseError):
    """Insert attempted with an id that is already live."""

    def __init__(self, record_id: str) -> None:
        super().__init__(f"record {record_id!r} already exists")
        self.record_id = record_id


class CorruptChain(DatabaseError):
    """A decode walk failed: dangling base pointer or cycle."""
