"""Database error types."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for database-layer errors."""


class RecordNotFound(DatabaseError):
    """Operation referenced a record id that does not exist."""

    def __init__(self, record_id: str) -> None:
        super().__init__(f"record {record_id!r} not found")
        self.record_id = record_id


class RecordExists(DatabaseError):
    """Insert attempted with an id that is already live."""

    def __init__(self, record_id: str) -> None:
        super().__init__(f"record {record_id!r} already exists")
        self.record_id = record_id


class CorruptChain(DatabaseError):
    """A decode walk failed: dangling base pointer or cycle."""


class CorruptPage(DatabaseError):
    """A record's stored bytes failed checksum verification.

    Raised when a read detects persistent corruption (the storage copy
    itself no longer matches its checksum). The record is quarantined on
    its database; the repair path restores it from a healthy replica.
    """

    def __init__(self, record_id: str) -> None:
        super().__init__(f"record {record_id!r} failed page checksum")
        self.record_id = record_id
