"""Database error types."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for database-layer errors."""


class RecordNotFound(DatabaseError):
    """Operation referenced a record id that does not exist."""

    def __init__(self, record_id: str) -> None:
        super().__init__(f"record {record_id!r} not found")
        self.record_id = record_id


class RecordExists(DatabaseError):
    """Insert attempted with an id that is already live."""

    def __init__(self, record_id: str) -> None:
        super().__init__(f"record {record_id!r} already exists")
        self.record_id = record_id


class CorruptChain(DatabaseError):
    """A decode walk failed: dangling base pointer or cycle."""


class NodeUnavailableError(DatabaseError):
    """A client operation reached a crashed (or demoted) node.

    Raised by node entry points while the process is down. The condition
    is *retriable*: with failover enabled the cluster promotes a caught-up
    secondary and the retried operation lands on the new primary —
    :class:`~repro.api.client.DedupClient` surfaces it with that hint.

    Attributes:
        node_name: stable name of the unavailable node.
        role: ``"primary"`` or ``"secondary"`` at the time of the call.
        retriable: always True — the caller may retry after failover.
    """

    def __init__(self, node_name: str, role: str = "primary") -> None:
        super().__init__(
            f"{role} node {node_name!r} is unavailable (crashed or "
            "demoted); retry after failover"
        )
        self.node_name = node_name
        self.role = role
        self.retriable = True


class CorruptPage(DatabaseError):
    """A record's stored bytes failed checksum verification.

    Raised when a read detects persistent corruption (the storage copy
    itself no longer matches its checksum). The record is quarantined on
    its database; the repair path restores it from a healthy replica.
    """

    def __init__(self, record_id: str) -> None:
        super().__init__(f"record {record_id!r} failed page checksum")
        self.record_id = record_id
