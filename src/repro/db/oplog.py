"""Operation log: the replication stream (§4.1).

Every write lands in the primary's oplog; entries accumulate until the
unsynchronized tail passes a byte threshold, then ship to the secondary as
one batch. With dbDedup the insert payloads are forward-encoded deltas, so
the oplog is simultaneously where the network savings happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from zlib import crc32

#: Fixed per-entry header charge: seq + timestamp + op + ids.
ENTRY_HEADER_BYTES = 32


@dataclass(frozen=True)
class OplogEntry:
    """One replicated operation.

    Attributes:
        seq: position in the log (assigned by the oplog).
        timestamp: simulated time of the write.
        op: ``'insert'``, ``'update'``, or ``'delete'``.
        database / record_id: target record.
        payload: raw content, new update content, or a forward delta.
        base_id: forward-delta base (None for unencoded payloads).
        encoded: True when ``payload`` is a forward delta.
    """

    seq: int
    timestamp: float
    op: str
    database: str
    record_id: str
    payload: bytes = b""
    base_id: str | None = None
    encoded: bool = False

    @property
    def wire_size(self) -> int:
        """Bytes this entry contributes to a replication batch."""
        return ENTRY_HEADER_BYTES + len(self.payload)

    @property
    def checksum(self) -> int:
        """CRC over the entry's operation content (not its position).

        Two logs agree at a sequence number exactly when the entries'
        checksums match — the divergence test failover's rollback path
        runs when an old primary rejoins. ``seq`` and ``timestamp`` are
        deliberately excluded: position is what is being compared, and a
        replica records the primary's timestamp verbatim anyway.
        """
        header = "|".join(
            (
                self.op,
                self.database,
                self.record_id,
                self.base_id or "",
                "1" if self.encoded else "0",
            )
        ).encode("utf-8")
        return crc32(self.payload, crc32(header))


class Oplog:
    """Append-only operation log with a synchronization cursor."""

    def __init__(self) -> None:
        self._entries: list[OplogEntry] = []
        self._synced_upto = 0  # list index, relative to the retained tail
        self._truncated_before = 0  # absolute seq of the oldest retained
        self._builtin_cursor_used = False
        self.total_bytes = 0
        #: Monotonic count of entries ever appended. Unlike ``next_seq``
        #: it never moves backwards: a failover rollback truncates the
        #: log's suffix (and re-appending assigns the same seqs again),
        #: but this counter keeps the historical total — the metrics
        #: identity ``rollback_entries_total <= oplog_appends_total``
        #: reconciles against it.
        self.appends = 0

    def __len__(self) -> int:
        return len(self._entries)

    def append(
        self,
        timestamp: float,
        op: str,
        database: str,
        record_id: str,
        payload: bytes = b"",
        base_id: str | None = None,
        encoded: bool = False,
    ) -> OplogEntry:
        """Append one operation; returns the sequenced entry."""
        if op not in ("insert", "update", "delete"):
            raise ValueError(f"unknown oplog op {op!r}")
        entry = OplogEntry(
            seq=self._truncated_before + len(self._entries),
            timestamp=timestamp,
            op=op,
            database=database,
            record_id=record_id,
            payload=payload,
            base_id=base_id,
            encoded=encoded,
        )
        self._entries.append(entry)
        self.total_bytes += entry.wire_size
        self.appends += 1
        return entry

    @property
    def unsynced_bytes(self) -> int:
        """Wire bytes of entries not yet shipped to the secondary."""
        return sum(
            entry.wire_size for entry in self._entries[self._synced_upto :]
        )

    def take_unsynced(self) -> list[OplogEntry]:
        """Return the unshipped tail and advance the built-in cursor."""
        self._builtin_cursor_used = True
        batch = self._entries[self._synced_upto :]
        self._synced_upto = len(self._entries)
        return batch

    def entries_since(self, cursor: int) -> list[OplogEntry]:
        """Entries with ``seq >= cursor`` — for per-replica cursors.

        Each replication link keeps its own cursor, so several secondaries
        can consume the same log independently.

        Raises:
            ValueError: for negative cursors or cursors pointing into a
                truncated region (the replica needs a snapshot instead).
        """
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        if cursor < self._truncated_before:
            raise ValueError(
                f"cursor {cursor} points into truncated history "
                f"(log starts at {self._truncated_before}); seed the "
                "replica from a snapshot"
            )
        return self._entries[cursor - self._truncated_before :]

    def bytes_since(self, cursor: int) -> int:
        """Wire bytes pending for a per-replica cursor."""
        return sum(entry.wire_size for entry in self.entries_since(cursor))

    def entries(self) -> list[OplogEntry]:
        """All retained entries (oldest first); a copy safe to iterate."""
        return list(self._entries)

    def entry_at(self, seq: int) -> OplogEntry | None:
        """The retained entry with the given absolute seq (None if absent)."""
        index = seq - self._truncated_before
        if index < 0 or index >= len(self._entries):
            return None
        return self._entries[index]

    @property
    def truncated_before(self) -> int:
        """Sequence number of the oldest retained entry."""
        return self._truncated_before

    @property
    def synced_seq(self) -> int:
        """Absolute seq up to which the built-in cursor has shipped."""
        return self._truncated_before + self._synced_upto

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended entry will get."""
        return self._truncated_before + len(self._entries)

    def truncate_before(self, seq: int) -> int:
        """Discard entries with ``seq`` below the given checkpoint.

        Returns the number of entries discarded. When the built-in
        single-consumer cursor is in use (``take_unsynced``), entries it
        has not shipped are protected; per-link cursors (multi-replica
        fan-out) are coordinated by the caller instead (see
        ``PrimaryNode.checkpoint``).

        Raises:
            ValueError: if ``seq`` would cut protected entries.
        """
        if seq <= self._truncated_before:
            return 0
        limit = (
            self._truncated_before + self._synced_upto
            if self._builtin_cursor_used
            else self.next_seq
        )
        if seq > limit:
            raise ValueError(
                f"cannot truncate to {seq}: entries from {limit} "
                "are not yet consumed"
            )
        drop = seq - self._truncated_before
        dropped = self._entries[:drop]
        self._entries = self._entries[drop:]
        self._synced_upto -= drop
        self._truncated_before = seq
        self.total_bytes -= sum(entry.wire_size for entry in dropped)
        return drop

    def truncate_from(self, seq: int) -> list[OplogEntry]:
        """Drop the suffix with ``seq`` at or above the given position.

        The failover rollback: when an old primary rejoins, entries it
        accepted but never replicated (everything past the divergence
        point with the new primary's log) are removed before the node
        rebuilds itself as a secondary. Returns the dropped entries,
        newest history the node is giving up, for rollback accounting.

        Raises:
            ValueError: when ``seq`` falls inside the truncated prefix —
                rolling back into checkpointed history is impossible
                from the log alone.
        """
        if seq < self._truncated_before:
            raise ValueError(
                f"cannot roll back to {seq}: history before "
                f"{self._truncated_before} was truncated at a checkpoint"
            )
        keep = seq - self._truncated_before
        if keep >= len(self._entries):
            return []
        dropped = self._entries[keep:]
        self._entries = self._entries[:keep]
        self._synced_upto = min(self._synced_upto, keep)
        self.total_bytes -= sum(entry.wire_size for entry in dropped)
        return dropped
