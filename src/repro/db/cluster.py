"""The evaluated deployment: one client, one primary, one secondary (§5).

:class:`Cluster` wires the nodes, the replication link and the simulated
clock together and exposes a trace runner that produces the measurements
the paper's figures are built from: throughput, latency distribution,
storage footprints at every layer, replicated bytes, and index memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.block import make_block_compressor
from repro.core.config import DedupConfig
from repro.db.errors import CorruptChain, CorruptPage, NodeUnavailableError
from repro.db.failover import (
    DEFAULT_FAILOVER_TIMEOUT_S,
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_REJOIN_DELAY_S,
    FailoverConfig,
    FailoverManager,
)
from repro.db.node import PrimaryNode, SecondaryNode
from repro.db.replication import DEFAULT_BATCH_BYTES, ReplicationLink
from repro.obs import (
    OP_LATENCY_BUCKETS_S,
    MetricsRegistry,
    TimeSeriesSampler,
    Tracer,
    slo_events_family,
)
from repro.obs import runtime as obs_runtime
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.network import SimNetwork
from repro.util.deprecation import positional_shim
from repro.util.stats import percentile
from repro.workloads.base import Operation


@dataclass
class ClusterConfig:
    """Deployment configuration — one per bar of Fig. 10/12.

    Attributes:
        dedup: dbDedup engine parameters.
        dedup_enabled: False for the "Original"/"Snappy" baselines.
        block_compression: page compressor name: 'none', 'snappy', 'zlib'.
        batch_compression: oplog-batch compressor applied before transfer
            ('none' by default) — the block-level oplog compression §1
            names as what DBMSs do today; composes with forward encoding.
        use_writeback_cache: False for the Fig. 13b ablation.
        oplog_batch_bytes: replication batching threshold.
        page_size: storage page size.
        insert_batch_size: > 1 coalesces consecutive client inserts into
            batches of this size, admitted via the primary's batch path
            (one request overhead per batch, vectorized sketching). The
            encode outcome per record is identical to per-record inserts.
    """

    dedup: DedupConfig = field(default_factory=DedupConfig)
    dedup_enabled: bool = True
    block_compression: str = "none"
    batch_compression: str = "none"
    use_writeback_cache: bool = True
    oplog_batch_bytes: int = DEFAULT_BATCH_BYTES
    page_size: int = 32 * 1024
    insert_batch_size: int = 1
    num_secondaries: int = 1
    #: 'primary' (default) or 'secondary' — route client reads to the
    #: replicas round-robin. Replication is asynchronous, so secondary
    #: reads can be stale; missing records fall back to the primary.
    read_preference: str = "primary"
    #: Use the full slotted-page/buffer-pool engine (repro.storage) instead
    #: of the accounting page store. Slower, physically faithful.
    physical_storage: bool = False
    #: Automatic failover: promote a caught-up secondary when the primary
    #: stays down. Default-on is safe — the monitor only acts when a node
    #: actually stays unavailable, which only fault injection causes, and
    #: its heartbeat observation is passive (no clock, no randomness).
    failover_enabled: bool = True
    #: Heartbeat observation cadence (simulated seconds).
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S
    #: Primary unavailability span that triggers an election.
    failover_timeout_s: float = DEFAULT_FAILOVER_TIMEOUT_S
    #: Wait before the demoted old primary rejoins as a secondary.
    rejoin_delay_s: float = DEFAULT_REJOIN_DELAY_S

    def __post_init__(self) -> None:
        if self.insert_batch_size < 1:
            raise ValueError(
                f"insert_batch_size must be >= 1, got {self.insert_batch_size}"
            )
        if self.num_secondaries < 1:
            raise ValueError(
                f"num_secondaries must be >= 1, got {self.num_secondaries}"
            )
        if self.read_preference not in ("primary", "secondary"):
            raise ValueError(
                f"read_preference must be 'primary' or 'secondary', got "
                f"{self.read_preference!r}"
            )
        # FailoverConfig owns the knob validation; a bad combination
        # fails at configuration time, not first outage.
        self.to_failover_config()

    def to_failover_config(self) -> FailoverConfig:
        """The failover knobs as a validated :class:`FailoverConfig`."""
        return FailoverConfig(
            enabled=self.failover_enabled,
            heartbeat_interval_s=self.heartbeat_interval_s,
            failover_timeout_s=self.failover_timeout_s,
            rejoin_delay_s=self.rejoin_delay_s,
        )


@dataclass
class RunResult:
    """Measurements from one trace execution."""

    operations: int
    inserts: int
    reads: int
    duration_s: float
    latencies_s: list[float]
    logical_bytes: int
    stored_bytes: int
    physical_bytes: int
    network_bytes: int
    index_memory_bytes: int
    throughput_timeline: list[tuple[float, float]] = field(default_factory=list)

    @property
    def throughput_ops(self) -> float:
        """Client operations per simulated second."""
        return self.operations / self.duration_s if self.duration_s else 0.0

    @property
    def storage_compression_ratio(self) -> float:
        """Raw bytes over post-dedup (pre-block-compression) bytes."""
        return self.logical_bytes / self.stored_bytes if self.stored_bytes else 1.0

    @property
    def physical_compression_ratio(self) -> float:
        """Raw bytes over fully compressed storage bytes."""
        return self.logical_bytes / self.physical_bytes if self.physical_bytes else 1.0

    @property
    def network_compression_ratio(self) -> float:
        """Raw inserted bytes over replicated bytes."""
        return self.logical_bytes / self.network_bytes if self.network_bytes else 1.0

    def latency_percentile(self, pct: float) -> float:
        """Client latency percentile in seconds."""
        return percentile(self.latencies_s, pct)

    def latency_cdf(self, points: int = 50) -> list[tuple[float, float]]:
        """Downsampled latency CDF: ``(latency_s, fraction)`` pairs.

        The Fig. 12b curve; ``points`` controls the resolution.
        """
        ordered = sorted(self.latencies_s)
        if not ordered:
            return []
        count = len(ordered)
        step = max(1, count // points)
        cdf = [
            (ordered[index], (index + 1) / count)
            for index in range(step - 1, count, step)
        ]
        if cdf[-1][1] < 1.0:
            cdf.append((ordered[-1], 1.0))
        return cdf


class Cluster:
    """One-primary / N-secondary deployment driven by a client trace.

    Construct with keyword arguments (or :meth:`from_spec` /
    :func:`repro.api.open_cluster`); the legacy ``Cluster(config, costs)``
    positional path still works behind a deprecation shim.
    """

    @positional_shim(
        ("config", "costs"),
        "Cluster",
        "positional Cluster(config, costs) arguments are deprecated; "
        "pass them by keyword, or build the cluster through "
        "repro.api.open_cluster(ClusterSpec(...))",
    )
    def __init__(
        self,
        *,
        config: ClusterConfig | None = None,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        trace: bool = False,
        sample_every_s: float | None = None,
        sample_every_ops: int | None = None,
        capture: bool = True,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.costs = costs if costs is not None else CostModel()
        #: Simulated clock — private by default, injected (shared) when
        #: this cluster is one shard of a :class:`ShardedCluster`.
        self.clock = clock if clock is not None else SimClock()
        # An ambient capture (opened by the CLI around experiment code
        # that builds clusters internally) turns observability on without
        # constructor plumbing; explicit arguments still win. A sharded
        # cluster registers itself instead and passes ``capture=False``
        # to its shards.
        cap = obs_runtime.active_capture() if capture else None
        if cap is not None:
            trace = trace or cap.trace
            if sample_every_s is None:
                sample_every_s = cap.sample_seconds
            if sample_every_ops is None:
                sample_every_ops = cap.sample_ops
        #: Shared metrics registry every layer of this cluster reports to.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Per-operation service latency by op kind and tenant (logical
        #: database) — the distribution every SLO percentile is read
        #: from. Fine 1-2-5 buckets so interpolated p99/p999 are usable.
        self._op_latency = self.registry.histogram(
            "op_latency_seconds",
            "Client-observed operation service latency by op kind and "
            "tenant (simulated seconds)",
            ("op", "tenant"),
            buckets=OP_LATENCY_BUCKETS_S,
        )
        self._op_latency_children: dict[tuple[str, str], object] = {}
        #: Shared first-class SLO event family (the engine feeds
        #: admission/backpressure events into the same one).
        self._slo_events = slo_events_family(self.registry)
        #: Shared sim-clock tracer (disabled unless ``trace=True``);
        #: injectable so shards of one topology trace into one span store.
        self.tracer = (
            tracer if tracer is not None else Tracer(self.clock, enabled=trace)
        )
        #: Optional time-series sampler driven by client operations.
        self.sampler = (
            TimeSeriesSampler(
                self.registry,
                clock=self.clock,
                every_seconds=sample_every_s,
                every_ops=sample_every_ops,
            )
            if sample_every_s is not None or sample_every_ops is not None
            else None
        )
        compressor_name = self.config.block_compression
        self.primary = PrimaryNode(
            clock=self.clock,
            costs=self.costs,
            config=self.config.dedup,
            dedup_enabled=self.config.dedup_enabled,
            block_compressor=make_block_compressor(compressor_name),
            inline_block_compression=compressor_name != "none",
            use_writeback_cache=self.config.use_writeback_cache,
            page_size=self.config.page_size,
            physical_storage=self.config.physical_storage,
            registry=self.registry,
            tracer=self.tracer,
            node_name="primary",
        )
        self.secondaries = [
            SecondaryNode(
                clock=self.clock,
                costs=self.costs,
                config=self.config.dedup,
                dedup_enabled=self.config.dedup_enabled,
                block_compressor=make_block_compressor(compressor_name),
                page_size=self.config.page_size,
                physical_storage=self.config.physical_storage,
                registry=self.registry,
                tracer=self.tracer,
                node_name=f"secondary{index}",
            )
            for index in range(self.config.num_secondaries)
        ]
        self.network = SimNetwork(self.clock, self.costs)
        self.network.tracer = self.tracer
        self._batch_compressor = (
            make_block_compressor(self.config.batch_compression)
            if self.config.batch_compression != "none"
            else None
        )
        self.links = [
            self._make_link(secondary) for secondary in self.secondaries
        ]
        #: Heartbeat monitor + promotion/rollback/resync driver.
        self.failover = FailoverManager(self, self.config.to_failover_config())
        self.inserts = 0
        self.reads = 0
        self.secondary_reads = 0
        self.stale_read_fallbacks = 0
        self._read_cursor = 0
        #: Installed :class:`~repro.sim.faults.FaultPlan` (None when no
        #: chaos is injected); its ``after_operation`` hook fires crash
        #: rules after every client operation.
        self.fault_plan = None
        #: Records repaired through the quarantine path.
        self.repairs = 0
        self._install_collectors()
        if cap is not None:
            cap.register(self)

    def _make_link(self, secondary: SecondaryNode) -> ReplicationLink:
        """A replication link from the *current* primary to a secondary.

        Used at boot and again by the failover manager, which rebuilds
        every link against the promoted primary (seeking each cursor to
        the divergence point agreed with that replica).
        """
        return ReplicationLink(
            self.primary,
            secondary,
            self.network,
            self.config.oplog_batch_bytes,
            batch_compressor=self._batch_compressor,
            tracer=self.tracer,
        )

    def _install_collectors(self) -> None:
        """Export network, replication and cluster counters lazily."""
        reg = self.registry
        net = self.network
        reg.counter(
            "network_bytes_sent_total",
            "Bytes of all transfer attempts (including dropped ones)",
        ).collect(lambda: {(): float(net.bytes_sent)})
        reg.counter(
            "network_bytes_delivered_total",
            "Bytes of successfully delivered transfers",
        ).collect(lambda: {(): float(net.bytes_delivered)})
        reg.counter(
            "network_messages_total",
            "Transfer attempts by outcome", ("status",),
        ).collect(lambda: {
            ("sent",): float(net.messages),
            ("delivered",): float(net.messages_delivered),
            ("dropped",): float(net.messages_dropped),
        })

        def link_values(attr):
            return lambda: {
                (f"secondary{index}",): float(getattr(link, attr))
                for index, link in enumerate(self.links)
            }

        label = ("link",)
        reg.counter(
            "replication_batches_shipped_total",
            "Oplog batches confirmed delivered", label,
        ).collect(link_values("batches_shipped"))
        reg.counter(
            "replication_uncompressed_bytes_total",
            "Pre-batch-compression bytes of shipped batches", label,
        ).collect(link_values("uncompressed_bytes"))
        reg.counter(
            "replication_delivery_failures_total",
            "Delivery attempts dropped by fault injection", label,
        ).collect(link_values("delivery_failures"))
        reg.counter(
            "replication_failed_syncs_total",
            "Syncs that exhausted their delivery attempts", label,
        ).collect(link_values("failed_syncs"))
        reg.counter(
            "replication_resends_total",
            "Successful syncs that resent a previously failed batch", label,
        ).collect(link_values("resends"))
        reg.counter(
            "faults_injected_total", "Fault-plan rules that fired",
        ).collect(lambda: {
            (): float(self.fault_plan.injected)
            if self.fault_plan is not None
            else 0.0
        })
        reg.counter(
            "cluster_repairs_total",
            "Records restored through the quarantine repair path",
        ).collect(lambda: {(): float(self.repairs)})
        reg.counter(
            "cluster_secondary_reads_total",
            "Client reads routed to a secondary",
        ).collect(lambda: {(): float(self.secondary_reads)})
        reg.counter(
            "cluster_stale_read_fallbacks_total",
            "Secondary reads served by the primary (replica was stale)",
        ).collect(lambda: {(): float(self.stale_read_fallbacks)})
        reg.counter(
            "failovers_total",
            "Secondary promotions after a primary was declared dead",
        ).collect(lambda: {(): float(self.failover.failovers)})
        reg.counter(
            "rollback_entries_total",
            "Oplog entries dropped by divergence rollbacks (the lost-"
            "write window of asynchronous replication)",
        ).collect(lambda: {(): float(self.failover.rollback_entries)})
        reg.counter(
            "resync_bytes_total",
            "Catch-up wire bytes shipped to rejoining replicas",
        ).collect(lambda: {(): float(self.failover.resync_bytes)})
        reg.counter(
            "failover_supervised_restarts_total",
            "Downed secondaries revived by the failover supervisor",
        ).collect(lambda: {(): float(self.failover.supervised_restarts)})
        reg.counter(
            "failover_stalled_ops_total",
            "Client operations that waited out a promotion",
        ).collect(lambda: {(): float(self.failover.stalled_ops)})
        reg.counter(
            "oplog_appends_total",
            "Entries ever appended to each node's oplog (monotonic; "
            "rollbacks truncate the log but never this counter)",
            ("node",),
        ).collect(lambda: {
            (name,): float(node.oplog.appends) for name, node in self.nodes()
        })

    @classmethod
    def from_spec(
        cls,
        spec,
        *,
        clock: SimClock | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        capture: bool = True,
    ):
        """Build a cluster from a :class:`repro.api.ClusterSpec`.

        The spec's sharding fields are ignored here (a one-shard topology
        *is* a plain cluster); :class:`~repro.db.sharding.ShardedCluster`
        consumes them. Accepts any object with the spec's attributes, so
        this module never imports :mod:`repro.api`.
        """
        return cls(
            config=spec.to_cluster_config(),
            costs=spec.costs,
            clock=clock,
            tracer=tracer,
            registry=registry,
            trace=spec.trace,
            sample_every_s=spec.sample_every_s,
            sample_every_ops=spec.sample_every_ops,
            capture=capture,
        )

    @property
    def secondary(self) -> SecondaryNode:
        """The first secondary (the evaluated topology has exactly one)."""
        return self.secondaries[0]

    @property
    def link(self) -> ReplicationLink:
        """The first replication link."""
        return self.links[0]

    def nodes(self):
        """Yield ``(name, node)`` for the primary and every secondary.

        The single iteration order every whole-cluster sweep (scrub,
        convergence, invariants, fault installation) routes through, so
        sharded and unsharded topologies share one code path instead of
        each site re-deriving the node list.
        """
        yield "primary", self.primary
        for index, secondary in enumerate(self.secondaries):
            yield f"secondary{index}", secondary

    def _await_primary(self, tenant: str = "_cluster") -> PrimaryNode:
        """The current primary, waiting out a promotion if it is down.

        The client-transparency half of failover: while the primary is
        unavailable, simulated time advances heartbeat by heartbeat (the
        wait the client actually experiences) and the monitor ticks until
        it elects a replacement — the retried operation then lands on the
        promoted node. With failover disabled, or when no candidate ever
        becomes available, the typed :class:`NodeUnavailableError`
        surfaces to the caller instead. ``tenant`` labels the stall event
        with the stream whose operation waited (``"_cluster"`` when the
        caller has no stream context, e.g. a batch spanning streams).
        """
        if self.primary.is_available:
            return self.primary
        failover = self.failover
        if not self.config.failover_enabled:
            raise NodeUnavailableError(self.primary.node_name, "primary")
        failover.stalled_ops += 1
        self._slo_events.labels("failover_stall", tenant).inc()
        interval = self.config.heartbeat_interval_s
        attempts = (
            int(self.config.failover_timeout_s / interval)
            + int(self.config.rejoin_delay_s / interval)
            + 16
        )
        for _ in range(attempts):
            self.clock.advance(interval)
            failover.tick()
            if self.primary.is_available:
                return self.primary
        raise NodeUnavailableError(self.primary.node_name, "primary")

    def _primary_op(self, method: str, *args) -> float:
        """Dispatch one write to the (possibly just-promoted) primary."""
        # Single-record writes lead with the database name; the batch
        # path passes a list and stalls under the cluster-wide label.
        tenant = (
            args[0] if args and isinstance(args[0], str) else "_cluster"
        )
        return getattr(self._await_primary(tenant), method)(*args)

    def observe_op_latency(
        self, op: str, tenant: str, latency_s: float
    ) -> None:
        """Land one operation's service latency in the SLO histograms."""
        key = (op, tenant)
        child = self._op_latency_children.get(key)
        if child is None:
            child = self._op_latency.labels(op, tenant)
            self._op_latency_children[key] = child
        child.observe(latency_s)

    def execute(self, op: Operation) -> float:
        """Run one client operation; returns its latency and advances time."""
        if op.kind == "idle":
            return self._idle(op.idle_seconds)
        span = self.tracer.start_span(f"op:{op.kind}", record_id=op.record_id)
        try:
            if op.kind == "insert":
                latency = self._primary_op(
                    "insert", op.database, op.record_id, op.content
                )
                self.inserts += 1
            elif op.kind == "read":
                _, latency = self.read(op.database, op.record_id)
                self.reads += 1
            elif op.kind == "update":
                latency = self._primary_op(
                    "update", op.database, op.record_id, op.content
                )
            elif op.kind == "delete":
                latency = self._primary_op("delete", op.database, op.record_id)
            else:
                raise ValueError(f"unknown operation kind {op.kind!r}")
            span.annotate("latency_s", latency)
            self.observe_op_latency(op.kind, op.database, latency)
            self.clock.advance(latency)
            # Replication the operation triggered belongs in its trace.
            for link in self.links:
                link.maybe_sync()
        finally:
            self.tracer.end_span(span)
        if self.fault_plan is not None:
            self.fault_plan.after_operation(self)
        self.failover.tick()
        if self.sampler is not None:
            self.sampler.note_op()
        return latency

    def execute_insert_batch(self, ops: list[Operation]) -> float:
        """Run a batch of insert operations through the primary's batch
        path; returns the batch latency and advances time once.

        Replication ships after the whole batch, mirroring how a real
        client driver pipelines a bulk load.
        """
        span = self.tracer.start_span("op:insert_batch", records=len(ops))
        try:
            latency = self._primary_op(
                "insert_batch",
                [(op.database, op.record_id, op.content) for op in ops],
            )
            self.inserts += len(ops)
            span.annotate("latency_s", latency)
            # Each batched insert is recorded at its per-record share of
            # the batch latency, matching how ``run()`` reports them.
            share = latency / len(ops) if ops else 0.0
            for op in ops:
                self.observe_op_latency("insert", op.database, share)
            self.clock.advance(latency)
            for link in self.links:
                link.maybe_sync()
        finally:
            self.tracer.end_span(span)
        if self.fault_plan is not None:
            self.fault_plan.after_operation(self)
        self.failover.tick()
        if self.sampler is not None:
            for _ in ops:
                self.sampler.note_op()
        return latency

    def primary_insert_batch(self, items: list[tuple[str, str, bytes]]) -> float:
        """One shard-local batch insert with failover transparency.

        The sharded batch path calls each shard's primary directly (the
        shared clock advances once for the whole client batch); this
        wrapper keeps that call promotion-safe.
        """
        return self._primary_op("insert_batch", items)

    def client_read(
        self, database: str, record_id: str
    ) -> tuple[bytes | None, float]:
        """One accounted client read: content plus latency.

        The facade's read path — same bookkeeping as ``execute`` on a
        read operation (span, clock advance, replication piggyback, fault
        and sampler hooks) but the caller also gets the content back.
        """
        span = self.tracer.start_span("op:read", record_id=record_id)
        try:
            content, latency = self.read(database, record_id)
            self.reads += 1
            span.annotate("latency_s", latency)
            self.observe_op_latency("read", database, latency)
            self.clock.advance(latency)
            for link in self.links:
                link.maybe_sync()
        finally:
            self.tracer.end_span(span)
        if self.fault_plan is not None:
            self.fault_plan.after_operation(self)
        self.failover.tick()
        if self.sampler is not None:
            self.sampler.note_op()
        return content, latency

    def read(self, database: str, record_id: str) -> tuple[bytes | None, float]:
        """Client read honoring the configured read preference.

        With ``read_preference='secondary'`` reads rotate across replicas;
        a record the asynchronous replication has not delivered yet falls
        back to the primary (counted in ``stale_read_fallbacks``), plus one
        network round trip each way.
        """
        if self.config.read_preference == "primary":
            return self._read_with_repair(
                self._await_primary(database), database, record_id
            )
        # Rotate across replicas, skipping any that are down; when every
        # replica is down the primary serves (same as the stale path).
        secondary = None
        for _ in range(len(self.secondaries)):
            candidate = self.secondaries[
                self._read_cursor % len(self.secondaries)
            ]
            self._read_cursor += 1
            if candidate.is_available:
                secondary = candidate
                break
        latency = self.costs.network_time(256)  # request hop
        if secondary is not None:
            self.secondary_reads += 1
            if record_id in secondary.db.records and not secondary.db.records[
                record_id
            ].deleted:
                content, disk_latency = self._read_with_repair(
                    secondary, database, record_id
                )
                return (
                    content,
                    latency
                    + disk_latency
                    + self.costs.network_time(len(content) if content else 64),
                )
        # Stale replica (or record deleted there, or no replica up):
        # the primary serves it.
        self.stale_read_fallbacks += 1
        content, primary_latency = self._read_with_repair(
            self._await_primary(database), database, record_id
        )
        return content, latency + primary_latency + self.costs.network_time(
            len(content) if content else 64
        )

    def _read_with_repair(
        self, node, database: str, record_id: str
    ) -> tuple[bytes | None, float]:
        """Serve a read, routing detected corruption through quarantine.

        A read that trips a page checksum (:class:`CorruptPage`) names
        the corrupt record — possibly a decode *base* of the requested
        one. The record is repaired from a healthy replica and the read
        retried; a chain with several corrupt links converges because
        each round repairs at least one record.
        """
        for _ in range(8):
            try:
                return node.db.read(database, record_id)
            except CorruptPage as fault:
                if self.repair_record(node, fault.record_id) == 0:
                    raise
        return node.db.read(database, record_id)

    # -- quarantine repair (fault tolerance) ---------------------------------

    def repair_record(self, node, record_id: str) -> int:
        """Restore a corrupt record — and everything decoding through it —
        from a healthy copy, raw.

        Dependents must be restored too: their stored deltas decode
        against the corrupted record's *old* payload, which is gone.
        Restoring the whole dependent closure raw trades compression for
        correctness, exactly the write-back cache's loss model. Returns
        the number of records restored.
        """
        db = node.db
        closure = [record_id]
        frontier = [record_id]
        while frontier:
            current = frontier.pop()
            for dependent in db.dependents_of(current):
                if dependent not in closure:
                    closure.append(dependent)
                    frontier.append(dependent)
        restored = 0
        for target in closure:
            record = db.records.get(target)
            if record is None or record.deleted:
                # Tombstones have no client-visible content to restore;
                # they are reaped as their dependents release them.
                continue
            content = self._healthy_content(node, record.database, target)
            if content is None:
                continue  # unrecoverable for now; stays quarantined
            if db.restore_record_raw(target, content):
                restored += 1
        self.repairs += restored
        return restored

    def _healthy_content(self, exclude_node, database: str, record_id: str):
        """A record's content from any replica that reads it cleanly,
        falling back to an oplog replay when no replica can serve it.

        A secondary with undelivered oplog entries for the record is
        skipped: it reads cleanly but serves the *previous* version, and
        restoring that onto the primary would silently roll back a
        confirmed write. The oplog-replay fallback covers the case where
        no replica holds a fresh clean copy.
        """
        for node in [self.primary, *self.secondaries]:
            if node is exclude_node:
                continue
            if node is not self.primary and self._secondary_is_stale_for(
                node, record_id
            ):
                continue
            record = node.db.records.get(record_id)
            if record is None or record.deleted:
                continue
            try:
                content, _ = node.db.read(database, record_id)
            except (CorruptPage, CorruptChain):
                continue
            if content is not None:
                return content
        if self.primary.oplog.truncated_before > 0:
            return None  # replay cannot reach truncated history
        from repro.db.recovery import replay_oplog

        replayed, _ = replay_oplog(self.primary.oplog.entries())
        try:
            content, _ = replayed.read(database, record_id)
        except (CorruptPage, CorruptChain):  # pragma: no cover — replay is raw
            return None
        return content

    def _secondary_is_stale_for(self, node, record_id: str) -> bool:
        """True when ``node`` has not yet applied every oplog entry the
        primary holds for ``record_id`` (or its position is unknowable)."""
        link = next(
            (link for link in self.links if link.secondary is node), None
        )
        if link is None:
            return True  # unlinked replica: freshness unknowable
        try:
            pending = self.primary.oplog.entries_since(link.cursor)
        except ValueError:
            return True  # cursor in truncated history: needs a snapshot
        return any(entry.record_id == record_id for entry in pending)

    def scrub(self) -> dict[str, int]:
        """Proactive checksum scrub: verify every node, repair quarantine.

        Returns ``{node_name: records_restored}`` — the background
        integrity pass a production deployment would run periodically.
        """
        repaired: dict[str, int] = {}
        for name, node in self.nodes():
            count = 0
            for record_id in node.db.verify_checksums():
                count += self.repair_record(node, record_id)
            repaired[name] = count
        return repaired

    def _idle(self, seconds: float) -> float:
        """Advance quiet time in slices so background work can drain."""
        remaining = seconds
        step = max(seconds / 20.0, 1e-6)
        while remaining > 0:
            self.clock.advance(min(step, remaining))
            remaining -= step
            self.failover.tick()
            self.primary.on_idle()
        return 0.0

    def run(
        self,
        operations,
        timeline_bucket_s: float | None = None,
    ) -> RunResult:
        """Execute a trace (closed loop) and collect measurements.

        Args:
            operations: iterable of :class:`Operation`.
            timeline_bucket_s: if set, also record an ops/sec timeline at
                this bucket width (used by Fig. 13b).

        With ``insert_batch_size > 1``, consecutive insert operations are
        coalesced into batches and admitted through
        :meth:`execute_insert_batch`; each batched insert is recorded at
        its per-record share of the batch latency. Any non-insert
        operation flushes the pending batch first, preserving the trace's
        operation order.
        """
        latencies: list[float] = []
        count = 0
        buckets: dict[int, int] = {}
        start = self.clock.now
        batch_size = self.config.insert_batch_size
        pending: list[Operation] = []

        def note_op(latency: float) -> None:
            nonlocal count
            latencies.append(latency)
            count += 1
            if timeline_bucket_s:
                bucket = int((self.clock.now - start) / timeline_bucket_s)
                buckets[bucket] = buckets.get(bucket, 0) + 1

        def flush_pending() -> None:
            if not pending:
                return
            batch_latency = self.execute_insert_batch(pending)
            share = batch_latency / len(pending)
            for _ in pending:
                note_op(share)
            pending.clear()

        for op in operations:
            if batch_size > 1 and op.kind == "insert":
                pending.append(op)
                if len(pending) >= batch_size:
                    flush_pending()
                continue
            flush_pending()
            latency = self.execute(op)
            if op.kind != "idle":
                note_op(latency)
        flush_pending()
        self.finalize()
        if self.sampler is not None:
            self.sampler.finalize()
        duration = self.clock.now - start
        if timeline_bucket_s and buckets:
            last_bucket = max(buckets)
            timeline = [
                (bucket * timeline_bucket_s,
                 buckets.get(bucket, 0) / timeline_bucket_s)
                for bucket in range(last_bucket + 1)
            ]
        else:
            timeline = []
        return RunResult(
            operations=count,
            inserts=self.inserts,
            reads=self.reads,
            duration_s=duration,
            latencies_s=latencies,
            logical_bytes=self.primary.db.logical_raw_bytes,
            stored_bytes=self.primary.db.stored_bytes,
            physical_bytes=self.primary.db.physical_bytes(),
            network_bytes=self.network.bytes_delivered,
            index_memory_bytes=(
                self.primary.engine.index_memory_bytes if self.primary.engine else 0
            ),
            throughput_timeline=timeline,
        )

    def checkpoint(self, path) -> int:
        """Snapshot the primary and truncate oplog history every replica
        has consumed; returns the entries discarded."""
        return self.primary.checkpoint(
            path, replica_cursors=[link.cursor for link in self.links]
        )

    def finalize(self) -> None:
        """Ship the oplog tail and drain write-back caches on every node.

        Syncs loop until every link's cursor reaches the oplog head:
        under fault injection a sync can exhaust its delivery attempts
        and leave the batch pending, so one round is not enough. The
        round bound only trips when a fault plan drops *every* delivery
        forever — real plans have probabilistic or limited rules.

        Settles failover first: a pending promotion or rejoin completes
        (and the promoted primary's deferred index rebuild drains) before
        the tail ships, so the head below is the surviving history.
        """
        self.failover.settle()
        head = self.primary.oplog.next_seq
        for _ in range(64):
            if all(link.cursor >= head for link in self.links):
                break
            for link in self.links:
                if link.cursor < head:
                    link.sync()
        # Out-of-line dedup passes produce no oplog entries, so they may
        # run after the tail shipped; they do produce write-backs, which
        # the drain below then applies.
        self.primary.drain_deferred_dedup(force=True)
        self.primary.db.drain_writebacks()
        for secondary in self.secondaries:
            secondary.db.drain_writebacks()

    @staticmethod
    def _live_ids(node) -> set[str]:
        """Record ids of a node's live (non-deleted) records."""
        return {
            record_id
            for record_id, record in node.db.records.items()
            if not record.deleted
        }

    def replicas_converged(self) -> bool:
        """True when every replica holds identical live record contents."""
        primary_ids = self._live_ids(self.primary)
        for name, node in self.nodes():
            if name == "primary":
                continue
            if primary_ids != self._live_ids(node):
                return False
            # Sorted, not set order: the reads below go through the decode
            # cache, so a hash-randomized visit order would leak into the
            # exported disk/decode counters from run to run.
            for record_id in sorted(primary_ids):
                record = self.primary.db.records[record_id]
                primary_content, _ = self.primary.db.read(
                    record.database, record_id
                )
                secondary_content, _ = node.db.read(record.database, record_id)
                if primary_content != secondary_content:
                    return False
        return True

    def summary_stats(self) -> dict:
        """Point-in-time client-facing summary (the facade's ``stats()``).

        Keys are shared with :meth:`ShardedCluster.summary_stats
        <repro.db.sharding.ShardedCluster.summary_stats>` so callers can
        treat both topologies uniformly.
        """
        db = self.primary.db
        logical = db.logical_raw_bytes
        stored = db.stored_bytes
        network = self.network.bytes_delivered
        return {
            "shards": 1,
            "inserts": self.inserts,
            "reads": self.reads,
            "records": len(self._live_ids(self.primary)),
            "logical_bytes": logical,
            "stored_bytes": stored,
            "physical_bytes": db.physical_bytes(),
            "network_bytes": network,
            "index_memory_bytes": (
                self.primary.engine.index_memory_bytes
                if self.primary.engine
                else 0
            ),
            "storage_compression_ratio": logical / stored if stored else 1.0,
            "network_compression_ratio": logical / network if network else 1.0,
        }
