"""Replication link: ships oplog batches from primary to secondary (§4.1).

"When the size of unsynchronized oplog entries reaches a threshold, the
primary sends them in a batch to the secondary node." The link owns that
threshold and the network accounting Fig. 11 is measured from.
"""

from __future__ import annotations

from repro.compression.block import BlockCompressor
from repro.db.node import PrimaryNode, SecondaryNode
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.faults import DeliveryFault
from repro.sim.network import SimNetwork

#: Default batch threshold: ship once 256 KiB of oplog is pending.
DEFAULT_BATCH_BYTES = 256 * 1024

#: Delivery attempts per sync before giving up and leaving the batch
#: pending (it is resent by the next sync — the cursor only advances on
#: confirmed delivery, so shipping is at-least-once and loss-free).
DEFAULT_MAX_ATTEMPTS = 5

#: Base backoff between delivery retries; doubles per attempt.
DEFAULT_RETRY_BACKOFF_S = 0.01


class ReplicationLink:
    """Asynchronous primary→secondary oplog shipping.

    An optional ``batch_compressor`` block-compresses each batch before it
    crosses the wire — the oplog-message compression today's DBMSs already
    do (§1), which the ablation benches compare and compose with dbDedup's
    forward encoding.
    """

    def __init__(
        self,
        primary: PrimaryNode,
        secondary: SecondaryNode,
        network: SimNetwork,
        batch_bytes: int = DEFAULT_BATCH_BYTES,
        batch_compressor: BlockCompressor | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        tracer: Tracer | None = None,
    ) -> None:
        if batch_bytes < 1:
            raise ValueError(f"batch_bytes must be >= 1, got {batch_bytes}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.primary = primary
        self.secondary = secondary
        self.network = network
        self.batch_bytes = batch_bytes
        self.batch_compressor = batch_compressor
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.batches_shipped = 0
        #: Wire bytes before batch compression (what dedup alone achieves).
        self.uncompressed_bytes = 0
        #: Delivery attempts that failed (each is retried or resent).
        self.delivery_failures = 0
        #: Syncs that exhausted their attempts; the batch stayed pending.
        self.failed_syncs = 0
        #: Successful syncs that had to resend after a failed one.
        self.resends = 0
        self._last_sync_failed = False
        # Per-link oplog cursor: several links can fan the same log out to
        # several secondaries independently.
        self._cursor = 0

    @property
    def cursor(self) -> int:
        """Absolute oplog seq this link has shipped up to (exclusive)."""
        return self._cursor

    def seek(self, cursor: int) -> None:
        """Position the cursor explicitly (failover resync / re-link).

        A promoted primary rebuilds its links with each one's cursor at
        the divergence point agreed with that secondary, so catch-up
        reuses the ordinary at-least-once shipping path from there.
        """
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        self._cursor = cursor

    def maybe_sync(self) -> bool:
        """Ship a batch if enough unsynchronized oplog has accumulated."""
        if self.primary.oplog.bytes_since(self._cursor) < self.batch_bytes:
            return False
        self.sync()
        return True

    def sync(self) -> int:
        """Ship everything pending; returns the batch's delivered wire bytes.

        Delivery is retried with exponential backoff when the network
        drops the message (fault injection). The cursor advances only
        after confirmed delivery, so a batch that exhausts its attempts
        simply stays pending and is resent wholesale by the next sync —
        at-least-once shipping, never data loss. A crashed secondary is
        never shipped to: the batch stays pending (cursor untouched)
        until the node restarts or failover replaces the link.
        """
        if not getattr(self.secondary, "is_available", True):
            return 0
        batch = self.primary.oplog.entries_since(self._cursor)
        if not batch:
            return 0
        raw_bytes = sum(entry.wire_size for entry in batch)
        wire_bytes = raw_bytes
        if self.batch_compressor is not None:
            image = b"".join(entry.payload for entry in batch)
            headers = len(batch) * 32
            wire_bytes = len(self.batch_compressor.compress(image)) + headers
        with self.tracer.span(
            "replicate", entries=len(batch), wire_bytes=wire_bytes
        ):
            delivered = False
            with self.tracer.span("oplog_ship") as ship:
                for attempt in range(self.max_attempts):
                    try:
                        self.network.transfer(wire_bytes)
                        delivered = True
                        break
                    except DeliveryFault:
                        self.delivery_failures += 1
                        self.network.clock.advance(
                            self.retry_backoff_s * (2**attempt)
                        )
                if not delivered:
                    ship.annotate("delivery_failed", True)
            if not delivered:
                self.failed_syncs += 1
                self._last_sync_failed = True
                return 0
            if self._last_sync_failed:
                self.resends += 1
                self._last_sync_failed = False
            self._cursor = batch[-1].seq + 1
            self.uncompressed_bytes += raw_bytes
            with self.tracer.span("replica_apply"):
                self.secondary.apply_batch(batch, self.primary)
            self.batches_shipped += 1
            return wire_bytes
