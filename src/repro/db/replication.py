"""Replication link: ships oplog batches from primary to secondary (§4.1).

"When the size of unsynchronized oplog entries reaches a threshold, the
primary sends them in a batch to the secondary node." The link owns that
threshold and the network accounting Fig. 11 is measured from.
"""

from __future__ import annotations

from repro.compression.block import BlockCompressor
from repro.db.node import PrimaryNode, SecondaryNode
from repro.sim.network import SimNetwork

#: Default batch threshold: ship once 256 KiB of oplog is pending.
DEFAULT_BATCH_BYTES = 256 * 1024


class ReplicationLink:
    """Asynchronous primary→secondary oplog shipping.

    An optional ``batch_compressor`` block-compresses each batch before it
    crosses the wire — the oplog-message compression today's DBMSs already
    do (§1), which the ablation benches compare and compose with dbDedup's
    forward encoding.
    """

    def __init__(
        self,
        primary: PrimaryNode,
        secondary: SecondaryNode,
        network: SimNetwork,
        batch_bytes: int = DEFAULT_BATCH_BYTES,
        batch_compressor: BlockCompressor | None = None,
    ) -> None:
        if batch_bytes < 1:
            raise ValueError(f"batch_bytes must be >= 1, got {batch_bytes}")
        self.primary = primary
        self.secondary = secondary
        self.network = network
        self.batch_bytes = batch_bytes
        self.batch_compressor = batch_compressor
        self.batches_shipped = 0
        #: Wire bytes before batch compression (what dedup alone achieves).
        self.uncompressed_bytes = 0
        # Per-link oplog cursor: several links can fan the same log out to
        # several secondaries independently.
        self._cursor = 0

    @property
    def cursor(self) -> int:
        """Absolute oplog seq this link has shipped up to (exclusive)."""
        return self._cursor

    def maybe_sync(self) -> bool:
        """Ship a batch if enough unsynchronized oplog has accumulated."""
        if self.primary.oplog.bytes_since(self._cursor) < self.batch_bytes:
            return False
        self.sync()
        return True

    def sync(self) -> int:
        """Ship everything pending; returns the batch's wire bytes."""
        batch = self.primary.oplog.entries_since(self._cursor)
        if not batch:
            return 0
        self._cursor = batch[-1].seq + 1
        wire_bytes = sum(entry.wire_size for entry in batch)
        self.uncompressed_bytes += wire_bytes
        if self.batch_compressor is not None:
            image = b"".join(entry.payload for entry in batch)
            headers = len(batch) * 32
            wire_bytes = len(self.batch_compressor.compress(image)) + headers
        self.network.transfer(wire_bytes)
        self.secondary.apply_batch(batch, self.primary)
        self.batches_shipped += 1
        return wire_bytes
