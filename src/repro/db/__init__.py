"""Document DBMS substrate: storage, oplog, replication (§4.1, Fig. 8).

A from-scratch stand-in for the MongoDB deployment the paper integrates
with: a record store with page-level block compression, an operation log
shipped in batches to a secondary, and the CRUD semantics dbDedup needs
(reference counts, deferred deletes, append-style updates, GC).
"""

from repro.db.cluster import Cluster, ClusterConfig, RunResult
from repro.db.database import Database
from repro.db.errors import NodeUnavailableError
from repro.db.failover import (
    FailoverConfig,
    FailoverEvent,
    FailoverManager,
    divergence_point,
)
from repro.db.invariants import (
    ClusterInvariantError,
    InvariantReport,
    InvariantViolation,
    check_cluster,
    check_database,
    check_sharded_cluster,
)
from repro.db.node import PrimaryNode, SecondaryNode
from repro.db.oplog import Oplog, OplogEntry
from repro.db.record import RecordForm, StoredRecord
from repro.db.recovery import ReplayReport, replay_oplog
from repro.db.sharding import ShardedCluster, ShardRouter, locality_key
from repro.db.snapshot import load_snapshot, save_snapshot

__all__ = [
    "Cluster",
    "ClusterConfig",
    "RunResult",
    "Database",
    "PrimaryNode",
    "SecondaryNode",
    "Oplog",
    "OplogEntry",
    "RecordForm",
    "StoredRecord",
    "save_snapshot",
    "load_snapshot",
    "replay_oplog",
    "ReplayReport",
    "check_cluster",
    "check_database",
    "check_sharded_cluster",
    "ShardedCluster",
    "ShardRouter",
    "locality_key",
    "ClusterInvariantError",
    "InvariantReport",
    "InvariantViolation",
    "FailoverConfig",
    "FailoverEvent",
    "FailoverManager",
    "NodeUnavailableError",
    "divergence_point",
]
