"""Hash-sharded multi-primary topology: N independent clusters, one client.

The paper's dbDedup runs one engine per primary; scaling the reproduction
to production-size corpora means partitioning the feature index and the
encoding chains the way HPDedup partitions dedup streams by locality and
LSHBloom bounds per-partition index memory. This module adds that axis
without touching the single-primary machinery: a :class:`ShardedCluster`
owns N full :class:`~repro.db.cluster.Cluster` shards — each with its own
:class:`~repro.core.engine.DedupEngine`, cuckoo index partition, oplog,
replication link(s) and secondaries — all driven on one shared
:class:`~repro.sim.clock.SimClock`.

Routing is pluggable through :class:`ShardRouter`:

* ``hash`` — uniform placement by MurmurHash3 of the full record id.
  Balanced, but versions of one entity scatter across shards, so the
  per-shard engines never see each other's similar records;
* ``prefix`` — locality-preserving placement by the record id's entity
  prefix (``wiki/7/41 → wiki/7``), so revision chains stay on one shard
  and cross-shard dedup loss collapses to zero at the cost of balance.

The router *measures* that trade-off: every insert whose entity already
has records on a different shard increments ``cross_shard_misses`` — the
dedup opportunities a sharded deployment forfeits — and the shard-scaling
experiment (``repro experiment shard-scaling``) turns the counter plus
the per-shard compression ratios into a dedup-ratio-vs-shard-count curve.

Batch execution splits each client batch into per-shard sub-batches that
run concurrently in simulated time (the shared clock advances once, by
the slowest shard's latency). With ``shards=1`` every path delegates to
the underlying cluster unchanged, which is what the byte-equivalence
property test in ``tests/db/test_sharding_equivalence.py`` pins down.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.db.cluster import Cluster, ClusterConfig, RunResult
from repro.hashing.murmur import murmur3_32
from repro.obs import MetricsRegistry, Tracer
from repro.obs import runtime as obs_runtime
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.workloads.base import Operation

#: Placement strategies understood by :class:`ShardRouter`.
PLACEMENTS = ("hash", "prefix")

#: Seed of the routing hash — fixed so placement is stable across runs
#: and across processes (record ids must not migrate between shards).
ROUTER_HASH_SEED = 0x5A4D


def locality_key(record_id: str) -> str:
    """The entity prefix similar records share.

    Every shipped workload names versions of one entity under a common
    ``/``-separated prefix (``wiki/<article>/<rev>``, ``mail/<seq>``,
    ``order/<id>``); dropping the last segment yields the key revisions
    of one article, or versions of one document, have in common. Ids
    without a separator are their own key.
    """
    head, sep, _tail = record_id.rpartition("/")
    return head if sep else record_id


class ShardRouter:
    """Deterministic record-to-shard placement with miss accounting.

    Args:
        shards: number of shards (>= 1).
        placement: ``'hash'`` (uniform, by full record id) or ``'prefix'``
            (locality-preserving, by :func:`locality_key`).

    Attributes:
        counts: inserts routed to each shard (placement-balance signal).
        cross_shard_misses: inserts whose entity already had records on a
            different shard — each one is dedup opportunity the sharded
            topology cannot exploit, the quantity the placement strategy
            exists to minimize.
    """

    def __init__(self, shards: int, placement: str = "hash") -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        self.shards = shards
        self.placement = placement
        self.counts = [0] * shards
        self.cross_shard_misses = 0
        self._entity_shard: dict[str, int] = {}

    def shard_of(self, record_id: str) -> int:
        """The shard a record id lives on (pure function of the id)."""
        key = (
            record_id
            if self.placement == "hash"
            else locality_key(record_id)
        )
        return murmur3_32(key.encode("utf-8"), ROUTER_HASH_SEED) % self.shards

    def route(self, op: Operation) -> int:
        """Route one operation, maintaining the insert-side accounting."""
        shard = self.shard_of(op.record_id)
        if op.kind == "insert":
            self.counts[shard] += 1
            entity = locality_key(op.record_id)
            home = self._entity_shard.setdefault(entity, shard)
            if home != shard:
                self.cross_shard_misses += 1
        return shard

    @property
    def entities_tracked(self) -> int:
        """Distinct locality keys seen so far."""
        return len(self._entity_shard)


class _MergedRegistryView:
    """Duck-typed registry exposing a sharded cluster's merged snapshot.

    The exporters only need ``snapshot()`` from a registry; this view
    satisfies them by re-labeling every shard's families with a ``shard``
    label and appending the router's own families, so one valid
    ``repro.metrics/v1`` document covers the whole topology.
    """

    def __init__(self, cluster: "ShardedCluster") -> None:
        self._cluster = cluster

    def snapshot(self) -> dict:
        """Merged ``{name: family}`` snapshot across every shard."""
        return self._cluster.metrics_snapshot()


class ShardedCluster:
    """N independent cluster shards behind one hash-routing client.

    Construct with keyword arguments or :meth:`from_spec`; the public
    entry point is :func:`repro.api.open_cluster` with a spec whose
    ``shards`` is greater than one.

    Args:
        config: per-shard :class:`~repro.db.cluster.ClusterConfig`
            (every shard runs the same configuration).
        shards: number of shards (>= 1).
        placement: router placement strategy (see :class:`ShardRouter`).
        costs: shared cost model.
        trace: enable sim-clock tracing (one tracer spans all shards).
        sample_every_s / sample_every_ops: per-shard sampler cadence.
        capture: register with an ambient observability capture.
    """

    def __init__(
        self,
        *,
        config: ClusterConfig | None = None,
        shards: int = 2,
        placement: str = "hash",
        costs: CostModel | None = None,
        trace: bool = False,
        sample_every_s: float | None = None,
        sample_every_ops: int | None = None,
        capture: bool = True,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.costs = costs if costs is not None else CostModel()
        cap = obs_runtime.active_capture() if capture else None
        if cap is not None:
            trace = trace or cap.trace
            if sample_every_s is None:
                sample_every_s = cap.sample_seconds
            if sample_every_ops is None:
                sample_every_ops = cap.sample_ops
        #: One simulated clock shared by every shard — client batches fan
        #: out concurrently and background work on all shards sees one
        #: consistent timeline.
        self.clock = SimClock()
        #: One tracer spanning all shards (spans carry shard annotations).
        self.tracer = Tracer(self.clock, enabled=trace)
        self.router = ShardRouter(shards, placement)
        #: The shard clusters. Each keeps its *own* metrics registry so
        #: identical label sets (node="primary", ...) never collide; the
        #: merged view re-labels them with ``shard`` at export time.
        self.shards = [
            Cluster(
                config=self.config,
                costs=self.costs,
                clock=self.clock,
                tracer=self.tracer,
                trace=trace,
                sample_every_s=sample_every_s,
                sample_every_ops=sample_every_ops,
                capture=False,
            )
            for _ in range(shards)
        ]
        #: Merged-snapshot registry view (valid exporter input).
        self.registry = _MergedRegistryView(self)
        #: Sharded runs have per-shard samplers; there is no single
        #: sampler to export, so the bundle-level slot stays empty.
        self.sampler = None
        self._router_registry = MetricsRegistry()
        self._install_router_collectors()
        if cap is not None:
            cap.register(self)

    @classmethod
    def from_spec(cls, spec, *, capture: bool = True) -> "ShardedCluster":
        """Build a sharded cluster from a :class:`repro.api.ClusterSpec`.

        Duck-typed on the spec's attributes so this module never imports
        :mod:`repro.api` (which imports this one).
        """
        return cls(
            config=spec.to_cluster_config(),
            shards=spec.shards,
            placement=spec.placement,
            costs=spec.costs,
            trace=spec.trace,
            sample_every_s=spec.sample_every_s,
            sample_every_ops=spec.sample_every_ops,
            capture=capture,
        )

    def _install_router_collectors(self) -> None:
        """Export the router's counters from the topology-level registry."""
        reg = self._router_registry
        router = self.router
        reg.gauge(
            "router_shard_count", "Number of shards in the topology",
        ).collect(lambda: {(): float(router.shards)})
        reg.counter(
            "router_records_routed_total",
            "Client inserts routed to each shard", ("shard",),
        ).collect(lambda: {
            (str(index),): float(count)
            for index, count in enumerate(router.counts)
        })
        reg.counter(
            "router_cross_shard_misses_total",
            "Inserts whose entity already lived on a different shard "
            "(forfeited dedup opportunities)",
        ).collect(lambda: {(): float(router.cross_shard_misses)})
        reg.gauge(
            "router_entities_tracked",
            "Distinct locality keys the router has seen",
        ).collect(lambda: {(): float(router.entities_tracked)})

    # -- client operations ---------------------------------------------------

    def execute(self, op: Operation) -> float:
        """Run one client operation on its owning shard."""
        if op.kind == "idle":
            return self._idle(op.idle_seconds)
        return self.shards[self.router.route(op)].execute(op)

    def client_read(
        self, database: str, record_id: str
    ) -> tuple[bytes | None, float]:
        """One accounted client read, routed to the owning shard."""
        shard = self.shards[self.router.shard_of(record_id)]
        return shard.client_read(database, record_id)

    def execute_insert_batch(self, ops: list[Operation]) -> float:
        """Run one client batch, split per shard, concurrently.

        Each shard's sub-batch goes through its primary's batch path;
        the shared clock then advances once by the *slowest* sub-batch
        latency — the shards work in parallel, the client waits for all
        of them. A batch that lands entirely on one shard takes that
        shard's native batch path unchanged.
        """
        groups: dict[int, list[Operation]] = {}
        for op in ops:
            groups.setdefault(self.router.route(op), []).append(op)
        if len(groups) == 1:
            ((index, group),) = groups.items()
            return self.shards[index].execute_insert_batch(group)
        latencies: dict[int, float] = {}
        for index in sorted(groups):
            shard = self.shards[index]
            group = groups[index]
            span = self.tracer.start_span(
                "op:insert_batch", shard=index, records=len(group)
            )
            try:
                latency = shard.primary_insert_batch(
                    [(op.database, op.record_id, op.content) for op in group]
                )
                shard.inserts += len(group)
                span.annotate("latency_s", latency)
            finally:
                self.tracer.end_span(span)
            latencies[index] = latency
        batch_latency = max(latencies.values())
        self.clock.advance(batch_latency)
        for index in sorted(groups):
            shard = self.shards[index]
            for link in shard.links:
                link.maybe_sync()
            if shard.fault_plan is not None:
                shard.fault_plan.after_operation(shard)
            shard.failover.tick()
            if shard.sampler is not None:
                for _ in groups[index]:
                    shard.sampler.note_op()
        return batch_latency

    def _idle(self, seconds: float) -> float:
        """Advance quiet time in slices; every shard drains background work."""
        remaining = seconds
        step = max(seconds / 20.0, 1e-6)
        while remaining > 0:
            self.clock.advance(min(step, remaining))
            remaining -= step
            for shard in self.shards:
                shard.failover.tick()
                shard.primary.on_idle()
        return 0.0

    def run(
        self,
        operations: Iterable[Operation],
        timeline_bucket_s: float | None = None,
    ) -> RunResult:
        """Execute a trace across the shards; collect merged measurements.

        The batching protocol mirrors :meth:`Cluster.run
        <repro.db.cluster.Cluster.run>` exactly — consecutive inserts
        coalesce into client batches of ``config.insert_batch_size``,
        any other operation flushes first — and each batch is then split
        per shard by :meth:`execute_insert_batch`.
        """
        latencies: list[float] = []
        count = 0
        buckets: dict[int, int] = {}
        start = self.clock.now
        batch_size = self.config.insert_batch_size
        pending: list[Operation] = []

        def note_op(latency: float) -> None:
            nonlocal count
            latencies.append(latency)
            count += 1
            if timeline_bucket_s:
                bucket = int((self.clock.now - start) / timeline_bucket_s)
                buckets[bucket] = buckets.get(bucket, 0) + 1

        def flush_pending() -> None:
            if not pending:
                return
            batch_latency = self.execute_insert_batch(pending)
            share = batch_latency / len(pending)
            for _ in pending:
                note_op(share)
            pending.clear()

        for op in operations:
            if batch_size > 1 and op.kind == "insert":
                pending.append(op)
                if len(pending) >= batch_size:
                    flush_pending()
                continue
            flush_pending()
            latency = self.execute(op)
            if op.kind != "idle":
                note_op(latency)
        flush_pending()
        self.finalize()
        for shard in self.shards:
            if shard.sampler is not None:
                shard.sampler.finalize()
        duration = self.clock.now - start
        if timeline_bucket_s and buckets:
            last_bucket = max(buckets)
            timeline = [
                (bucket * timeline_bucket_s,
                 buckets.get(bucket, 0) / timeline_bucket_s)
                for bucket in range(last_bucket + 1)
            ]
        else:
            timeline = []
        return RunResult(
            operations=count,
            inserts=sum(shard.inserts for shard in self.shards),
            reads=sum(shard.reads for shard in self.shards),
            duration_s=duration,
            latencies_s=latencies,
            logical_bytes=sum(
                shard.primary.db.logical_raw_bytes for shard in self.shards
            ),
            stored_bytes=sum(
                shard.primary.db.stored_bytes for shard in self.shards
            ),
            physical_bytes=sum(
                shard.primary.db.physical_bytes() for shard in self.shards
            ),
            network_bytes=sum(
                shard.network.bytes_delivered for shard in self.shards
            ),
            index_memory_bytes=sum(
                shard.primary.engine.index_memory_bytes
                for shard in self.shards
                if shard.primary.engine
            ),
            throughput_timeline=timeline,
        )

    # -- lifecycle / maintenance ---------------------------------------------

    def finalize(self) -> None:
        """Drain replication and write-back caches on every shard."""
        for shard in self.shards:
            shard.finalize()

    def scrub(self) -> dict[str, int]:
        """Checksum-scrub every shard; returns ``{shardN/node: repaired}``."""
        repaired: dict[str, int] = {}
        for index, shard in enumerate(self.shards):
            for name, count in shard.scrub().items():
                repaired[f"shard{index}/{name}"] = count
        return repaired

    def checkpoint(self, path) -> int:
        """Checkpoint every shard (``<path>.shard<N>``); sum of truncations."""
        return sum(
            shard.checkpoint(f"{path}.shard{index}")
            for index, shard in enumerate(self.shards)
        )

    def replicas_converged(self) -> bool:
        """True when every shard's replicas converged."""
        return all(shard.replicas_converged() for shard in self.shards)

    def install_fault_plans(self, plans: Mapping[int, object]) -> None:
        """Install per-shard fault plans: ``{shard_index: FaultPlan}``.

        Each plan wires into one shard's network, disks and databases
        exactly as it would on a standalone cluster.
        """
        for index, plan in plans.items():
            plan.install(self.shards[index])

    @property
    def fault_plans(self) -> dict[int, object]:
        """Installed fault plans by shard index (shards without one omitted)."""
        return {
            index: shard.fault_plan
            for index, shard in enumerate(self.shards)
            if shard.fault_plan is not None
        }

    # -- observability --------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Merged metrics: every shard's families, labeled by shard.

        Each shard keeps its own registry; this merge adds a ``shard``
        label to every family (values are the shard index) and appends
        the router-level families, yielding one snapshot the standard
        exporters and validators accept.
        """
        merged: dict[str, dict] = {}
        for index, shard in enumerate(self.shards):
            for name, family in shard.registry.snapshot().items():
                target = merged.get(name)
                if target is None:
                    target = {
                        key: value
                        for key, value in family.items()
                        if key != "values"
                    }
                    target["labels"] = list(family["labels"]) + ["shard"]
                    target["values"] = []
                    merged[name] = target
                for row in family["values"]:
                    labeled = dict(row)
                    labeled["labels"] = dict(row["labels"], shard=str(index))
                    target["values"].append(labeled)
        merged.update(self._router_registry.snapshot())
        return merged

    def summary_stats(self) -> dict:
        """Aggregated topology summary plus per-shard breakdown.

        Shares its top-level keys with :meth:`Cluster.summary_stats
        <repro.db.cluster.Cluster.summary_stats>` and adds the router's
        cross-shard accounting and the per-shard dicts under ``"per_shard"``.
        """
        per_shard = [shard.summary_stats() for shard in self.shards]
        logical = sum(stats["logical_bytes"] for stats in per_shard)
        stored = sum(stats["stored_bytes"] for stats in per_shard)
        network = sum(stats["network_bytes"] for stats in per_shard)
        return {
            "shards": len(self.shards),
            "placement": self.router.placement,
            "inserts": sum(stats["inserts"] for stats in per_shard),
            "reads": sum(stats["reads"] for stats in per_shard),
            "records": sum(stats["records"] for stats in per_shard),
            "logical_bytes": logical,
            "stored_bytes": stored,
            "physical_bytes": sum(
                stats["physical_bytes"] for stats in per_shard
            ),
            "network_bytes": network,
            "index_memory_bytes": sum(
                stats["index_memory_bytes"] for stats in per_shard
            ),
            "storage_compression_ratio": logical / stored if stored else 1.0,
            "network_compression_ratio": logical / network if network else 1.0,
            "cross_shard_misses": self.router.cross_shard_misses,
            "records_per_shard": list(self.router.counts),
            "per_shard": per_shard,
        }
