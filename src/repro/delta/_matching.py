"""Shared match-extension helpers for the delta encoders.

Once a candidate match offset pair is found via checksums, both encoders
extend it with "bidirectional byte-wise comparison to determine the longest
common sequence" (§4.2). The extension is vectorized: slices are compared
in blocks and the first mismatch located with ``argmax`` on the inequality
mask, so long matches cost O(match/block) numpy calls instead of a Python
loop per byte.
"""

from __future__ import annotations

import numpy as np

_BLOCK = 4096


def as_array(data: bytes) -> np.ndarray:
    """View ``data`` as a read-only uint8 array (no copy)."""
    return np.frombuffer(data, dtype=np.uint8)


def forward_match_len(src: np.ndarray, tgt: np.ndarray, s: int, t: int) -> int:
    """Length of the common run of ``src[s:]`` and ``tgt[t:]``."""
    limit = min(len(src) - s, len(tgt) - t)
    matched = 0
    while matched < limit:
        span = min(_BLOCK, limit - matched)
        a = src[s + matched : s + matched + span]
        b = tgt[t + matched : t + matched + span]
        neq = a != b
        if neq.any():
            return matched + int(np.argmax(neq))
        matched += span
    return matched


def backward_match_len(
    src: np.ndarray, tgt: np.ndarray, s: int, t: int, s_lo: int, t_lo: int
) -> int:
    """How far the match ending just before ``(s, t)`` extends backwards.

    Never reaches below ``s_lo`` in the source or ``t_lo`` in the target —
    the target floor is the last emitted output position, which must not be
    re-covered.
    """
    limit = min(s - s_lo, t - t_lo)
    matched = 0
    while matched < limit:
        span = min(_BLOCK, limit - matched)
        a = src[s - matched - span : s - matched]
        b = tgt[t - matched - span : t - matched]
        neq = a != b
        if neq.any():
            # Scan the block from its tail: argmax on the reversed mask.
            return matched + int(np.argmax(neq[::-1]))
        matched += span
    return matched
