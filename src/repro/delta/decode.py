"""Delta decompression (§4.2): replay COPY/INSERT instructions over a base."""

from __future__ import annotations

from repro.delta.instructions import CopyInst, Delta, InsertInst


def apply_delta(base: bytes, insts: Delta) -> bytes:
    """Rebuild the target stream from ``base`` and a delta.

    Raises:
        ValueError: if a COPY references bytes outside ``base`` — the signal
            that a delta is being applied to the wrong base record.
    """
    out = bytearray()
    limit = len(base)
    for inst in insts:
        if isinstance(inst, InsertInst):
            out += inst.data
        elif isinstance(inst, CopyInst):
            end = inst.offset + inst.length
            if inst.offset < 0 or end > limit:
                raise ValueError(
                    f"COPY [{inst.offset}, {end}) outside base of {limit} bytes"
                )
            out += base[inst.offset : end]
        else:
            raise TypeError(f"not a delta instruction: {inst!r}")
    return bytes(out)
