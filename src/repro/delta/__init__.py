"""Byte-level delta compression (§4.2, Algorithms 1 and 2).

The instruction model is shared by every encoder so that Fig. 15's
comparison (classic xDelta vs dbDedup's anchor-sampled variant) measures
algorithmic differences only:

* :mod:`repro.delta.instructions` — COPY/INSERT model + binary wire format.
* :mod:`repro.delta.xdelta` — classic xDelta: block index over the source,
  target scanned at every byte offset.
* :mod:`repro.delta.dbdelta` — dbDedup's variant: only *anchor* offsets
  (checksum low bits match a pattern) are indexed and probed, trading a
  little ratio for a large speedup (Fig. 15).
* :mod:`repro.delta.reencode` — Algorithm 2: transform a forward delta into
  the backward delta at memory speed, without re-running compression.
* :mod:`repro.delta.decode` — apply a delta to its base.
"""

from repro.delta.decode import apply_delta
from repro.delta.dbdelta import DeltaCompressor
from repro.delta.instructions import (
    CopyInst,
    Delta,
    InsertInst,
    coalesce,
    deserialize,
    encoded_size,
    serialize,
)
from repro.delta.reencode import delta_reencode
from repro.delta.xdelta import xdelta_compress

__all__ = [
    "CopyInst",
    "InsertInst",
    "Delta",
    "serialize",
    "deserialize",
    "encoded_size",
    "coalesce",
    "xdelta_compress",
    "DeltaCompressor",
    "delta_reencode",
    "apply_delta",
]
