"""Reference delta encoder built on ``difflib`` — the quality yardstick.

``difflib.SequenceMatcher`` finds (near-)maximal matching blocks with no
windowing or sampling tricks, so its COPY coverage approximates the best a
copy/insert delta can do. It is far too slow for the online path (quadratic
worst case), which is precisely why it makes a good *reference*: tests and
benches compare dbDedup's sampled encoder against it to quantify how much
ratio the anchor optimization actually leaves on the table.
"""

from __future__ import annotations

from difflib import SequenceMatcher

from repro.delta.instructions import CopyInst, Delta, InsertInst, coalesce

#: Matching blocks shorter than this are cheaper as literals.
MIN_MATCH = 8


def reference_compress(src: bytes, tgt: bytes, min_match: int = MIN_MATCH) -> Delta:
    """Copy/insert delta via SequenceMatcher's matching blocks.

    Returns a delta such that ``apply_delta(src, result) == tgt``. Not for
    production use — O(len(src)·len(tgt)) worst case.
    """
    if not tgt:
        return []
    if not src:
        return [InsertInst(tgt)]
    # autojunk=False: the default heuristic drops popular bytes, which is
    # wrong for binary-ish data.
    matcher = SequenceMatcher(None, src, tgt, autojunk=False)
    insts: Delta = []
    emitted = 0
    for s_off, t_off, length in matcher.get_matching_blocks():
        if length < min_match:
            continue
        if emitted < t_off:
            insts.append(InsertInst(tgt[emitted:t_off]))
        insts.append(CopyInst(s_off, length))
        emitted = t_off + length
    if emitted < len(tgt):
        insts.append(InsertInst(tgt[emitted:]))
    return coalesce(insts, base=src)
