"""Delta re-encoding: forward delta → backward delta (§4.2, Algorithm 2).

Two-way encoding needs both directions of the same record pair: the forward
delta (old → new) ships to replicas, the backward delta (new → old) lands
in storage. Running the compressor twice would double the dominant cost —
checksum and index work — so dbDedup instead *transforms* the forward
delta:

every forward COPY states a byte-equality ``src[sOff:sOff+len] ==
tgt[tOff:tOff+len]``; read backwards, the same fact reconstructs that
source span from the target. Sort the copy segments by source offset, fill
the source gaps with literal INSERTs, and the backward delta is done — no
checksums, no index, pure memory-speed bookkeeping.

Subtlety the paper notes: forward COPYs may *overlap* in source space
(two target regions copied from overlapping source spans). Overlaps are
trimmed front-wise here, which can shorten copies slightly — the "slightly
sub-optimal compression rate" §4.2 accepts in exchange for speed.
"""

from __future__ import annotations

from repro.delta.instructions import CopyInst, Delta, InsertInst, coalesce


def delta_reencode(src: bytes, forward: Delta) -> Delta:
    """Backward delta (base = target) reconstructing ``src``.

    Args:
        src: the forward delta's source record (the older record).
        forward: delta produced against ``src`` for some target record.

    Returns:
        Instructions such that ``apply_delta(tgt, result) == src`` whenever
        ``apply_delta(src, forward) == tgt``.
    """
    # Collect (source offset, target offset, length) for every forward COPY.
    segments: list[tuple[int, int, int]] = []
    t_pos = 0
    for inst in forward:
        if isinstance(inst, CopyInst):
            segments.append((inst.offset, t_pos, inst.length))
        t_pos += len(inst)
    segments.sort()

    insts: Delta = []
    s_pos = 0
    for s_off, t_off, length in segments:
        if s_off < s_pos:
            # Overlaps the previous segment in source space: trim the front.
            trim = s_pos - s_off
            if trim >= length:
                continue
            s_off += trim
            t_off += trim
            length -= trim
        if s_pos < s_off:
            insts.append(InsertInst(src[s_pos:s_off]))
        insts.append(CopyInst(t_off, length))
        s_pos = s_off + length
    if s_pos < len(src):
        insts.append(InsertInst(src[s_pos:]))
    return coalesce(insts, base=None)
