"""dbDedup's anchor-sampled delta compression (§4.2, Algorithm 1, Fig. 15).

The observation behind the optimization: classic xDelta spends most of its
time building and probing the source block index. dbDedup instead samples
*anchors* — offsets whose window checksum's low bits match a fixed
pattern — and only indexes source anchors and probes target anchors. The
``anchor_interval`` (expected spacing between anchors) is the tunable
ratio/throughput knob evaluated in Fig. 15: interval 16 ≈ xDelta quality,
interval 64 ≈ 80 % faster at ~7 % ratio loss on the paper's testbed.

Because anchors are content-defined the *same* data selects the same
anchors in source and target, so matches are still found even though only
a fraction of offsets are examined; bidirectional byte-wise extension then
recovers the full duplicate region around each anchor hit.
"""

from __future__ import annotations

import numpy as np

from repro.delta._matching import as_array, backward_match_len, forward_match_len
from repro.delta.instructions import CopyInst, Delta, InsertInst, coalesce
from repro.hashing.adler import rolling_adler32

#: Paper default window width (inherited from xDelta).
DEFAULT_WINDOW = 16

#: Paper default anchor interval: "We use 64 as the default value, providing
#: a reasonable balance between compression ratio and throughput."
DEFAULT_ANCHOR_INTERVAL = 64

#: Cap on source offsets remembered per checksum, to bound worst-case work
#: on pathological self-similar inputs.
MAX_OFFSETS_PER_CHECKSUM = 4


class DeltaCompressor:
    """Configurable anchor-sampled delta encoder.

    Args:
        anchor_interval: expected anchor spacing; must be a power of two
            (anchor test masks ``log2(interval)`` low checksum bits). An
            interval equal to the window width degenerates to probing nearly
            every offset, approximating classic xDelta (Fig. 15 leftmost
            point).
        window: checksum window width in bytes.
    """

    def __init__(
        self,
        anchor_interval: int = DEFAULT_ANCHOR_INTERVAL,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if anchor_interval < 1 or anchor_interval & (anchor_interval - 1):
            raise ValueError(
                f"anchor_interval must be a power of two, got {anchor_interval}"
            )
        if window < 4:
            raise ValueError(f"window must be >= 4, got {window}")
        self.anchor_interval = anchor_interval
        self.window = window
        self._mask = np.uint32(anchor_interval - 1)
        self._magic = np.uint32(anchor_interval - 1)

    def _anchors(self, checksums: np.ndarray) -> np.ndarray:
        """Offsets whose checksum low bits match the anchor pattern."""
        if self.anchor_interval == 1:
            return np.arange(len(checksums))
        return np.nonzero((checksums & self._mask) == self._magic)[0]

    def compress(self, src: bytes, tgt: bytes) -> Delta:
        """Delta that rebuilds ``tgt`` from ``src`` (Algorithm 1).

        Always correct: if no anchors match (e.g. unrelated inputs), the
        result degenerates to a single INSERT of the whole target.
        """
        if not tgt:
            return []
        if len(src) < self.window or len(tgt) < self.window:
            return [InsertInst(tgt)]

        src_arr = as_array(src)
        tgt_arr = as_array(tgt)
        src_checksums = rolling_adler32(src, self.window)
        tgt_checksums = rolling_adler32(tgt, self.window)

        # Step 1 (Algorithm 1 lines 8-14): index source anchors.
        index: dict[int, list[int]] = {}
        for offset in self._anchors(src_checksums).tolist():
            bucket = index.setdefault(int(src_checksums[offset]), [])
            if len(bucket) < MAX_OFFSETS_PER_CHECKSUM:
                bucket.append(offset)

        # Step 2 (lines 15-31): probe only target anchors, extend matches.
        insts: Delta = []
        emitted = 0
        tgt_anchors = self._anchors(tgt_checksums).tolist()
        cursor = 0
        while cursor < len(tgt_anchors):
            j = tgt_anchors[cursor]
            if j < emitted:
                cursor += 1
                continue
            candidates = index.get(int(tgt_checksums[j]))
            if not candidates:
                cursor += 1
                continue
            best = self._best_match(src_arr, tgt_arr, candidates, j, emitted)
            if best is None:
                cursor += 1
                continue
            s_off, t_off, length = best
            if emitted < t_off:
                insts.append(InsertInst(tgt[emitted:t_off]))
            insts.append(CopyInst(s_off, length))
            emitted = t_off + length
            cursor += 1
        if emitted < len(tgt):
            insts.append(InsertInst(tgt[emitted:]))
        return coalesce(insts, base=src)

    def _best_match(
        self,
        src_arr: np.ndarray,
        tgt_arr: np.ndarray,
        candidates: list[int],
        j: int,
        emitted: int,
    ) -> tuple[int, int, int] | None:
        """Longest verified match across candidate source offsets, or None."""
        best: tuple[int, int, int] | None = None
        for s in candidates:
            length = forward_match_len(src_arr, tgt_arr, s, j)
            if length < self.window:
                continue  # checksum collision
            back = backward_match_len(src_arr, tgt_arr, s, j, 0, emitted)
            total = length + back
            if best is None or total > best[2]:
                best = (s - back, j - back, total)
        return best
