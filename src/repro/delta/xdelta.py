"""Classic xDelta copy/insert compression (§4.2, baseline for Fig. 15).

The original algorithm in two steps:

1. divide the *source* into fixed-width (default 16-byte) blocks, index
   each block's Adler-32 checksum → offset;
2. slide a same-width window over the *target* byte by byte; whenever the
   window checksum hits the index, byte-verify and extend the match in both
   directions, emit a COPY, and resume after the matched region; bytes not
   covered by copies become INSERTs.

The per-position checksums are precomputed in one vectorized pass; the
Python loop only walks unmatched bytes and match skips.
"""

from __future__ import annotations

from repro.delta._matching import as_array, backward_match_len, forward_match_len
from repro.delta.instructions import CopyInst, Delta, InsertInst, coalesce
from repro.hashing.adler import rolling_adler32

#: xDelta's default block width: "divides the source stream into fixed-size
#: (by default, 16-byte) blocks".
DEFAULT_BLOCK_WIDTH = 16


def build_source_index(
    src_checksums, width: int, stride: int
) -> dict[int, int]:
    """Map block checksum → source offset for offsets ``0, stride, ...``.

    First occurrence wins, which keeps the encoder deterministic when the
    source repeats itself.
    """
    index: dict[int, int] = {}
    for offset in range(0, len(src_checksums), stride):
        checksum = int(src_checksums[offset])
        if checksum not in index:
            index[checksum] = offset
    return index


def xdelta_compress(
    src: bytes, tgt: bytes, block_width: int = DEFAULT_BLOCK_WIDTH
) -> Delta:
    """Delta that rebuilds ``tgt`` from ``src`` (classic xDelta).

    Returns a normalized instruction list; ``apply_delta(src, result)``
    reproduces ``tgt`` exactly, including for empty or incompressible
    inputs (worst case: one INSERT carrying all of ``tgt``).
    """
    if block_width < 4:
        raise ValueError(f"block_width must be >= 4, got {block_width}")
    if not tgt:
        return []
    if len(src) < block_width or len(tgt) < block_width:
        return [InsertInst(tgt)]

    src_arr = as_array(src)
    tgt_arr = as_array(tgt)
    src_checksums = rolling_adler32(src, block_width)
    tgt_checksums = rolling_adler32(tgt, block_width)
    index = build_source_index(src_checksums, block_width, block_width)

    insts: Delta = []
    emitted = 0  # target bytes already covered by instructions
    j = 0
    scan_end = len(tgt) - block_width
    while j <= scan_end:
        candidate = index.get(int(tgt_checksums[j]))
        if candidate is None:
            j += 1
            continue
        s = candidate
        length = forward_match_len(src_arr, tgt_arr, s, j)
        if length < block_width:
            j += 1  # checksum collision; not a real match
            continue
        back = backward_match_len(src_arr, tgt_arr, s, j, 0, emitted)
        s_off = s - back
        t_off = j - back
        length += back
        if emitted < t_off:
            insts.append(InsertInst(tgt[emitted:t_off]))
        insts.append(CopyInst(s_off, length))
        emitted = t_off + length
        j = emitted
    if emitted < len(tgt):
        insts.append(InsertInst(tgt[emitted:]))
    return coalesce(insts, base=src)
