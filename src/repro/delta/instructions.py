"""Copy/insert delta instruction model and its binary wire format (§4.2).

A delta is a list of instructions that rebuild a *target* byte stream from
a *base* byte stream:

* ``CopyInst(offset, length)`` — append ``base[offset:offset+length]``.
* ``InsertInst(data)`` — append literal bytes carried in the delta.

Wire format (what gets stored in pages and shipped in oplog batches)::

    instruction := 0x00 varint(len) bytes[len]     -- INSERT
                 | 0x01 varint(offset) varint(len) -- COPY

The format is self-delimiting; a delta is just the concatenation of its
instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.varint import decode_uvarint, encode_uvarint

_TAG_INSERT = 0x00
_TAG_COPY = 0x01

#: COPY instructions shorter than this are cheaper as literal INSERTs
#: (tag + two varints usually costs 3-6 bytes).
MIN_PROFITABLE_COPY = 8


@dataclass(frozen=True)
class InsertInst:
    """Append literal ``data`` to the output."""

    data: bytes

    def __len__(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class CopyInst:
    """Append ``length`` bytes of the base stream starting at ``offset``."""

    offset: int
    length: int

    def __len__(self) -> int:
        return self.length


Delta = list["InsertInst | CopyInst"]


def serialize(insts: Delta) -> bytes:
    """Encode a delta into its binary wire format."""
    out = bytearray()
    for inst in insts:
        if isinstance(inst, InsertInst):
            out.append(_TAG_INSERT)
            out += encode_uvarint(len(inst.data))
            out += inst.data
        elif isinstance(inst, CopyInst):
            out.append(_TAG_COPY)
            out += encode_uvarint(inst.offset)
            out += encode_uvarint(inst.length)
        else:
            raise TypeError(f"not a delta instruction: {inst!r}")
    return bytes(out)


def deserialize(payload: bytes) -> Delta:
    """Decode a wire-format delta back into instructions.

    Raises:
        ValueError: on truncation or an unknown instruction tag.
    """
    insts: Delta = []
    pos = 0
    end = len(payload)
    while pos < end:
        tag = payload[pos]
        pos += 1
        if tag == _TAG_INSERT:
            length, pos = decode_uvarint(payload, pos)
            if pos + length > end:
                raise ValueError("truncated INSERT payload")
            insts.append(InsertInst(payload[pos : pos + length]))
            pos += length
        elif tag == _TAG_COPY:
            offset, pos = decode_uvarint(payload, pos)
            length, pos = decode_uvarint(payload, pos)
            insts.append(CopyInst(offset, length))
        else:
            raise ValueError(f"unknown delta instruction tag 0x{tag:02x}")
    return insts


def encoded_size(insts: Delta) -> int:
    """Wire-format size in bytes without materializing the encoding."""
    total = 0
    for inst in insts:
        if isinstance(inst, InsertInst):
            length = len(inst.data)
            total += 1 + len(encode_uvarint(length)) + length
        else:
            total += (
                1 + len(encode_uvarint(inst.offset)) + len(encode_uvarint(inst.length))
            )
    return total


def target_length(insts: Delta) -> int:
    """Number of bytes the delta reconstructs."""
    return sum(len(inst) for inst in insts)


def coalesce(insts: Delta, base: bytes | None = None) -> Delta:
    """Normalize a delta: merge neighbours, demote unprofitable copies.

    * contiguous COPYs (``offset`` continues where the previous ended) merge;
    * adjacent INSERTs merge;
    * COPYs shorter than :data:`MIN_PROFITABLE_COPY` are rewritten as
      INSERTs when ``base`` is supplied (the literal bytes must come from
      somewhere).

    The returned delta reconstructs exactly the same target.
    """
    out: Delta = []
    for inst in insts:
        if isinstance(inst, CopyInst):
            if inst.length == 0:
                continue
            if base is not None and inst.length < MIN_PROFITABLE_COPY:
                inst = InsertInst(base[inst.offset : inst.offset + inst.length])
        elif not inst.data:
            continue
        if out:
            prev = out[-1]
            if (
                isinstance(prev, CopyInst)
                and isinstance(inst, CopyInst)
                and prev.offset + prev.length == inst.offset
            ):
                out[-1] = CopyInst(prev.offset, prev.length + inst.length)
                continue
            if isinstance(prev, InsertInst) and isinstance(inst, InsertInst):
                out[-1] = InsertInst(prev.data + inst.data)
                continue
        out.append(inst)
    return out
