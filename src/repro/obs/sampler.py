"""Periodic registry snapshots: ingest-progress curves for any run.

The paper's time-series figures (e.g. Fig. 14's compression ratio over
ingested data) were previously only producible by hand-built experiment
loops. :class:`TimeSeriesSampler` generalizes them: hook it to a
cluster's operation loop and it records a row of scalar family totals
every N simulated seconds or every M operations, whichever triggers
first. Rows are plain dicts, exported inside the metrics JSON document
(see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import re

from repro.obs.registry import SLO_EVENTS_FAMILY, MetricsRegistry

_SAMPLE_EVERY_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(s|sec|ops?)\s*$")


def parse_sample_every(spec: str) -> tuple[float | None, int | None]:
    """Parse a ``--sample-every`` spec into ``(seconds, ops)``.

    ``"10s"`` → every 10 simulated seconds; ``"500ops"`` (or ``"500op"``)
    → every 500 operations. Exactly one of the returned values is set.

    Raises:
        ValueError: on anything else.
    """
    match = _SAMPLE_EVERY_RE.match(spec)
    if match is None:
        raise ValueError(
            f"invalid --sample-every value {spec!r}; "
            "use e.g. '10s' (simulated seconds) or '500ops' (operations)"
        )
    amount, unit = float(match.group(1)), match.group(2)
    if amount <= 0:
        raise ValueError(f"--sample-every must be positive, got {spec!r}")
    if unit.startswith("op"):
        return None, int(amount)
    return amount, None


class TimeSeriesSampler:
    """Records scalar family totals on a simulated-time/op-count cadence.

    Args:
        registry: the registry to sample.
        clock: object with a ``now`` float property (the cluster's
            ``SimClock``); None disables the time trigger.
        every_seconds: sample when this much simulated time elapsed since
            the last sample.
        every_ops: sample every this many :meth:`note_op` calls.
        metrics: family names to record; None records every scalar
            (counter/gauge) family present at sample time.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        clock=None,
        every_seconds: float | None = None,
        every_ops: int | None = None,
        metrics: list[str] | None = None,
    ) -> None:
        self.registry = registry
        self.clock = clock
        self.every_seconds = every_seconds
        self.every_ops = every_ops
        self.metrics = list(metrics) if metrics is not None else None
        self.samples: list[dict] = []
        #: Timestamped first-class event rows. Whenever a child of the
        #: ``slo_events_total`` family advanced since the last check,
        #: one row ``{t_s, ops, event, tenant, count}`` is appended —
        #: checked on every :meth:`note_op` (not just on sampling
        #: cadence), so events carry per-operation time resolution even
        #: with a sparse sample trigger.
        self.events: list[dict] = []
        self.ops = 0
        self._last_sample_t = clock.now if clock is not None else 0.0
        self._last_sample_ops = 0
        self._event_levels: dict[tuple[str, ...], float] = {}

    def _row(self) -> dict:
        values: dict[str, float] = {}
        for family in self.registry.families():
            if family.kind == "histogram":
                continue
            if self.metrics is not None and family.name not in self.metrics:
                continue
            values[family.name] = family.total()
        return {
            "t_s": self.clock.now if self.clock is not None else 0.0,
            "ops": self.ops,
            "values": values,
        }

    def _note_events(self) -> None:
        """Record one event row per ``slo_events_total`` child that moved."""
        family = self.registry.get(SLO_EVENTS_FAMILY)
        if family is None:
            return
        now = self.clock.now if self.clock is not None else 0.0
        for key, value in family.items():
            before = self._event_levels.get(key, 0.0)
            if value > before:
                self._event_levels[key] = value
                self.events.append(
                    {
                        "t_s": now,
                        "ops": self.ops,
                        "event": key[0] if key else "",
                        "tenant": key[1] if len(key) > 1 else "",
                        "count": value - before,
                    }
                )

    def sample(self) -> dict:
        """Record one row now, unconditionally, and return it."""
        row = self._row()
        self.samples.append(row)
        self._last_sample_t = row["t_s"]
        self._last_sample_ops = self.ops
        return row

    def note_op(self) -> dict | None:
        """Count one operation; sample if a trigger fired.

        Event counters are checked on *every* call (cheap: one small
        family's items), the full scalar snapshot only on the sampling
        cadence. Returns the new row when one was recorded, else None.
        """
        self.ops += 1
        self._note_events()
        due = (
            self.every_ops is not None
            and self.ops - self._last_sample_ops >= self.every_ops
        )
        if not due and self.every_seconds is not None and self.clock is not None:
            due = self.clock.now - self._last_sample_t >= self.every_seconds
        return self.sample() if due else None

    def finalize(self) -> None:
        """Record a closing row if anything happened since the last one."""
        self._note_events()
        if self.ops != self._last_sample_ops or not self.samples:
            self.sample()

    def to_dict(self) -> dict:
        """JSON-ready form: trigger config, recorded rows, event rows."""
        return {
            "every_seconds": self.every_seconds,
            "every_ops": self.every_ops,
            "samples": list(self.samples),
            "events": list(self.events),
        }
