"""Exporters: Prometheus text, versioned JSON documents, validators.

Two document kinds leave the process:

* the **metrics document** (``repro.metrics/v1``) — every family's
  snapshot, optional time series from a
  :class:`~repro.obs.sampler.TimeSeriesSampler`, and free-form metadata;
* the **trace document** (``repro.trace/v1``) — the tracer's root span
  trees with per-span simulated cost attribution.

Both carry their schema tag in a top-level ``schema`` field so readers
(CI, notebooks, the ``check-metrics`` subcommand) can refuse documents
they do not understand. :func:`validate_metrics_document` is a
structural validator — dependency-light by design, no jsonschema — and
:func:`check_reconciliation` asserts the accounting identities the
simulator promises (stage in == out + drops, records seen == deduped +
unique, bytes delivered ≤ bytes sent).
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.obs.registry import KINDS, MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.tracing import Tracer

#: Version tag of the metrics JSON document layout.
SCHEMA_VERSION = "repro.metrics/v1"

#: Version tag of the trace JSON document layout.
TRACE_SCHEMA_VERSION = "repro.trace/v1"

#: Version tag of a multi-run metrics bundle (``experiment`` runs build
#: several clusters; each contributes one full metrics document).
METRICS_SET_SCHEMA_VERSION = "repro.metrics-set/v1"

#: Version tag of a multi-run trace bundle.
TRACE_SET_SCHEMA_VERSION = "repro.trace-set/v1"

#: Version tag of the SLO report bundle produced by ``experiment slo``:
#: per-tenant tail latencies, first-class event counts, and the max
#: sustainable arrival rate per topology scenario.
SLO_SCHEMA_VERSION = "repro.slo/v1"


# -- documents ------------------------------------------------------------------


def metrics_document(
    registry: MetricsRegistry,
    sampler: TimeSeriesSampler | None = None,
    meta: Mapping[str, object] | None = None,
) -> dict:
    """The full JSON-ready metrics document for one registry."""
    return {
        "schema": SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "metrics": registry.snapshot(),
        "series": sampler.to_dict() if sampler is not None else None,
    }


def trace_document(tracer: Tracer) -> dict:
    """The JSON-ready trace document for one tracer."""
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "clock": "sim" if tracer.clock is not None else "wall",
        "dropped_roots": tracer.dropped_roots,
        "roots": [span.to_dict() for span in tracer.roots],
    }


def write_metrics_json(
    path: str,
    registry: MetricsRegistry,
    sampler: TimeSeriesSampler | None = None,
    meta: Mapping[str, object] | None = None,
) -> dict:
    """Write the metrics document to ``path``; returns the document."""
    document = metrics_document(registry, sampler, meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def write_trace_json(path: str, tracer: Tracer) -> dict:
    """Write the trace document to ``path``; returns the document."""
    document = trace_document(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def metrics_set_document(
    runs, meta: Mapping[str, object] | None = None
) -> dict:
    """Bundle several runs' metrics into one document.

    Args:
        runs: iterable of ``(label, registry, sampler_or_None)``.
        meta: bundle-level metadata (experiment id, workload, ...).
    """
    return {
        "schema": METRICS_SET_SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "runs": [
            metrics_document(registry, sampler, meta={"label": label})
            for label, registry, sampler in runs
        ],
    }


def trace_set_document(runs) -> dict:
    """Bundle several runs' traces; ``runs`` is ``(label, tracer)`` pairs."""
    return {
        "schema": TRACE_SET_SCHEMA_VERSION,
        "runs": [
            dict(trace_document(tracer), label=label)
            for label, tracer in runs
        ],
    }


def write_json(path: str, document: dict) -> dict:
    """Write any prepared document to ``path``; returns it unchanged."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def check_metrics_payload(payload: object) -> list[str]:
    """Validate + reconcile a metrics document *or* a metrics-set bundle.

    The entry point behind the ``check-metrics`` subcommand: dispatches
    on the ``schema`` tag, prefixing problems from bundled runs with
    their index and label. Empty list means the payload is sound.
    """
    if (
        isinstance(payload, dict)
        and payload.get("schema") == METRICS_SET_SCHEMA_VERSION
    ):
        runs = payload.get("runs")
        if not isinstance(runs, list):
            return ["'runs' missing or not a list"]
        problems: list[str] = []
        for index, document in enumerate(runs):
            label = ""
            if isinstance(document, dict):
                label = str(
                    document.get("meta", {}).get("label", "")
                    if isinstance(document.get("meta"), dict)
                    else ""
                )
            where = f"runs[{index}]" + (f" ({label})" if label else "")
            found = validate_metrics_document(document)
            if not found:
                found = check_reconciliation(document)
            problems.extend(f"{where}: {problem}" for problem in found)
        return problems
    if (
        isinstance(payload, dict)
        and payload.get("schema") == SLO_SCHEMA_VERSION
    ):
        return validate_slo_document(payload)
    problems = validate_metrics_document(payload)
    if problems:
        return problems
    return check_reconciliation(payload)


# -- Prometheus text format -----------------------------------------------------


def _fmt_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(names: tuple[str, ...] | list[str], values) -> str:
    if not names:
        return ""
    parts = ", ".join(
        f'{name}="{value}"' for name, value in zip(names, values)
    )
    return "{" + parts + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every family in the Prometheus exposition text format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if family.kind == "histogram":
            snapshot = family.snapshot()
            for row in snapshot["values"]:
                labels = row["labels"]
                names = list(labels) + ["le"]
                cumulative = 0
                for bound, count in zip(
                    list(family.buckets) + ["+Inf"],
                    row["bucket_counts"],
                ):
                    cumulative += count
                    values = list(labels.values()) + [
                        bound if bound == "+Inf" else _fmt_value(bound)
                    ]
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_fmt_labels(names, values)} {cumulative}"
                    )
                label_text = _fmt_labels(
                    list(labels), list(labels.values())
                )
                lines.append(
                    f"{family.name}_sum{label_text} {_fmt_value(row['sum'])}"
                )
                lines.append(
                    f"{family.name}_count{label_text} {row['count']}"
                )
        else:
            for label_values, value in family.items():
                lines.append(
                    f"{family.name}"
                    f"{_fmt_labels(family.label_names, label_values)}"
                    f" {_fmt_value(value)}"
                )
    return "\n".join(lines) + "\n"


# -- validation -----------------------------------------------------------------


def validate_metrics_document(document: object) -> list[str]:
    """Structural validation of a metrics document.

    Returns a list of human-readable problems; an empty list means the
    document conforms to :data:`SCHEMA_VERSION`.
    """
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        errors.append(
            f"schema is {schema!r}, expected {SCHEMA_VERSION!r}"
        )
    for key in ("meta", "metrics"):
        if not isinstance(document.get(key), dict):
            errors.append(f"{key!r} missing or not an object")
    series = document.get("series")
    if series is not None:
        if not isinstance(series, dict):
            errors.append("'series' must be null or an object")
        elif not isinstance(series.get("samples"), list):
            errors.append("'series.samples' missing or not a list")
        else:
            for i, row in enumerate(series["samples"]):
                if not isinstance(row, dict) or not isinstance(
                    row.get("values"), dict
                ):
                    errors.append(f"series.samples[{i}] malformed")
        # events rows are optional (documents predating repro.slo/v1
        # omit the key entirely), but when present must be well-formed.
        if isinstance(series, dict) and "events" in series:
            events = series["events"]
            if not isinstance(events, list):
                errors.append("'series.events' must be a list")
            else:
                for i, row in enumerate(events):
                    if not isinstance(row, dict) or not isinstance(
                        row.get("event"), str
                    ):
                        errors.append(f"series.events[{i}] malformed")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        return errors
    for name, family in metrics.items():
        where = f"metrics[{name!r}]"
        if not isinstance(family, dict):
            errors.append(f"{where} is not an object")
            continue
        kind = family.get("kind")
        if kind not in KINDS:
            errors.append(f"{where}.kind is {kind!r}")
            continue
        labels = family.get("labels")
        if not isinstance(labels, list) or not all(
            isinstance(label, str) for label in labels
        ):
            errors.append(f"{where}.labels must be a list of strings")
            continue
        values = family.get("values")
        if not isinstance(values, list):
            errors.append(f"{where}.values must be a list")
            continue
        for i, row in enumerate(values):
            spot = f"{where}.values[{i}]"
            if not isinstance(row, dict):
                errors.append(f"{spot} is not an object")
                continue
            row_labels = row.get("labels")
            if not isinstance(row_labels, dict) or sorted(
                row_labels
            ) != sorted(labels):
                errors.append(
                    f"{spot}.labels do not match family labels {labels}"
                )
            if kind == "histogram":
                buckets = family.get("buckets")
                counts = row.get("bucket_counts")
                if not isinstance(buckets, list):
                    errors.append(f"{where}.buckets must be a list")
                elif not isinstance(counts, list) or len(counts) != len(
                    buckets
                ) + 1:
                    errors.append(
                        f"{spot}.bucket_counts must have "
                        f"len(buckets)+1 entries"
                    )
                if not isinstance(row.get("sum"), (int, float)):
                    errors.append(f"{spot}.sum must be numeric")
                if not isinstance(row.get("count"), int):
                    errors.append(f"{spot}.count must be an integer")
            else:
                if not isinstance(row.get("value"), (int, float)):
                    errors.append(f"{spot}.value must be numeric")
    return errors


_SLO_QUANTILE_KEYS = ("p50_s", "p99_s", "p999_s")


def validate_slo_document(document: object) -> list[str]:
    """Structural validation of a ``repro.slo/v1`` bundle.

    Checks the scenario rows (topology, rates, per-tenant quantiles,
    event counts) and — when a scenario embeds a full metrics document —
    re-runs :func:`validate_metrics_document` plus
    :func:`check_reconciliation` on it, prefixing any problems with the
    scenario label. Quantiles may be ``null``: that is the JSON spelling
    of "rank fell in the overflow bucket" (``math.inf`` has no portable
    JSON encoding) or "tenant issued no ops of that kind".

    Returns a list of human-readable problems; empty means the bundle
    conforms.
    """
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    schema = document.get("schema")
    if schema != SLO_SCHEMA_VERSION:
        errors.append(f"schema is {schema!r}, expected {SLO_SCHEMA_VERSION!r}")
    if not isinstance(document.get("meta"), dict):
        errors.append("'meta' missing or not an object")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        errors.append("'scenarios' missing, not a list, or empty")
        return errors
    for index, scenario in enumerate(scenarios):
        where = f"scenarios[{index}]"
        if not isinstance(scenario, dict):
            errors.append(f"{where} is not an object")
            continue
        label = scenario.get("label")
        if isinstance(label, str) and label:
            where = f"scenarios[{index}] ({label})"
        else:
            errors.append(f"{where}.label missing or empty")
        topology = scenario.get("topology")
        if not isinstance(topology, dict):
            errors.append(f"{where}.topology missing or not an object")
        elif not isinstance(topology.get("shards"), int):
            errors.append(f"{where}.topology.shards must be an integer")
        if not isinstance(scenario.get("base_rate_ops_s"), (int, float)):
            errors.append(f"{where}.base_rate_ops_s must be numeric")
        sustainable = scenario.get("max_sustainable_rate_ops_s")
        if sustainable is not None and not isinstance(
            sustainable, (int, float)
        ):
            errors.append(
                f"{where}.max_sustainable_rate_ops_s must be numeric or null"
            )
        events = scenario.get("events")
        if not isinstance(events, dict) or not all(
            isinstance(value, (int, float)) for value in events.values()
        ):
            errors.append(
                f"{where}.events must map event names to numeric counts"
            )
        tenants = scenario.get("tenants")
        if not isinstance(tenants, dict) or not tenants:
            errors.append(f"{where}.tenants missing, not an object, or empty")
        else:
            for name, row in tenants.items():
                spot = f"{where}.tenants[{name!r}]"
                if not isinstance(row, dict):
                    errors.append(f"{spot} is not an object")
                    continue
                if not isinstance(row.get("ops"), int):
                    errors.append(f"{spot}.ops must be an integer")
                for key in _SLO_QUANTILE_KEYS:
                    value = row.get(key, "absent")
                    if value is not None and not isinstance(
                        value, (int, float)
                    ):
                        errors.append(f"{spot}.{key} must be numeric or null")
        metrics = scenario.get("metrics")
        if metrics is not None:
            found = validate_metrics_document(metrics)
            if not found:
                found = check_reconciliation(metrics)
            errors.extend(f"{where}: {problem}" for problem in found)
    comparisons = document.get("comparisons")
    if comparisons is not None and not isinstance(comparisons, list):
        errors.append("'comparisons' must be null or a list")
    return errors


# -- reconciliation identities --------------------------------------------------


def _scalar_groups(
    metrics: dict, name: str, fields: tuple[str, ...]
) -> dict[tuple[str, ...], float]:
    """Fold one scalar family into ``{key: sum}`` keyed by ``fields``.

    ``fields`` are label names; rows are summed over any labels not
    named. A ``shard`` label (present in merged sharded-cluster
    documents) is appended to every key automatically, so each
    accounting identity is checked per shard — shards are independent
    pipelines and their counters must balance individually.
    """
    family = metrics.get(name)
    if not isinstance(family, dict):
        return {}
    sharded = "shard" in family.get("labels", [])
    out: dict[tuple[str, ...], float] = {}
    for row in family.get("values", []):
        row_labels = row["labels"]
        key = tuple(str(row_labels.get(field, "")) for field in fields)
        if sharded:
            key += (str(row_labels.get("shard", "")),)
        out[key] = out.get(key, 0.0) + float(row["value"])
    return out


def check_reconciliation(document: dict) -> list[str]:
    """Accounting identities the simulator promises, checked on a document.

    Verified (each only when its families are present):

    * per stage and scope: ``records_in == records_out + drops``;
    * per scope: ``records_seen == records_deduped + records_unique``;
    * per scope: ``records_unique == sum(drops)`` (every non-deduped
      record left the pipeline through exactly one drop reason);
    * network: ``bytes_delivered <= bytes_sent``;
    * failover: ``rollback_entries_total <= oplog_appends_total`` — a
      divergence rollback can only discard entries some node appended
      (the appends counter is monotonic across truncations);
    * admission: per shard, defer decisions ==
      ``outofline_dedup_records_total + deferred_queue_depth +
      deferred_discarded_total`` — every deferred record is either
      still queued, was deduped out of line, or was discarded
      (superseded by an update/delete or swept by a bypass);
    * feature index: per database (and shard), ``index_lookups_total ==
      index_hot_hits_total + index_cold_hits_total + index_misses_total``
      — every lookup resolves to exactly one tier outcome, whichever
      index kind served it;
    * storage accounting: per node (and shard),
      ``reclaimed_bytes_total <= stored_bytes_total`` — deletes, updates
      and GC can only reclaim bytes some write once stored (the fix for
      the tombstone accounting drift, where deleted records' bytes were
      never subtracted from the stored-bytes counters);
    * audit trail: per scope (and shard),
      ``audit_saved_bytes_total == dedup_bytes_in_total -
      dedup_oplog_bytes_out_total`` and ``audit_raw_bytes_total ==
      dedup_bytes_in_total`` — the per-record audit log and the engine
      byte counters are written at the same pipeline instruction, so
      their sums must agree, including after a crash or failover rebuild
      (the registry-backed counters survive; rebuilt audit entries never
      re-increment them);
    * source cache: exported hits/misses match the engine-scope legacy
      counters by construction (same instrument), nothing to cross-check.

    Returns a list of violations; empty means all identities hold.
    """
    problems: list[str] = []
    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        return ["document has no 'metrics' object"]

    stage_in = _scalar_groups(
        metrics, "pipeline_stage_records_in_total", ("scope", "stage")
    )
    stage_out = _scalar_groups(
        metrics, "pipeline_stage_records_out_total", ("scope", "stage")
    )
    # drops are labeled (scope, stage, reason); fold the reason away.
    drops_by_stage = _scalar_groups(
        metrics, "pipeline_drops_total", ("scope", "stage")
    )
    drops_by_scope = _scalar_groups(
        metrics, "pipeline_drops_total", ("scope",)
    )
    for key, entered in stage_in.items():
        left = stage_out.get(key, 0.0)
        dropped = drops_by_stage.get(key, 0.0)
        if entered != left + dropped:
            problems.append(
                f"stage {key}: "
                f"in={entered} != out={left} + drops={dropped}"
            )

    seen = _scalar_groups(metrics, "dedup_records_seen_total", ("scope",))
    deduped = _scalar_groups(
        metrics, "dedup_records_deduped_total", ("scope",)
    )
    unique = _scalar_groups(metrics, "dedup_records_unique_total", ("scope",))
    for key, total in seen.items():
        parts = deduped.get(key, 0.0) + unique.get(key, 0.0)
        if total != parts:
            problems.append(
                f"scope {key}: seen={total} != "
                f"deduped+unique={parts}"
            )
    if stage_in:  # drops only flow when the pipeline ran
        for key, uniq in unique.items():
            dropped = drops_by_scope.get(key)
            if dropped is not None and uniq != dropped:
                problems.append(
                    f"scope {key}: unique={uniq} != "
                    f"sum(drops)={dropped}"
                )

    sent = _scalar_groups(metrics, "network_bytes_sent_total", ())
    delivered = _scalar_groups(metrics, "network_bytes_delivered_total", ())
    for key, nbytes in delivered.items():
        limit = sent.get(key, 0.0)
        if nbytes > limit:
            problems.append(
                f"network {key}: bytes_delivered={nbytes} > "
                f"bytes_sent={limit}"
            )

    # Failover: a rollback can only drop entries some node once appended.
    # ``oplog_appends_total`` is monotonic (truncation never decrements
    # it), so the rolled-back total is bounded by the appends across all
    # nodes of the same (per-shard) replica set.
    rolled_back = _scalar_groups(metrics, "rollback_entries_total", ())
    appends = _scalar_groups(metrics, "oplog_appends_total", ())
    if appends:  # both families fold to per-shard keys
        for key, dropped in rolled_back.items():
            limit = appends.get(key, 0.0)
            if dropped > limit:
                problems.append(
                    f"failover {key}: rollback_entries={dropped} > "
                    f"oplog_appends={limit}"
                )

    # Admission: every deferred record is accounted for exactly once —
    # still queued, deduped out of line, or discarded. Decisions are
    # labeled (decision, stream); fold streams away and keep the shard
    # suffix _scalar_groups appends so each shard balances on its own.
    decisions = _scalar_groups(
        metrics, "admission_decisions_total", ("decision",)
    )
    if decisions:
        outofline = _scalar_groups(
            metrics, "outofline_dedup_records_total", ()
        )
        queued = _scalar_groups(metrics, "deferred_queue_depth", ())
        discarded = _scalar_groups(
            metrics, "deferred_discarded_total", ()
        )
        for key, deferred in decisions.items():
            if key[0] != "defer":
                continue
            shard_key = key[1:]
            accounted = (
                outofline.get(shard_key, 0.0)
                + queued.get(shard_key, 0.0)
                + discarded.get(shard_key, 0.0)
            )
            if deferred != accounted:
                problems.append(
                    f"admission {shard_key}: defer_decisions={deferred} "
                    f"!= outofline+queued+discarded={accounted}"
                )

    # Feature index: every lookup resolves to exactly one outcome —
    # served by the exact hot tier, served by the approximate cold tier,
    # or a miss. Holds per database partition (and per shard) for both
    # index kinds; a plain cuckoo index simply reports cold_hits == 0.
    index_lookups = _scalar_groups(
        metrics, "index_lookups_total", ("database",)
    )
    if index_lookups:
        hot = _scalar_groups(metrics, "index_hot_hits_total", ("database",))
        cold = _scalar_groups(metrics, "index_cold_hits_total", ("database",))
        missed = _scalar_groups(metrics, "index_misses_total", ("database",))
        for key, lookups in index_lookups.items():
            accounted = (
                hot.get(key, 0.0)
                + cold.get(key, 0.0)
                + missed.get(key, 0.0)
            )
            if lookups != accounted:
                problems.append(
                    f"index {key}: lookups={lookups} != "
                    f"hot+cold+miss={accounted}"
                )

    # Storage accounting: reclamation (deletes, updates, GC) can only
    # free bytes some write once stored; both counters are cumulative
    # and monotonic per node, so the bound holds at every instant.
    written = _scalar_groups(metrics, "stored_bytes_total", ("node",))
    store_reclaimed = _scalar_groups(
        metrics, "reclaimed_bytes_total", ("node",)
    )
    for key, freed in store_reclaimed.items():
        limit = written.get(key, 0.0)
        if freed > limit:
            problems.append(
                f"storage {key}: reclaimed_bytes={freed} > "
                f"stored_bytes={limit}"
            )

    # Audit trail: the audit counters and the engine byte counters are
    # incremented by the same accounting-stage instruction, so their
    # sums must agree. The audit families only carry the engine scope,
    # so only that key is checked; per-database byte counters fold away.
    audit_saved = _scalar_groups(
        metrics, "audit_saved_bytes_total", ("scope",)
    )
    if audit_saved:
        bytes_in = _scalar_groups(metrics, "dedup_bytes_in_total", ("scope",))
        oplog_out = _scalar_groups(
            metrics, "dedup_oplog_bytes_out_total", ("scope",)
        )
        audit_raw = _scalar_groups(
            metrics, "audit_raw_bytes_total", ("scope",)
        )
        for key, saved in audit_saved.items():
            expected = bytes_in.get(key, 0.0) - oplog_out.get(key, 0.0)
            if saved != expected:
                problems.append(
                    f"audit {key}: audit_saved_bytes={saved} != "
                    f"bytes_in-oplog_bytes_out={expected}"
                )
        for key, raw in audit_raw.items():
            expected = bytes_in.get(key, 0.0)
            if raw != expected:
                problems.append(
                    f"audit {key}: audit_raw_bytes={raw} != "
                    f"bytes_in={expected}"
                )
    return problems
