"""Ambient observability capture for code that builds its own clusters.

The ``experiment`` subcommand runs table/figure reproductions that
construct :class:`~repro.db.cluster.Cluster` objects internally, several
per experiment. Rather than threading exporter plumbing through every
experiment function, the CLI opens a :func:`capture` context; every
cluster built inside it registers its observability handles (registry,
tracer, sampler) here, and the CLI exports them all when the experiment
finishes.

Captures nest (innermost wins) and are process-local; with no capture
active, :func:`active_capture` returns None and clusters keep their
handles to themselves.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class ObsCapture:
    """Collects the observability handles of clusters built under it.

    Args:
        trace: enable tracing on captured clusters.
        sample_seconds / sample_ops: sampler cadence for captured
            clusters (see :func:`repro.obs.sampler.parse_sample_every`).
    """

    def __init__(
        self,
        trace: bool = False,
        sample_seconds: float | None = None,
        sample_ops: int | None = None,
    ) -> None:
        self.trace = trace
        self.sample_seconds = sample_seconds
        self.sample_ops = sample_ops
        #: ``(label, cluster)`` in registration order.
        self.clusters: list[tuple[str, object]] = []

    def register(self, cluster: object) -> None:
        """Record one cluster; labels are ``run-<n>`` in build order."""
        self.clusters.append((f"run-{len(self.clusters)}", cluster))


_ACTIVE: list[ObsCapture] = []


def active_capture() -> ObsCapture | None:
    """The innermost open capture, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def capture(
    trace: bool = False,
    sample_seconds: float | None = None,
    sample_ops: int | None = None,
) -> Iterator[ObsCapture]:
    """Open a capture scope; clusters built inside register into it."""
    cap = ObsCapture(trace, sample_seconds, sample_ops)
    _ACTIVE.append(cap)
    try:
        yield cap
    finally:
        _ACTIVE.pop()
