"""Labeled metric instruments and the registry that owns them.

The design follows the Prometheus client model, cut down to what the
simulator needs:

* an *instrument family* is a named metric with a fixed label-name tuple
  (``dedup_records_seen_total{scope=...}``);
* :meth:`InstrumentFamily.labels` returns a *child* — a tiny object
  holding one float — which hot paths cache and bump directly, so one
  increment is an attribute access plus a float add;
* families can additionally register *collector callbacks* that produce
  ``{label_values: value}`` lazily at snapshot time, which is how
  components with existing native counters (caches, disks, the network)
  are exported without paying anything on their hot paths.

Everything snapshots to plain dicts; see :mod:`repro.obs.export` for the
Prometheus/JSON serializations.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, Mapping

from repro.util.stats import histogram_quantile

#: Exponential byte-size buckets (powers of four from 64 B to 256 MB).
BYTE_BUCKETS: tuple[float, ...] = tuple(64 * 4**k for k in range(12))

#: Exponential latency buckets (decades from 1 µs to 100 s).
LATENCY_BUCKETS_S: tuple[float, ...] = tuple(10.0**k for k in range(-6, 3))

#: Fine-grained latency buckets for per-operation tail estimation: a
#: 1-2-5 series from 1 µs to 100 s (25 buckets). The decade-wide
#: :data:`LATENCY_BUCKETS_S` are fine for coarse attribution but far too
#: wide for interpolated p99/p999 estimates; three buckets per decade
#: keep the worst-case interpolation error within a factor of ~2.5 of
#: the true quantile.
OP_LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    mantissa * 10.0**exponent
    for exponent in range(-6, 2)
    for mantissa in (1.0, 2.0, 5.0)
) + (100.0,)

#: Family name of the first-class SLO event counter (see
#: :func:`slo_events_family`).
SLO_EVENTS_FAMILY = "slo_events_total"

#: Label names of the SLO event family: the event kind
#: (``admission_defer`` / ``backpressure_stall`` / ``failover_stall``)
#: and the tenant (stream/database) that experienced it.
SLO_EVENT_LABELS: tuple[str, ...] = ("event", "tenant")

#: Instrument kinds understood by the registry and the exporters.
KINDS = ("counter", "gauge", "histogram")


class Counter:
    """Monotonically increasing value (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value that can move in both directions."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution: counts per ``le`` bound, plus sum/count.

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Interpolated ``q`` quantile (0–1) of the recorded distribution.

        Delegates to :func:`repro.util.stats.histogram_quantile`: linear
        interpolation within the target bucket, ``math.inf`` when the
        rank lands in the overflow bucket, ``ValueError`` when empty.
        """
        return histogram_quantile(self.bounds, self.bucket_counts, q)


#: A collector produces lazily evaluated values for a family:
#: ``{label_values_tuple: scalar}``.
CollectorFn = Callable[[], Mapping[tuple[str, ...], float]]


class InstrumentFamily:
    """One named metric with a fixed label-name tuple and many children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = BYTE_BUCKETS,
    ) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown instrument kind {kind!r}")
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets)
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._collectors: list[CollectorFn] = []

    def labels(self, *values: str) -> Counter | Gauge | Histogram:
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label "
                f"values {self.label_names}, got {values!r}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.buckets)
            self._children[key] = child
        return child

    # Zero/implicit-label conveniences: family delegates to labels().

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled child (labels must be empty)."""
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        """Set the unlabeled gauge child."""
        self.labels().set(value)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabeled gauge child."""
        self.labels().dec(amount)

    def observe(self, value: float) -> None:
        """Observe into the unlabeled histogram child."""
        self.labels().observe(value)

    def quantile(self, q: float) -> float:
        """Interpolated quantile of the unlabeled histogram child."""
        return self.labels().quantile(q)

    def collect(self, fn: CollectorFn) -> None:
        """Register a lazy collector evaluated at snapshot time.

        The callback returns ``{label_values: value}``; values from
        collectors shadow direct children with the same label values, so a
        family should be fed by one mechanism or the other, not both.
        Histogram families do not support collectors.
        """
        if self.kind == "histogram":
            raise ValueError(f"{self.name}: histograms cannot use collectors")
        self._collectors.append(fn)

    def clear_collectors(self) -> None:
        """Drop every registered collector.

        For families owned by a rebuildable component (e.g. the dedup
        engine, rebuilt on restart and promotion): shadowing only
        replaces label sets the new collector also reports, so a sparse
        collector would leak the dead component's stale rows. The owner
        clears before re-registering so exactly one generation feeds the
        family.
        """
        self._collectors.clear()

    def items(self) -> list[tuple[tuple[str, ...], float]]:
        """``(label_values, scalar)`` pairs for counter/gauge families."""
        if self.kind == "histogram":
            raise ValueError(f"{self.name}: items() is for scalar kinds")
        merged: dict[tuple[str, ...], float] = {
            key: child.value for key, child in self._children.items()
        }
        for fn in self._collectors:
            for key, value in fn().items():
                merged[tuple(str(part) for part in key)] = float(value)
        return sorted(merged.items())

    def total(self) -> float:
        """Sum of a scalar family's values across all label sets."""
        return sum(value for _, value in self.items())

    def value(self, *label_values: str) -> float:
        """One label set's current scalar value (0.0 when absent)."""
        key = tuple(str(part) for part in label_values)
        return dict(self.items()).get(key, 0.0)

    def snapshot(self) -> dict:
        """Plain-dict form of the family (JSON-ready)."""
        body: dict = {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
        }
        if self.kind == "histogram":
            body["buckets"] = list(self.buckets)
            body["values"] = [
                {
                    "labels": dict(zip(self.label_names, key)),
                    "bucket_counts": list(child.bucket_counts),
                    "sum": child.sum,
                    "count": child.count,
                }
                for key, child in sorted(self._children.items())
            ]
        else:
            body["values"] = [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in self.items()
            ]
        return body


class MetricsRegistry:
    """Owns instrument families; the unit of export and sampling."""

    def __init__(self) -> None:
        self._families: dict[str, InstrumentFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Iterable[str],
        buckets: tuple[float, ...] = BYTE_BUCKETS,
    ) -> InstrumentFamily:
        labels = tuple(labels)
        family = self._families.get(name)
        if family is None:
            family = InstrumentFamily(name, kind, help, labels, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"{name!r} already registered as {family.kind}, not {kind}"
            )
        if family.label_names != labels:
            raise ValueError(
                f"{name!r} already registered with labels "
                f"{family.label_names}, not {labels}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> InstrumentFamily:
        """Get or create a counter family."""
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> InstrumentFamily:
        """Get or create a gauge family."""
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = BYTE_BUCKETS,
    ) -> InstrumentFamily:
        """Get or create a histogram family with fixed ``buckets``."""
        return self._family(name, "histogram", help, labels, buckets)

    def get(self, name: str) -> InstrumentFamily | None:
        """The named family, or None."""
        return self._families.get(name)

    def families(self) -> list[InstrumentFamily]:
        """Every registered family, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def total(self, name: str) -> float:
        """Sum of a scalar family across labels (0.0 when unregistered)."""
        family = self._families.get(name)
        return family.total() if family is not None else 0.0

    def value(self, name: str, *label_values: str) -> float:
        """One label set's value of a scalar family (0.0 when absent)."""
        family = self._families.get(name)
        return family.value(*label_values) if family is not None else 0.0

    def snapshot(self) -> dict:
        """``{name: family_snapshot}`` for every family (JSON-ready)."""
        return {family.name: family.snapshot() for family in self.families()}


def slo_events_family(registry: MetricsRegistry) -> InstrumentFamily:
    """The shared first-class SLO event counter on ``registry``.

    One family, fed from several layers — the dedup engine increments
    ``admission_defer`` and ``backpressure_stall``, the cluster
    increments ``failover_stall`` — so every component that wants to
    emit events gets the identical label contract through this helper.
    The :class:`~repro.obs.sampler.TimeSeriesSampler` watches this
    family by name and turns increments into timestamped event rows.
    """
    return registry.counter(
        SLO_EVENTS_FAMILY,
        "First-class SLO events per tenant: admission deferrals, "
        "backpressure stalls (deferred records force-drained inline), "
        "failover-stalled client operations",
        SLO_EVENT_LABELS,
    )
