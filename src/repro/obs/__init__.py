"""Unified observability layer: metrics, tracing, sampling, exporters.

Every subsystem of the reproduction reports into one substrate:

* :class:`MetricsRegistry` — labeled counters, gauges and histograms,
  cheap enough for hot paths and snapshot-able to plain dicts;
* :class:`Tracer` / :class:`Span` — sim-clock-aware tracing with per-span
  simulated CPU/disk/network cost attribution, so one insert can be
  followed end-to-end through sketch → index → select → encode →
  oplog ship → replica apply;
* :class:`TimeSeriesSampler` — periodic registry snapshots (every N
  simulated seconds or M operations) producing Fig. 14-style
  ingest-progress curves for any run;
* exporters — Prometheus text format plus a versioned JSON schema with a
  structural validator and reconciliation identity checks.

The package is dependency-light on purpose: plain Python and ``bisect``,
no third-party client libraries, so core modules can import it without
dragging anything into hot paths.
"""

from repro.obs.export import (
    METRICS_SET_SCHEMA_VERSION,
    SCHEMA_VERSION,
    SLO_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    TRACE_SET_SCHEMA_VERSION,
    check_metrics_payload,
    check_reconciliation,
    metrics_document,
    metrics_set_document,
    to_prometheus_text,
    trace_document,
    trace_set_document,
    validate_metrics_document,
    validate_slo_document,
    write_json,
    write_metrics_json,
    write_trace_json,
)
from repro.obs.registry import (
    BYTE_BUCKETS,
    LATENCY_BUCKETS_S,
    OP_LATENCY_BUCKETS_S,
    SLO_EVENT_LABELS,
    SLO_EVENTS_FAMILY,
    MetricsRegistry,
    slo_events_family,
)
from repro.obs.sampler import TimeSeriesSampler, parse_sample_every
from repro.obs.tracing import NULL_TRACER, Span, Tracer, TracingObserver

__all__ = [
    "BYTE_BUCKETS",
    "LATENCY_BUCKETS_S",
    "METRICS_SET_SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_TRACER",
    "OP_LATENCY_BUCKETS_S",
    "SCHEMA_VERSION",
    "SLO_EVENTS_FAMILY",
    "SLO_EVENT_LABELS",
    "SLO_SCHEMA_VERSION",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "TRACE_SET_SCHEMA_VERSION",
    "TimeSeriesSampler",
    "Tracer",
    "TracingObserver",
    "check_metrics_payload",
    "check_reconciliation",
    "metrics_document",
    "metrics_set_document",
    "parse_sample_every",
    "slo_events_family",
    "to_prometheus_text",
    "trace_document",
    "trace_set_document",
    "validate_metrics_document",
    "validate_slo_document",
    "write_json",
    "write_metrics_json",
    "write_trace_json",
]
