"""Sim-clock-aware tracing: spans with simulated cost attribution.

A :class:`Tracer` stamps :class:`Span` objects against whatever clock the
cluster runs on — the shared :class:`~repro.sim.clock.SimClock` inside
the simulator, wall time outside it. Spans nest on a stack (the
simulator is single-threaded by construction), so one insert produces a
tree::

    op:insert
    ├── stage:sketch            cpu_s=…
    ├── stage:index_lookup
    ├── stage:source_select
    ├── stage:forward_delta     cpu_s=…
    ├── stage:writeback_plan
    └── stage:accounting

    replicate
    ├── oplog_ship              network_s=…
    └── replica_apply           cpu_s=… disk_s=…

Simulated durations alone would under-report — the sim clock only moves
when the cluster advances it between operations — so components *attach
costs* to the active span as they consume simulated resources:
``cpu_s`` from :class:`~repro.core.planner.CpuMeter` charges, ``disk_s``
from :meth:`Database._disk_request`, ``network_s`` from
:meth:`SimNetwork.transfer`. The exported tree therefore shows where
each operation's simulated time went, not just when it happened.

Components that may run untraced hold :data:`NULL_TRACER` (a disabled
singleton) so hot paths never branch on ``tracer is None``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

#: Cost kinds spans accumulate, in display order.
COST_KINDS = ("cpu_s", "disk_s", "network_s")


class Span:
    """One timed region with attached simulated costs and annotations."""

    __slots__ = (
        "name",
        "start_s",
        "end_s",
        "costs",
        "annotations",
        "children",
    )

    def __init__(self, name: str, start_s: float) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s: float | None = None
        self.costs: dict[str, float] = {}
        self.annotations: dict[str, object] = {}
        self.children: list[Span] = []

    def add_cost(self, kind: str, seconds: float) -> None:
        """Attribute ``seconds`` of simulated ``kind`` time to this span."""
        self.costs[kind] = self.costs.get(kind, 0.0) + seconds

    def annotate(self, key: str, value: object) -> None:
        """Attach one key/value annotation (drop reasons, sizes, ids)."""
        self.annotations[key] = value

    @property
    def duration_s(self) -> float:
        """Clock time between start and end (0.0 while still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    def total_costs(self) -> dict[str, float]:
        """Costs of this span plus its whole subtree, summed per kind."""
        totals = dict(self.costs)
        for child in self.children:
            for kind, seconds in child.total_costs().items():
                totals[kind] = totals.get(kind, 0.0) + seconds
        return totals

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span in the subtree with ``name`` (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """JSON-ready form of the span subtree."""
        body: dict = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.costs:
            body["costs"] = {k: self.costs[k] for k in sorted(self.costs)}
        if self.annotations:
            body["annotations"] = dict(self.annotations)
        if self.children:
            body["children"] = [child.to_dict() for child in self.children]
        return body

    def __repr__(self) -> str:
        return f"Span({self.name!r}, costs={self.costs})"


class _NoopSpan(Span):
    """Shared inert span returned when tracing is off or suppressed."""

    def __init__(self) -> None:
        super().__init__("noop", 0.0)

    def add_cost(self, kind: str, seconds: float) -> None:
        """Discard."""

    def annotate(self, key: str, value: object) -> None:
        """Discard."""


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Builds span trees against a simulated (or wall) clock.

    Args:
        clock: object with a ``now`` float property (a ``SimClock``);
            None falls back to ``time.monotonic()``.
        enabled: a disabled tracer hands out :data:`NOOP_SPAN` and
            records nothing — the hot-path cost is one attribute check.
        max_roots: cap on retained root spans, bounding trace memory for
            long runs; once reached, new roots (and their entire
            subtrees) are suppressed.
    """

    def __init__(
        self,
        clock=None,
        enabled: bool = True,
        max_roots: int = 100_000,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.max_roots = max_roots
        self.roots: list[Span] = []
        self.dropped_roots = 0
        self._stack: list[Span] = []
        # Depth of open spans under a suppressed (over-cap) root; their
        # children must not leak back in as fresh roots.
        self._suppressed = 0

    def now(self) -> float:
        """Current time on the tracer's clock."""
        return self.clock.now if self.clock is not None else time.monotonic()

    @property
    def current(self) -> Span:
        """The innermost open span (NOOP when none)."""
        return self._stack[-1] if self._stack else NOOP_SPAN

    def start_span(self, name: str, **annotations: object) -> Span:
        """Open a span nested under the current one (or a new root)."""
        if not self.enabled:
            return NOOP_SPAN
        if self._suppressed:
            self._suppressed += 1
            return NOOP_SPAN
        if not self._stack and len(self.roots) >= self.max_roots:
            self._suppressed = 1
            self.dropped_roots += 1
            return NOOP_SPAN
        span = Span(name, self.now())
        if annotations:
            span.annotations.update(annotations)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` (and anything left open inside it)."""
        if span is NOOP_SPAN:
            if self._suppressed:
                self._suppressed -= 1
            return
        now = self.now()
        while self._stack:
            top = self._stack.pop()
            top.end_s = now
            if top is span:
                return
        # Already closed (e.g. by an enclosing span's cleanup): no-op.

    @contextmanager
    def span(self, name: str, **annotations: object) -> Iterator[Span]:
        """``with tracer.span("replicate") as s: ...``"""
        span = self.start_span(name, **annotations)
        try:
            yield span
        finally:
            self.end_span(span)

    def add_cost(self, kind: str, seconds: float) -> None:
        """Attribute simulated cost to the innermost open span."""
        if self._stack:
            self._stack[-1].add_cost(kind, seconds)

    def annotate(self, key: str, value: object) -> None:
        """Annotate the innermost open span."""
        if self._stack:
            self._stack[-1].annotate(key, value)


#: Module-wide disabled tracer for components constructed without tracing.
NULL_TRACER = Tracer(enabled=False)


class TracingObserver:
    """Pipeline observer that opens a ``stage:<name>`` span per stage.

    Duck-types :class:`repro.core.pipeline.PipelineObserver` (same hook
    names) without importing it, keeping ``repro.obs`` import-free of
    ``repro.core``. The per-stage simulated CPU reported by the pipeline
    is attached to the stage's span as ``cpu_s``; drops are annotated
    with their reason.
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._open: dict[str, Span] = {}

    def on_stage_start(self, stage: str, ctx) -> None:
        """Open the stage's span under the current operation span."""
        self._open[stage] = self.tracer.start_span(
            f"stage:{stage}", record_id=ctx.record_id
        )

    def on_stage_end(self, stage: str, ctx, cpu_seconds: float) -> None:
        """Attach the stage's simulated CPU and close its span."""
        span = self._open.pop(stage, None)
        if span is None:
            return
        if cpu_seconds:
            span.add_cost("cpu_s", cpu_seconds)
        self.tracer.end_span(span)

    def on_drop(self, stage: str, ctx, reason: str) -> None:
        """Record why the record left the dedup path at this stage."""
        span = self._open.get(stage)
        if span is not None:
            span.annotate("drop_reason", reason)
